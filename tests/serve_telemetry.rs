//! Telemetry tests for the `res-serve` daemon (DESIGN.md §8): request
//! ids are deterministic, the typed stats endpoint answers inline even
//! while workers are busy or the queue is full, and the journal
//! reconstructs every request's span tree — queue wait, worker phases,
//! store commits, reply serialization — from the `serve.req` roots.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use res_debugger::obs::{query, read_journal_full, EventKind};
use res_debugger::prelude::*;
use res_debugger::serve::{serve, ServeConfig, StatsRequest, TriageClient, WireRequest};
use res_debugger::triage::TriageRequest;
use res_debugger::workloads::{generate_corpus, CorpusSpec, FailureReport};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("res-serve-telem-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create tmp dir");
    dir
}

fn small_corpus(kinds: Vec<BugKind>, per_kind: usize) -> Vec<FailureReport> {
    generate_corpus(&CorpusSpec {
        kinds,
        per_kind,
        ..CorpusSpec::default()
    })
}

fn request_for(r: &FailureReport) -> TriageRequest {
    TriageRequest::new(r.program.clone(), r.dump.clone())
}

/// The id scheme is `c<connection>.<sequence>`: connections numbered
/// from 1 in accept order, requests from 0 per connection. One client
/// submitting in order therefore sees the same ids at every worker
/// count — the id depends on the wire order, never on which worker
/// picked the job up.
#[test]
fn request_ids_are_deterministic_at_any_worker_count() {
    let corpus = small_corpus(vec![BugKind::DivByZero], 1);
    let report = &corpus[0];
    for workers in [1usize, 2, 4] {
        let handle = serve(ServeConfig {
            workers,
            ..ServeConfig::default()
        })
        .expect("boot daemon");
        let mut client = TriageClient::connect(handle.addr()).expect("connect");
        for seq in 0..3u64 {
            let resp = client
                .triage(request_for(report))
                .expect("io")
                .expect("admitted");
            assert_eq!(
                resp.req_id.as_deref(),
                Some(format!("c1.{seq}").as_str()),
                "request id drifted at workers = {workers}"
            );
        }
        let mut second = TriageClient::connect(handle.addr()).expect("connect");
        let resp = second
            .triage(request_for(report))
            .expect("io")
            .expect("admitted");
        assert_eq!(
            resp.req_id.as_deref(),
            Some("c2.0"),
            "a new connection starts its own sequence at workers = {workers}"
        );
        drop(client);
        drop(second);
        let mut handle = handle;
        handle.stop();
    }
}

/// The stats endpoint takes no queue slot: with zero workers and the
/// single queue slot parked forever, `StatsQuery` is still answered —
/// and every histogram snapshot is self-consistent (count equals the
/// sum of its own buckets) because `count` is derived from the buckets
/// that were read.
#[test]
fn stats_query_answers_inline_while_the_queue_is_full() {
    let corpus = small_corpus(vec![BugKind::DivByZero], 1);
    let handle = serve(ServeConfig {
        workers: 0,
        queue_cap: 1,
        ..ServeConfig::default()
    })
    .expect("boot daemon");

    let mut occupant = TriageClient::connect(handle.addr()).expect("connect occupant");
    occupant
        .send(&WireRequest::BucketBatch(vec![request_for(&corpus[0])]))
        .expect("send");

    // Wait until the batch actually occupies the queue.
    let mut probe = TriageClient::connect(handle.addr()).expect("connect probe");
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let stats = probe.stats().expect("stats");
        if stats.admitted == 1 && stats.queue_depth == 1 {
            break;
        }
        assert!(Instant::now() < deadline, "batch never reached the queue");
        std::thread::sleep(Duration::from_millis(10));
    }

    // Queue full, nothing draining — the typed endpoint still answers.
    let report = probe
        .stats_query(&StatsRequest::default())
        .expect("stats endpoint must answer under backpressure");
    assert!(report.requests >= 2, "occupant + probes all counted");
    assert_eq!(report.server.queue_depth, 1);
    assert!(
        report
            .histograms
            .iter()
            .any(|h| h.name == "serve.rtt.triage_us"),
        "registered histograms appear even before their first sample"
    );
    for h in &report.histograms {
        assert_eq!(
            h.count,
            h.buckets.iter().sum::<u64>(),
            "snapshot of {} must be self-consistent",
            h.name
        );
    }

    drop(probe);
    drop(occupant);
    let mut handle = handle;
    handle.stop();
}

/// Snapshotting never blocks the workers: a probe hammers `StatsQuery`
/// for the whole lifetime of an in-flight `BucketBatch` and every
/// answer arrives and is self-consistent, while the batch completes
/// normally.
#[test]
fn concurrent_stats_queries_do_not_block_an_active_batch() {
    let corpus = small_corpus(vec![BugKind::DivByZero, BugKind::UseAfterFree], 2);
    let reqs: Vec<TriageRequest> = corpus.iter().map(request_for).collect();
    let n = reqs.len();
    let handle = serve(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    })
    .expect("boot daemon");
    let addr = handle.addr().to_string();

    let done = AtomicBool::new(false);
    std::thread::scope(|s| {
        s.spawn(|| {
            let mut client = TriageClient::connect(&addr).expect("connect batcher");
            let keys = client.bucket_batch(reqs).expect("io").expect("admitted");
            assert_eq!(keys.len(), n);
            done.store(true, Ordering::SeqCst);
        });
        let mut probe = TriageClient::connect(&addr).expect("connect probe");
        let mut polls = 0u64;
        while !done.load(Ordering::SeqCst) {
            let r = probe
                .stats_query(&StatsRequest::default())
                .expect("stats endpoint must answer mid-batch");
            for h in &r.histograms {
                assert_eq!(h.count, h.buckets.iter().sum::<u64>(), "{}", h.name);
            }
            polls += 1;
        }
        // At least one snapshot must observe the completed batch.
        let r = probe
            .stats_query(&StatsRequest::default())
            .expect("final stats");
        let fanout = r
            .histograms
            .iter()
            .find(|h| h.name == "serve.batch.fanout")
            .expect("fanout histogram");
        assert_eq!(fanout.count, 1, "one batch recorded after {polls} polls");
        assert_eq!(fanout.max, n as u64, "fanout records the batch size");
    });

    let mut handle = handle;
    handle.stop();
}

/// The journal tells each request's complete story: every request
/// reconciles (meta mark → real span subtree, fully closed), the
/// triage tree carries all five phase children, requests over the slow
/// threshold leave `serve.slow` marks, the flight recorder holds their
/// phase timings, and the per-completion gauge flushes form a time
/// series.
#[test]
fn journal_reconciles_every_request_and_flags_slow_ones() {
    let dir = temp_dir("journal");
    let journal = dir.join("serve.jsonl");
    let corpus = small_corpus(vec![BugKind::DivByZero], 2);

    let handle = serve(ServeConfig {
        workers: 2,
        store_dir: Some(dir.join("store")),
        trace: Some(journal.clone()),
        slow_us: Some(1), // everything is "slow": deterministic marks
        recent_cap: 8,
        ..ServeConfig::default()
    })
    .expect("boot daemon");
    let mut client = TriageClient::connect(handle.addr()).expect("connect");
    for r in &corpus {
        let _ = client
            .triage(request_for(r))
            .expect("io")
            .expect("admitted");
    }
    let live = client.stats_query(&StatsRequest::default()).expect("stats");

    // Flight recorder: both triage requests, in completion order, with
    // phase timings that add up.
    let triaged: Vec<_> = live
        .recent
        .iter()
        .filter(|s| s.endpoint == "triage")
        .collect();
    assert_eq!(triaged.len(), 2);
    for s in &triaged {
        assert_eq!(s.outcome, "ok");
        assert!(s.total_us >= s.synth_us, "total covers synthesis: {s:?}");
    }
    assert_eq!(triaged[0].req_id, "c1.0");
    assert_eq!(triaged[1].req_id, "c1.1");

    drop(client);
    let mut handle = handle;
    handle.stop();

    let parsed = read_journal_full(&journal).expect("journal parses");
    assert!(parsed.skipped.is_empty(), "no foreign schema versions");
    let events = parsed.events;

    // Every request in the journal reconciles.
    let entries = query::requests(&events);
    assert!(entries.len() >= 3, "two triages + the stats query");
    for e in &entries {
        assert!(e.reconciled(), "request did not reconcile: {e:?}");
    }
    let first = entries.iter().find(|e| e.req_id == "c1.0").expect("c1.0");
    assert_eq!(first.endpoint, "triage");
    assert_eq!(
        first.spans, 6,
        "req + admission + work + store + synth + reply"
    );

    // The rendered tree names every phase.
    let tree = query::render_request(&events, "c1.0").expect("request tree");
    for needle in [
        "serve.req",
        "serve.req.admission",
        "serve.req.work",
        "serve.req.store",
        "serve.req.synth",
        "serve.req.reply",
    ] {
        assert!(tree.contains(needle), "tree missing {needle}:\n{tree}");
    }

    // Slow marks name the request and carry its phase split.
    let slow_reqs: Vec<String> = events
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::Mark { name, fields } if name == "serve.slow" => fields
                .iter()
                .find(|(k, _)| k == "req")
                .map(|(_, v)| v.clone()),
            _ => None,
        })
        .collect();
    assert!(slow_reqs.contains(&"c1.0".to_string()), "{slow_reqs:?}");
    assert!(slow_reqs.contains(&"c1.1".to_string()), "{slow_reqs:?}");

    // Per-completion gauge flushes: `serve.completed` is a time
    // series, not one terminal total.
    let completed: Vec<u64> = events
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::Gauge { name, value } if name == "serve.completed" => Some(*value),
            _ => None,
        })
        .collect();
    assert!(
        completed.contains(&1) && completed.contains(&2),
        "gauge flushes must capture intermediate states: {completed:?}"
    );

    // The shutdown registry flush makes latency quantiles queryable
    // post-mortem.
    let summaries = query::histo_summaries(&events);
    let rtt = summaries
        .iter()
        .find(|s| s.name == "serve.rtt.triage_us")
        .expect("journaled rtt histogram");
    assert_eq!(rtt.count, 2);
    assert!(rtt.p50 <= rtt.p95 && rtt.p95 <= rtt.p99 && rtt.p99 <= rtt.max);

    let _ = std::fs::remove_dir_all(&dir);
}
