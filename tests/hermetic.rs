//! Hermetic-build enforcement: `cargo test` fails if any external
//! (registry or git) dependency is reintroduced anywhere in the
//! workspace. The actual scan lives in `scripts/check_hermetic.sh` so
//! it can also run standalone in CI or a pre-commit hook.

use std::path::Path;
use std::process::Command;

#[test]
fn workspace_has_no_external_dependencies() {
    let script = Path::new(env!("CARGO_MANIFEST_DIR")).join("scripts/check_hermetic.sh");
    let output = Command::new("bash")
        .arg(&script)
        .output()
        .expect("run scripts/check_hermetic.sh");
    assert!(
        output.status.success(),
        "hermetic check failed:\n--- stdout ---\n{}\n--- stderr ---\n{}",
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr),
    );
}

/// Belt-and-braces duplicate of the script's Cargo.lock check in pure
/// Rust, in case `bash` is unavailable wherever the tests run.
#[test]
fn lockfile_has_no_registry_packages() {
    let lock = Path::new(env!("CARGO_MANIFEST_DIR")).join("Cargo.lock");
    if !lock.exists() {
        return;
    }
    let text = std::fs::read_to_string(&lock).expect("read Cargo.lock");
    let external: Vec<&str> = text
        .lines()
        .filter(|l| l.starts_with("source = "))
        .collect();
    assert!(
        external.is_empty(),
        "Cargo.lock lists externally-sourced packages: {external:?}"
    );
}
