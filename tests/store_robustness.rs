//! Robustness of the persistent cross-run store (`res-store`).
//!
//! The store's contract is that *nothing* that happens to the file can
//! change a synthesis result or crash the engine: every kind of damage
//! degrades to a cold start (possibly keeping the undamaged prefix),
//! and a fingerprint mismatch additionally refuses to write. Each test
//! here damages a real store a different way, reruns the engine over
//! it, and asserts the suffixes are byte-identical to a store-less run.
//!
//! The byte-level golden fixture (`tests/fixtures/store_v1.resstore`)
//! pins the version-1 file format: the store a run writes today must
//! match the committed bytes exactly, so accidental format drift —
//! which would silently cold-start every existing store in the field —
//! fails loudly. Regenerate after an *intentional* format change with
//! `RES_REGEN_FIXTURES=1 cargo test --test store_robustness`.

use std::path::PathBuf;

use res_debugger::prelude::*;
use res_debugger::store::{LoadOutcome, SolverStore};
use res_debugger::workloads::run_to_failure;

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("res-store-robust-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// The deterministic crash scenario shared with the suffix golden test.
fn crash() -> (Program, Coredump) {
    let program = build_workload(
        BugKind::DivByZero,
        WorkloadParams {
            prefix_iters: 2,
            hash_rounds: 1,
        },
    );
    let machine = (0..500)
        .find_map(|s| run_to_failure(&program, s))
        .expect("DivByZero workload must fault");
    let dump = Coredump::capture(&machine);
    (program, dump)
}

fn render(program: &Program, dump: &Coredump, cache_path: Option<&std::path::Path>) -> String {
    let mut builder = ResConfig::builder();
    if let Some(p) = cache_path {
        builder = builder.cache_path(p);
    }
    let engine = ResEngine::new(program, builder.build());
    let result = engine.synthesize(dump);
    format!("{:?} {:?}", result.verdict, result.suffixes)
}

/// Store report for a run over `path`, plus its rendered result.
fn run_with_store(
    program: &Program,
    dump: &Coredump,
    path: &std::path::Path,
) -> (String, res_debugger::res::StoreReport) {
    let engine = ResEngine::new(program, ResConfig::builder().cache_path(path).build());
    let result = engine.synthesize(dump);
    let report = result.store.expect("store configured");
    (
        format!("{:?} {:?}", result.verdict, result.suffixes),
        report,
    )
}

/// Writes a populated store for the crash scenario and returns
/// (golden store-less rendering, store file path, temp dir).
fn populated_store(tag: &str) -> (Program, Coredump, String, PathBuf, PathBuf) {
    let (program, dump) = crash();
    let golden = render(&program, &dump, None);
    let dir = temp_dir(tag);
    let path = dir.join("store.resstore");
    let (cold, report) = run_with_store(&program, &dump, &path);
    assert_eq!(cold, golden, "a cold store must not change the synthesis");
    assert!(report.appended_entries > 0, "the cold run must populate");
    assert!(report.committed);
    (program, dump, golden, path, dir)
}

#[test]
fn truncated_store_degrades_to_partial_or_cold_start() {
    let (program, dump, golden, path, dir) = populated_store("trunc");
    let raw = std::fs::read(&path).unwrap();
    // Tear at several depths, including mid-header and mid-magic.
    for keep in [raw.len() - 7, raw.len() / 2, 40, 5, 1] {
        std::fs::write(&path, &raw[..keep]).unwrap();
        let (warm, report) = run_with_store(&program, &dump, &path);
        assert_eq!(warm, golden, "truncation at {keep} changed the synthesis");
        assert!(
            report.committed,
            "a truncated own-program store must be rewritten, not refused"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_checksum_drops_the_damaged_tail() {
    let (program, dump, golden, path, dir) = populated_store("crc");
    let text = std::fs::read_to_string(&path).unwrap();
    // Flip one payload byte in the middle of the entry records.
    let lines: Vec<&str> = text.lines().collect();
    let victim = lines.len() / 2;
    let mut tampered: Vec<String> = lines.iter().map(|l| l.to_string()).collect();
    tampered[victim] = tampered[victim].replace(':', ";");
    std::fs::write(&path, tampered.join("\n") + "\n").unwrap();

    let (warm, report) = run_with_store(&program, &dump, &path);
    assert_eq!(warm, golden, "a corrupted record changed the synthesis");
    assert_eq!(report.outcome, LoadOutcome::Loaded);
    assert!(report.committed);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn wrong_format_version_is_a_cold_start() {
    let (program, dump, golden, path, dir) = populated_store("ver");
    let text = std::fs::read_to_string(&path).unwrap();
    let bumped = text.replacen("RES-STORE 1", "RES-STORE 99", 1);
    std::fs::write(&path, bumped).unwrap();

    let (warm, report) = run_with_store(&program, &dump, &path);
    assert_eq!(warm, golden, "a version mismatch changed the synthesis");
    assert_eq!(report.outcome, LoadOutcome::VersionMismatch);
    assert_eq!(report.loaded_entries, 0);
    assert_eq!(report.store_hits, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn wrong_program_fingerprint_is_cold_and_leaves_the_file_untouched() {
    let (_, _, _, path, dir) = populated_store("fp");
    let original = std::fs::read(&path).unwrap();

    // A *different* program pointed at the same store file.
    let other = build_workload(
        BugKind::UseAfterFree,
        WorkloadParams {
            prefix_iters: 2,
            hash_rounds: 1,
        },
    );
    let machine = (0..500)
        .find_map(|s| run_to_failure(&other, s))
        .expect("UseAfterFree workload must fault");
    let other_dump = Coredump::capture(&machine);
    let golden = render(&other, &other_dump, None);

    let (warm, report) = run_with_store(&other, &other_dump, &path);
    assert_eq!(warm, golden, "a foreign store changed the synthesis");
    assert_eq!(report.outcome, LoadOutcome::FingerprintMismatch);
    assert_eq!(report.loaded_entries, 0, "no cross-program entry may leak");
    assert_eq!(report.store_hits, 0);
    assert!(!report.committed, "a foreign store must never be written");
    assert_eq!(
        std::fs::read(&path).unwrap(),
        original,
        "the other program's store was clobbered"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A torn verdict record must degrade to *full replay*, never to a
/// wrong skip: the engine re-runs with whatever certificates survived
/// the tear (possibly none) and still synthesizes byte-identical
/// suffixes.
#[test]
fn torn_verdict_record_degrades_to_full_replay() {
    let (program, dump, golden, path, dir) = populated_store("tornv");
    // The populated store must actually carry certificates — the replay
    // of the populating run certifies its own subtrees.
    let text = std::fs::read_to_string(&path).unwrap();
    let v_off = text
        .find("\nV ")
        .expect("populating run must persist verdict records")
        + 1;
    // Tear mid-way through the first verdict record: its framing fails,
    // it and everything after it (further verdicts, the stats block)
    // are dropped, and the solver entries before it survive.
    std::fs::write(&path, &text.as_bytes()[..v_off + 10]).unwrap();

    let (warm, report) = run_with_store(&program, &dump, &path);
    assert_eq!(warm, golden, "a torn verdict record changed the synthesis");
    assert_eq!(report.outcome, LoadOutcome::Loaded);
    assert!(
        report.loaded_entries > 0,
        "entries before the torn verdict must survive"
    );
    assert!(report.committed, "the torn tail must be healed on commit");

    // The healed store serves certificates again on the next run.
    let (again, report) = run_with_store(&program, &dump, &path);
    assert_eq!(again, golden);
    assert_eq!(report.outcome, LoadOutcome::Loaded);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn empty_store_file_is_a_cold_start() {
    let (program, dump) = crash();
    let golden = render(&program, &dump, None);
    let dir = temp_dir("empty");
    let path = dir.join("store.resstore");
    std::fs::write(&path, "").unwrap();

    let (run, report) = run_with_store(&program, &dump, &path);
    assert_eq!(run, golden, "an empty store changed the synthesis");
    assert_eq!(report.outcome, LoadOutcome::Empty);
    assert!(report.committed, "the empty file must be adopted");

    // And the now-populated file serves the next run.
    let (warm, report) = run_with_store(&program, &dump, &path);
    assert_eq!(warm, golden);
    assert_eq!(report.outcome, LoadOutcome::Loaded);
    assert!(report.store_hits > 0, "the rewritten store must serve hits");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Byte-level golden fixture for format version 1: a store built from
/// fixed inputs must match the committed fixture exactly, and reading
/// the fixture back must reproduce the same entries. The store header
/// deliberately carries no timestamps, which is what makes this
/// possible.
#[test]
fn store_v1_golden_fixture_round_trips() {
    use res_debugger::symbolic::{CanonFp, PortableCache, PortableResult, PortableVerdict};

    let dir = temp_dir("golden");
    let path = dir.join("golden.resstore");
    const PROGRAM_FP: u64 = 0x1dea_c0de_5eed_f00d;
    let entries = vec![
        (
            CanonFp(1),
            PortableResult {
                verdict: PortableVerdict::Sat(vec![(0, 7), (1, 9)]),
                assignments: 3,
            },
        ),
        (
            CanonFp(0x1_0000_0000_0000_0000),
            PortableResult {
                verdict: PortableVerdict::Unsat,
                assignments: 12,
            },
        ),
    ];
    let mut store = SolverStore::open(&path, PROGRAM_FP);
    store.merge(&PortableCache {
        entries: entries.clone(),
        verdicts: vec![],
    });
    store.note_hits(4);
    store.commit().expect("commit golden store");
    let written = std::fs::read(&path).unwrap();

    let fixture = fixture_path("store_v1.resstore");
    if std::env::var_os("RES_REGEN_FIXTURES").is_some() {
        std::fs::write(&fixture, &written).expect("write fixture");
    } else {
        let golden = std::fs::read(&fixture).unwrap_or_else(|e| {
            panic!(
                "missing fixture {} ({e}); regenerate with RES_REGEN_FIXTURES=1",
                fixture.display()
            )
        });
        assert_eq!(
            String::from_utf8_lossy(&written),
            String::from_utf8_lossy(&golden),
            "store format drifted from the committed version-1 fixture; \
             bump FORMAT_VERSION for an intentional change"
        );
    }

    // Reading the *committed* fixture must reproduce the entries.
    let back = SolverStore::open(&fixture, PROGRAM_FP);
    assert_eq!(back.load_report().outcome, LoadOutcome::Loaded);
    assert_eq!(back.to_portable().entries, entries);
    assert_eq!(back.stats().absorbed_hits, 4);
    let _ = std::fs::remove_dir_all(&dir);
}
