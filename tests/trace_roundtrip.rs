//! Round-trip and determinism guarantees of the portable replay-trace
//! format (`res-trace`).
//!
//! Three properties pin the format:
//!
//! 1. **Losslessness** — a trace survives JSON↔binary encoding
//!    unchanged, so the two encodings are interchangeable.
//! 2. **Determinism** — recording the same failure at any worker count
//!    produces byte-identical files (the header carries no timestamps,
//!    the search is deterministic), so traces can be diffed and cached.
//! 3. **Stability** — the byte-level golden fixtures
//!    (`tests/fixtures/trace_v1.restrace{,.bin}`) pin format version 1:
//!    a trace recorded today must match the committed bytes exactly, so
//!    accidental drift — which would orphan every archived trace —
//!    fails loudly. Regenerate after an *intentional* format change
//!    with `RES_REGEN_FIXTURES=1 cargo test --test trace_roundtrip`.
//!
//! The binary value codec additionally gets a property test: any JSON
//! tree round-trips through `encode_json`/`decode_json`.

use std::path::PathBuf;

use mvm_json::Json;
use proptest_mini::{check, prop_assert_eq, vec_of, Config};
use res_debugger::prelude::*;
use res_debugger::trace::{decode_json, encode_json, Encoding};
use res_debugger::triage::bucket_key_for;
use res_debugger::workloads::run_to_failure;

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("res-trace-rt-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// The deterministic crash scenario shared with the suffix golden test.
fn crash() -> (Program, Coredump) {
    let program = build_workload(
        BugKind::DivByZero,
        WorkloadParams {
            prefix_iters: 2,
            hash_rounds: 1,
        },
    );
    let machine = (0..500)
        .find_map(|s| run_to_failure(&program, s))
        .expect("DivByZero workload must fault");
    let dump = Coredump::capture(&machine);
    (program, dump)
}

/// Records the crash scenario's trace at the given worker count.
fn record(workers: usize) -> TraceFile {
    let (program, dump) = crash();
    let engine = ResEngine::new(&program, ResConfig::default());
    let result = engine.synthesize_with(&dump, SynthOptions::default().workers(workers));
    let bucket = bucket_key_for(&program, &dump, &result.suffixes);
    for sfx in &result.suffixes {
        if let Ok(t) = record_trace(
            &program,
            &dump,
            sfx,
            Some(bucket.clone()),
            &Recorder::disabled(),
        ) {
            return t;
        }
    }
    panic!("no suffix produced a recordable trace");
}

#[test]
fn json_and_binary_encodings_round_trip_losslessly() {
    let trace = record(1);
    for encoding in [Encoding::Json, Encoding::Binary] {
        let bytes = trace.to_bytes(encoding);
        let (back, detected) = TraceFile::from_bytes(&bytes).expect("decode own bytes");
        assert_eq!(detected, encoding, "sniffing must recover the encoding");
        assert_eq!(back, trace, "{} round trip lost data", encoding.name());
    }
    // Cross-encoding: JSON -> struct -> binary -> struct is still equal.
    let via_json = TraceFile::from_bytes(&trace.to_bytes(Encoding::Json))
        .unwrap()
        .0;
    let via_bin = TraceFile::from_bytes(&via_json.to_bytes(Encoding::Binary))
        .unwrap()
        .0;
    assert_eq!(via_bin, trace);
}

#[test]
fn file_extension_selects_the_encoding() {
    let trace = record(1);
    let dir = temp_dir("ext");
    let json_path = dir.join("t.restrace");
    let bin_path = dir.join("t.restrace.bin");
    assert_eq!(trace.write(&json_path).unwrap(), Encoding::Json);
    assert_eq!(trace.write(&bin_path).unwrap(), Encoding::Binary);
    let (j, je) = TraceFile::read(&json_path).unwrap();
    let (b, be) = TraceFile::read(&bin_path).unwrap();
    assert_eq!((je, be), (Encoding::Json, Encoding::Binary));
    assert_eq!(j, trace);
    assert_eq!(b, trace);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn traces_are_byte_identical_across_worker_counts() {
    let baseline = record(1);
    let json1 = baseline.to_bytes(Encoding::Json);
    let bin1 = baseline.to_bytes(Encoding::Binary);
    for workers in [2, 4] {
        let t = record(workers);
        assert_eq!(
            t.to_bytes(Encoding::Json),
            json1,
            "{workers}-worker JSON trace differs from sequential"
        );
        assert_eq!(
            t.to_bytes(Encoding::Binary),
            bin1,
            "{workers}-worker binary trace differs from sequential"
        );
    }
}

/// Byte-level golden fixtures for format version 1, both encodings.
#[test]
fn trace_v1_golden_fixtures_round_trip() {
    let trace = record(1);
    for (name, encoding) in [
        ("trace_v1.restrace", Encoding::Json),
        ("trace_v1.restrace.bin", Encoding::Binary),
    ] {
        let written = trace.to_bytes(encoding);
        let fixture = fixture_path(name);
        if std::env::var_os("RES_REGEN_FIXTURES").is_some() {
            std::fs::write(&fixture, &written).expect("write fixture");
        } else {
            let golden = std::fs::read(&fixture).unwrap_or_else(|e| {
                panic!(
                    "missing fixture {} ({e}); regenerate with RES_REGEN_FIXTURES=1",
                    fixture.display()
                )
            });
            assert_eq!(
                written, golden,
                "{name}: trace format drifted from the committed version-1 \
                 fixture; bump FORMAT_VERSION for an intentional change"
            );
        }
        // The committed fixture must still decode and verify PASS.
        let (back, detected) = TraceFile::read(&fixture).expect("read fixture");
        assert_eq!(detected, encoding);
        assert_eq!(back, trace);
        let (program, _) = crash();
        let outcome = verify_trace(&program, &back, &Recorder::disabled());
        assert!(outcome.pass, "committed fixture no longer verifies");
        assert!(outcome.fingerprint_matches);
    }
}

/// Builds an arbitrary JSON tree from a vector of entropy words —
/// every variant reachable, depth bounded, floats kept exactly
/// representable so equality is meaningful.
fn json_from_entropy(words: &[u64], pos: &mut usize, depth: usize) -> Json {
    let next = |pos: &mut usize| {
        let w = words[*pos % words.len()];
        *pos += 1;
        w
    };
    let w = next(pos);
    match w % if depth == 0 { 6 } else { 8 } {
        0 => Json::Null,
        1 => Json::Bool(next(pos) % 2 == 0),
        2 => Json::U64(next(pos)),
        3 => Json::I64(next(pos) as i64),
        4 => Json::F64((next(pos) % 10_000) as f64 * 0.25 - 1250.0),
        5 => Json::Str(format!("k{:x}\n\"é", next(pos))),
        6 => Json::Arr(
            (0..next(pos) % 4)
                .map(|_| json_from_entropy(words, pos, depth - 1))
                .collect(),
        ),
        _ => Json::Obj(
            (0..next(pos) % 4)
                .map(|i| (format!("f{i}"), json_from_entropy(words, pos, depth - 1)))
                .collect(),
        ),
    }
}

/// Property: any JSON value round-trips through the binary codec.
#[test]
fn binary_codec_round_trips_arbitrary_json() {
    check(
        "binary_codec_round_trips_arbitrary_json",
        &Config::new(),
        &vec_of(proptest_mini::any_u64(), 1, 64),
        |words| {
            let mut pos = 0;
            let value = json_from_entropy(words, &mut pos, 3);
            let mut buf = Vec::new();
            encode_json(&value, &mut buf);
            let back = decode_json(&buf).map_err(|e| format!("decode: {e}"))?;
            prop_assert_eq!(back, value);
            Ok(())
        },
    );
}
