//! Scale test for the shared solver-store directory: hundreds of
//! *distinct* generated programs route their engine queries through one
//! directory (one `<fingerprint>.resstore` file each — the corpus-scale
//! experiments' layout), and every file must reopen cleanly with sane
//! supersedure accounting.
//!
//! Kept to one store-populating pass + cheap reopen passes so the suite
//! stays fast: the per-report engine behaviour is covered by the triage
//! tests; this file is about the store *directory* at corpus scale.

use std::collections::BTreeSet;
use std::fs;
use std::path::PathBuf;

use res_debugger::res::{auto_workers, parallel_map, ResConfig};
use res_debugger::store::{program_fingerprint, LoadOutcome, SolverStore};
use res_debugger::triage::bucket::res_bucket_key;
use res_debugger::triage::{store_path_for, with_shared_store};
use res_debugger::workloads::gen::{collect_failures, corpus_specs, generate, GenClass};

/// Corpus size. Release builds sweep the full ~500-fingerprint
/// population; debug builds (plain `cargo test`) keep the same shape
/// over a smaller slice so the suite stays interactive.
const PROGRAMS: usize = if cfg!(debug_assertions) { 120 } else { 500 };

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("res-store-scale-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn hundreds_of_fingerprints_share_one_store_directory() {
    let dir = scratch_dir("main");
    let config = ResConfig::default();
    let specs = corpus_specs(&[GenClass::DivByZero], PROGRAMS, 0x5702e_5ca1e, 1);

    // One report per program, engine routed through the shared dir.
    let keyed: Vec<(u64, String)> = parallel_map(&specs, auto_workers(), |_, spec| {
        let gp = generate(*spec);
        let failure = &collect_failures(&gp, 1)[0];
        let cfg = with_shared_store(&config, &dir, &gp.program);
        let key = res_bucket_key(&gp.program, &failure.dump, &cfg);
        (program_fingerprint(&gp.program), key)
    });

    // Every report was explained (no stack-signature fallback), and the
    // population is genuinely many distinct programs.
    for (fp, key) in &keyed {
        assert!(
            !key.starts_with("unexplained:"),
            "program {fp:016x} fell back to the stack signature: {key}"
        );
    }
    let fps: BTreeSet<u64> = keyed.iter().map(|(fp, _)| *fp).collect();
    assert!(
        fps.len() >= PROGRAMS * 95 / 100,
        "expected ~{PROGRAMS} distinct fingerprints, got {}",
        fps.len()
    );

    // Exactly one store file per distinct fingerprint, named by it.
    let mut files: Vec<String> = fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .collect();
    files.sort();
    assert_eq!(files.len(), fps.len(), "one .resstore file per program");
    for fp in &fps {
        assert!(files.binary_search(&format!("{fp:016x}.resstore")).is_ok());
    }

    // Every file reopens clean: loaded header, live entries, nothing
    // superseded or torn on a single-writer population pass.
    let mut total_entries = 0usize;
    for name in &files {
        let store = SolverStore::open_for_inspection(dir.join(name));
        let report = *store.load_report();
        assert_eq!(report.outcome, LoadOutcome::Loaded, "{name}");
        assert!(report.entries_loaded >= 1, "{name} committed no entries");
        assert_eq!(report.superseded, 0, "{name}");
        assert_eq!(report.records_skipped, 0, "{name}");
        assert_eq!(store.len(), report.entries_loaded, "{name}");
        total_entries += store.len();
    }
    assert!(total_entries >= fps.len());

    // Warm reopen: the populated directory answers a second pass with
    // identical keys (absorb is correct, not just harmless).
    let warm: Vec<(u64, String)> = specs[..8.min(specs.len())]
        .iter()
        .map(|spec| {
            let gp = generate(*spec);
            let failure = &collect_failures(&gp, 1)[0];
            let cfg = with_shared_store(&config, &dir, &gp.program);
            (
                program_fingerprint(&gp.program),
                res_bucket_key(&gp.program, &failure.dump, &cfg),
            )
        })
        .collect();
    assert_eq!(&keyed[..warm.len()], &warm[..], "warm keys drifted");

    // Supersedure accounting: duplicating a file's entry records (what
    // a crash-interrupted rewriting writer would leave) must show up as
    // superseded records, not extra entries.
    let victim = dir.join(&files[0]);
    let text = fs::read_to_string(&victim).unwrap();
    let entry_lines: Vec<&str> = text.lines().filter(|l| l.starts_with("E ")).collect();
    assert!(!entry_lines.is_empty());
    let mut appended = text.clone();
    for l in &entry_lines {
        appended.push_str(l);
        appended.push('\n');
    }
    fs::write(&victim, appended).unwrap();
    let dup = SolverStore::open_for_inspection(&victim);
    let report = *dup.load_report();
    assert_eq!(report.outcome, LoadOutcome::Loaded);
    assert_eq!(report.superseded, entry_lines.len(), "duplicates supersede");
    assert_eq!(
        report.entries_loaded,
        entry_lines.len(),
        "live set unchanged"
    );

    // Portable export round-trip: one program's entries merge into a
    // fresh store file and commit byte-countably.
    let gp = generate(specs[1]);
    let fp = program_fingerprint(&gp.program);
    let src = SolverStore::open(store_path_for(&dir, &gp.program), fp);
    assert!(src.len() >= 1);
    let export = src.to_portable();
    let dir2 = scratch_dir("merge");
    let mut fresh = SolverStore::open(store_path_for(&dir2, &gp.program), fp);
    assert_eq!(fresh.load_report().outcome, LoadOutcome::Missing);
    assert_eq!(fresh.merge(&export), src.len(), "all entries are new");
    let commit = fresh.commit().unwrap();
    assert_eq!(commit.appended, src.len());
    assert!(!commit.skipped_read_only);
    let back = SolverStore::open_for_inspection(store_path_for(&dir2, &gp.program));
    assert_eq!(back.len(), src.len());

    let _ = fs::remove_dir_all(&dir);
    let _ = fs::remove_dir_all(&dir2);
}
