//! Property-based tests over the `res-gen` buggy-program generator:
//! for *any* spec — not just the golden grid — generation is total,
//! deterministic, and honest about its ground truth. Case counts stay
//! small because each case assembles and runs a program to failure;
//! a failing case panics with the master seed so it reproduces via
//! `RES_PROP_SEED=<seed> cargo test --test gen_properties`.

use proptest_mini::{check, pair, prop_assert, prop_assert_eq, u64_range, usize_range, Config};

use res_debugger::workloads::gen::{collect_failures, generate, GenClass, GenSpec};
use res_debugger::workloads::run_to_failure;

/// Draws an arbitrary (class, seed) spec. Seeds are drawn from a wide
/// range so the properties exercise templates the golden fixture never
/// pins.
fn spec_gen() -> proptest_mini::Gen<GenSpec> {
    pair(
        usize_range(0, GenClass::ALL.len() - 1),
        u64_range(0, 1 << 48),
    )
    .map(|(i, seed)| GenSpec::new(GenClass::ALL[i], seed))
}

/// Every spec generates: the template assembles (generate panics
/// otherwise), carries a main-function site, and the recorded program
/// validates by running — plus generation is a pure function of the
/// spec.
#[test]
fn any_spec_generates_a_wellformed_program() {
    check(
        "any_spec_generates_a_wellformed_program",
        &Config::with_cases(24),
        &spec_gen(),
        |&spec| {
            let gp = generate(spec);
            prop_assert_eq!(gp.spec, spec);
            prop_assert!(gp.truth.site.starts_with("main:"), "site {}", gp.truth.site);
            prop_assert!(!gp.source.is_empty());
            // Purity: regenerating yields the identical artifact.
            let again = generate(spec);
            prop_assert_eq!(&gp.source, &again.source);
            prop_assert_eq!(gp.truth.schedule_hint, again.truth.schedule_hint);
            Ok(())
        },
    );
}

/// The recorded schedule hint is honest: running the generated program
/// under it reaches a failure whose machine fault class is one the
/// spec's class advertises, and `collect_failures` starts at that hint.
#[test]
fn schedule_hint_manifests_the_labeled_class() {
    check(
        "schedule_hint_manifests_the_labeled_class",
        &Config::with_cases(16),
        &spec_gen(),
        |&spec| {
            let gp = generate(spec);
            let m = run_to_failure(&gp.program, gp.truth.schedule_hint);
            prop_assert!(m.is_some(), "hint did not manifest for {spec:?}");
            let dump = res_debugger::coredump::Coredump::capture(&m.unwrap());
            let expected = spec.class.expected_fault_classes();
            prop_assert!(
                expected.contains(&dump.fault.class()),
                "fault {} not in {expected:?} for {spec:?}",
                dump.fault.class()
            );
            let failures = collect_failures(&gp, 1);
            prop_assert_eq!(failures[0].seed, gp.truth.schedule_hint);
            prop_assert_eq!(failures[0].fault_class, dump.fault.class());
            Ok(())
        },
    );
}

/// Distinct seeds decorrelate: across a seed window, one class yields
/// programs that are not all byte-identical (the templates actually
/// consume their entropy).
#[test]
fn seeds_decorrelate_within_a_class() {
    check(
        "seeds_decorrelate_within_a_class",
        &Config::with_cases(9),
        &pair(
            usize_range(0, GenClass::ALL.len() - 1),
            u64_range(0, 1 << 32),
        ),
        |&(i, base)| {
            let class = GenClass::ALL[i];
            let sources: Vec<String> = (0..4)
                .map(|k| generate(GenSpec::new(class, base + k)).source)
                .collect();
            prop_assert!(
                sources.iter().any(|s| s != &sources[0]),
                "four consecutive {class:?} seeds collapsed to one program"
            );
            Ok(())
        },
    );
}
