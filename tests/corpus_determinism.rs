//! Harness-parallelism determinism at corpus scale: the corpus-scale
//! experiments shard generated programs across worker threads, and the
//! contract is that the thread count is *invisible* in every output —
//! identical aggregate tables at 1 thread and N threads, and res-obs
//! journals whose counter totals reconcile exactly (counters are
//! additive, so they cannot depend on which worker counted).
//!
//! Companion to `tests/obs_determinism.rs`, which pins the same
//! contract for the synthesis kernel itself.

use std::collections::BTreeMap;
use std::fs;
use std::path::PathBuf;

use res_debugger::obs::{read_journal, render, Recorder};
use res_debugger::res::ResConfig;
use res_debugger::triage::{exploit_scale, hardware_scale, triage_scale, CorpusScaleSpec};
use res_debugger::workloads::gen::GenClass;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "res-corpus-determinism-{tag}-{}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// A small but non-trivial population: several classes, enough programs
/// that the work actually distributes across 4 workers.
fn spec(threads: usize) -> CorpusScaleSpec {
    CorpusScaleSpec {
        classes: vec![
            GenClass::DivByZero,
            GenClass::UseAfterFree,
            GenClass::DoubleFree,
        ],
        programs: 9,
        reports_per_program: 2,
        shards: 3,
        threads,
        seed: 0xde7e_2141,
        size: 1,
    }
}

/// Runs one corpus-scale experiment at `threads`, journaling to its own
/// file, and returns (Debug-rendered report, counter totals).
fn run_at(threads: usize, tag: &str) -> (String, String, String, BTreeMap<String, u64>) {
    let dir = scratch(&format!("{tag}-store-{threads}"));
    let journal = std::env::temp_dir().join(format!(
        "res-corpus-determinism-{tag}-{threads}-{}.jsonl",
        std::process::id()
    ));
    let _ = fs::remove_file(&journal);
    let rec = Recorder::journal(&journal);
    let config = ResConfig::default();
    let s = spec(threads);

    let triage = format!("{:?}", triage_scale(&s, &config, &dir, &rec));
    let exploit = format!("{:?}", exploit_scale(&s, &config, &dir, &rec));
    let hw = format!("{:?}", hardware_scale(&s, &config, &dir, &rec));
    rec.finish();

    let events = read_journal(&journal).expect("journal parses");
    let totals = render::counter_totals(&events);
    let _ = fs::remove_dir_all(&dir);
    let _ = fs::remove_file(&journal);
    (triage, exploit, hw, totals)
}

#[test]
fn corpus_scale_reports_are_thread_count_invariant() {
    let (t1, e1, h1, c1) = run_at(1, "a");
    let (t4, e4, h4, c4) = run_at(4, "b");

    // Every aggregate table — per-shard distributions, pooled rates,
    // report counts — is byte-identical across thread counts.
    assert_eq!(t1, t4, "triage_scale depends on the thread count");
    assert_eq!(e1, e4, "exploit_scale depends on the thread count");
    assert_eq!(h1, h4, "hardware_scale depends on the thread count");

    // The journals reconcile: additive counter totals are equal even
    // though the 4-thread run interleaved them differently.
    for key in [
        "corpus.triage.programs",
        "corpus.triage.reports",
        "corpus.exploit.programs",
        "corpus.exploit.reports",
        "corpus.hwfilter.programs",
    ] {
        assert!(c1.contains_key(key), "missing counter {key}: {c1:?}");
    }
    assert_eq!(c1, c4, "journal counter totals diverge across threads");

    // Sanity-pin the population arithmetic so a silent work drop cannot
    // masquerade as determinism.
    assert_eq!(c1["corpus.triage.programs"], 9);
    assert_eq!(c1["corpus.triage.reports"], 18);
}
