//! Golden-fixture regression for the default exploration order.
//!
//! `FrontierKind::Dfs` (the default) must reproduce the engine's
//! historical worklist order exactly: the fixture under
//! `tests/fixtures/` was generated *before* the kernel refactor, so a
//! byte-identical match proves the pluggable-frontier seam did not
//! perturb which suffixes are found, in what order, or what they
//! contain.
//!
//! To regenerate after an *intentional* search-order change:
//!
//! ```text
//! RES_REGEN_FIXTURES=1 cargo test --test suffix_golden
//! ```

use std::path::PathBuf;

use res_debugger::prelude::*;
use res_debugger::workloads::run_to_failure;

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Deterministic crash scenario (same as the JSON golden tests): a
/// short single-threaded DivByZero workload, input-free up to the
/// faulting divide.
fn crash() -> (Program, Coredump) {
    let program = build_workload(
        BugKind::DivByZero,
        WorkloadParams {
            prefix_iters: 2,
            hash_rounds: 1,
        },
    );
    let machine = (0..500)
        .find_map(|s| run_to_failure(&program, s))
        .expect("DivByZero workload must fault");
    let dump = Coredump::capture(&machine);
    (program, dump)
}

fn check_golden(name: &str, rendered: &str) {
    let path = fixture_path(name);
    if std::env::var_os("RES_REGEN_FIXTURES").is_some() {
        std::fs::write(&path, format!("{rendered}\n")).expect("write fixture");
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing fixture {} ({e}); regenerate with RES_REGEN_FIXTURES=1",
            path.display()
        )
    });
    assert_eq!(
        golden.trim_end(),
        rendered,
        "fixture {name} drifted: the default (Dfs) exploration order no \
         longer matches the pre-refactor engine; if the change is \
         intentional, regenerate with RES_REGEN_FIXTURES=1"
    );
}

fn render(workers: usize) -> String {
    render_with(workers, None)
}

fn render_with(workers: usize, cache_path: Option<&std::path::Path>) -> String {
    let (program, dump) = crash();
    let mut builder = ResConfig::builder().workers(workers);
    if let Some(p) = cache_path {
        builder = builder.cache_path(p);
    }
    if let Some(p) = std::env::var_os("RES_TRACE") {
        builder = builder.trace(p);
    }
    if let Ok(v) = std::env::var("RES_SPECULATIVE_YIELD") {
        builder = builder.speculative_yield(v != "0");
    }
    let engine = ResEngine::new(&program, builder.build());
    let result = engine.synthesize(&dump);
    let mut rendered = String::new();
    rendered.push_str(&format!("verdict: {:?}\n", result.verdict));
    rendered.push_str(&format!("suffixes: {}\n", result.suffixes.len()));
    for (i, s) in result.suffixes.iter().enumerate() {
        rendered.push_str(&format!("--- suffix {i} ---\n{s:?}\n"));
        let replay = replay_suffix(&program, &dump, s);
        rendered.push_str(&format!("replayed: {}\n", replay.reproduced));
    }
    rendered.trim_end().to_string()
}

/// The default config must synthesize byte-identical suffixes, in the
/// same order, as the pre-refactor engine did.
///
/// `RES_WORKERS=N` runs the same check through the sharded parallel
/// path — the CI determinism gate loops this test over N ∈ {1, 2, 4}
/// against the *same* fixture, proving the fan-out changes nothing.
///
/// `RES_CACHE_PATH=<file>` additionally routes the run through a
/// persistent cross-run store at that path — the CI cross-run gate runs
/// this test twice against one store file (cold, then warm) and both
/// must match the very same fixture, proving that absorbing a populated
/// store changes no synthesized byte.
///
/// `RES_TRACE=<file>` additionally journals the run to a `res-obs`
/// trace at that path — the CI traced gate runs this test with tracing
/// on against the *same* fixture, proving the recorder is passive
/// (enabling it changes no synthesized byte) and leaving a journal the
/// gate parses and sanity-checks.
///
/// `RES_SPECULATIVE_YIELD=0` disables verdict-certificate pruning
/// (cache-only speculation, the pre-certificate behaviour) — the CI
/// speculative-yield gate runs the store-backed check both ways against
/// the *same* fixture, proving that skipping certified-exhausted
/// subtrees changes no synthesized byte.
#[test]
fn default_dfs_suffixes_match_pre_refactor_fixture() {
    let workers = std::env::var("RES_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let cache_path = std::env::var_os("RES_CACHE_PATH").map(std::path::PathBuf::from);
    check_golden(
        "suffix_dfs.txt",
        &render_with(workers, cache_path.as_deref()),
    );
}

/// A warm store must not perturb the result: cold run, warm run, and
/// store-less run synthesize byte-identical suffixes (absorbed entries
/// replay their original solver cost, so budget cuts fire identically).
#[test]
fn warm_store_matches_cold_suffixes() {
    let dir = std::env::temp_dir().join(format!("res-golden-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create store dir");
    let path = dir.join("suffix_golden.resstore");
    let golden = render(1);
    let cold = render_with(1, Some(&path));
    let warm = render_with(1, Some(&path));
    assert_eq!(cold, golden, "a cold store changed the synthesis");
    assert_eq!(warm, golden, "a warm store changed the synthesis");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Sharded speculation must not perturb the result: any worker count
/// yields byte-identical suffixes (the replay phase is the sequential
/// algorithm; speculation only pre-warms the solver cache).
#[test]
fn sharded_workers_match_single_worker_suffixes() {
    let golden = render(1);
    for workers in [2usize, 4] {
        assert_eq!(
            render(workers),
            golden,
            "workers = {workers} diverged from the sequential search"
        );
    }
}
