//! Golden-fixture regression for the default exploration order.
//!
//! `FrontierKind::Dfs` (the default) must reproduce the engine's
//! historical worklist order exactly: the fixture under
//! `tests/fixtures/` was generated *before* the kernel refactor, so a
//! byte-identical match proves the pluggable-frontier seam did not
//! perturb which suffixes are found, in what order, or what they
//! contain.
//!
//! To regenerate after an *intentional* search-order change:
//!
//! ```text
//! RES_REGEN_FIXTURES=1 cargo test --test suffix_golden
//! ```

use std::path::PathBuf;

use res_debugger::prelude::*;
use res_debugger::workloads::run_to_failure;

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Deterministic crash scenario (same as the JSON golden tests): a
/// short single-threaded DivByZero workload, input-free up to the
/// faulting divide.
fn crash() -> (Program, Coredump) {
    let program = build_workload(
        BugKind::DivByZero,
        WorkloadParams {
            prefix_iters: 2,
            hash_rounds: 1,
        },
    );
    let machine = (0..500)
        .find_map(|s| run_to_failure(&program, s))
        .expect("DivByZero workload must fault");
    let dump = Coredump::capture(&machine);
    (program, dump)
}

fn check_golden(name: &str, rendered: &str) {
    let path = fixture_path(name);
    if std::env::var_os("RES_REGEN_FIXTURES").is_some() {
        std::fs::write(&path, format!("{rendered}\n")).expect("write fixture");
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing fixture {} ({e}); regenerate with RES_REGEN_FIXTURES=1",
            path.display()
        )
    });
    assert_eq!(
        golden.trim_end(),
        rendered,
        "fixture {name} drifted: the default (Dfs) exploration order no \
         longer matches the pre-refactor engine; if the change is \
         intentional, regenerate with RES_REGEN_FIXTURES=1"
    );
}

fn render(workers: usize) -> String {
    let (program, dump) = crash();
    let engine = ResEngine::new(&program, ResConfig::builder().workers(workers).build());
    let result = engine.synthesize(&dump);
    let mut rendered = String::new();
    rendered.push_str(&format!("verdict: {:?}\n", result.verdict));
    rendered.push_str(&format!("suffixes: {}\n", result.suffixes.len()));
    for (i, s) in result.suffixes.iter().enumerate() {
        rendered.push_str(&format!("--- suffix {i} ---\n{s:?}\n"));
        let replay = replay_suffix(&program, &dump, s);
        rendered.push_str(&format!("replayed: {}\n", replay.reproduced));
    }
    rendered.trim_end().to_string()
}

/// The default config must synthesize byte-identical suffixes, in the
/// same order, as the pre-refactor engine did.
///
/// `RES_WORKERS=N` runs the same check through the sharded parallel
/// path — the CI determinism gate loops this test over N ∈ {1, 2, 4}
/// against the *same* fixture, proving the fan-out changes nothing.
#[test]
fn default_dfs_suffixes_match_pre_refactor_fixture() {
    let workers = std::env::var("RES_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    check_golden("suffix_dfs.txt", &render(workers));
}

/// Sharded speculation must not perturb the result: any worker count
/// yields byte-identical suffixes (the replay phase is the sequential
/// algorithm; speculation only pre-warms the solver cache).
#[test]
fn sharded_workers_match_single_worker_suffixes() {
    let golden = render(1);
    for workers in [2usize, 4] {
        assert_eq!(
            render(workers),
            golden,
            "workers = {workers} diverged from the sequential search"
        );
    }
}
