//! Lifecycle tests for the `res-serve` triage daemon: hot-store LRU
//! eviction/commit/reopen, concurrent-vs-sequential byte identity, and
//! bounded-queue backpressure.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use res_debugger::prelude::*;
use res_debugger::serve::{serve, ServeConfig, TriageClient, WireRequest, WireResponse};
use res_debugger::store::program_fingerprint;
use res_debugger::triage::{triage, TriageRequest, TriageResponse};
use res_debugger::workloads::{generate_corpus, CorpusSpec, FailureReport};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("res-serve-life-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn small_corpus(kinds: Vec<BugKind>, per_kind: usize) -> Vec<FailureReport> {
    generate_corpus(&CorpusSpec {
        kinds,
        per_kind,
        ..CorpusSpec::default()
    })
}

fn request_for(r: &FailureReport) -> TriageRequest {
    TriageRequest::new(r.program.clone(), r.dump.clone())
}

/// The identity currency: verdict, bucket key, and the full byte
/// rendering of every suffix. Kernel stats are excluded on purpose:
/// the store contract preserves answers and search shape, but the
/// solver's cache-provenance counters (`store_hits`, `absorbed_hits`)
/// legitimately differ between a cold run and a warm one.
fn identity(resp: &TriageResponse) -> String {
    format!(
        "{:?}|{}|{}|{:?}",
        resp.verdict, resp.deadlock, resp.bucket_key, resp.suffixes
    )
}

#[test]
fn lru_eviction_commits_the_store_and_reopens_warm() {
    let dir = temp_dir("lru");
    let corpus = small_corpus(vec![BugKind::DivByZero, BugKind::UseAfterFree], 1);
    assert_eq!(corpus.len(), 2);
    let (a, b) = (&corpus[0], &corpus[1]);

    let handle = serve(ServeConfig {
        workers: 1,
        hot_cap: 1, // every program switch evicts
        store_dir: Some(dir.clone()),
        ..ServeConfig::default()
    })
    .expect("boot daemon");
    let mut client = TriageClient::connect(handle.addr()).expect("connect");

    let first_a = client
        .triage(request_for(a))
        .expect("io")
        .expect("admitted");
    // Checking out B evicts A; the eviction must commit A's store file.
    let _ = client
        .triage(request_for(b))
        .expect("io")
        .expect("admitted");
    let fp_a = program_fingerprint(&a.program);
    let a_file = dir.join(format!("{fp_a:016x}.resstore"));
    assert!(
        a_file.exists(),
        "evicting a program must commit its store to disk"
    );

    // A comes back: its committed store is re-opened and absorbed, and
    // the answer is byte-identical to the cold one.
    let again_a = client
        .triage(request_for(a))
        .expect("io")
        .expect("admitted");
    assert_eq!(identity(&first_a), identity(&again_a));

    // A third A on the now-warm store is a pure hot-set hit.
    let warm_a = client
        .triage(request_for(a))
        .expect("io")
        .expect("admitted");
    assert_eq!(identity(&first_a), identity(&warm_a));
    let stats = client.stats().expect("stats");
    assert!(stats.hot_evictions >= 2, "hot_cap=1 churns on every switch");
    assert!(stats.hot_hits >= 1, "the repeated request must hit warm");

    drop(client);
    let mut handle = handle;
    handle.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_submissions_match_sequential_library_runs() {
    let dir = temp_dir("concurrent");
    let corpus = small_corpus(
        vec![
            BugKind::DivByZero,
            BugKind::UseAfterFree,
            BugKind::DoubleFree,
        ],
        2,
    );
    assert_eq!(corpus.len(), 6);

    // Sequential ground truth straight through the library, no daemon,
    // no store.
    let base = ResConfig::default();
    let sequential: Vec<String> = corpus
        .iter()
        .map(|r| identity(&triage(&request_for(r), &base)))
        .collect();

    let handle = serve(ServeConfig {
        workers: 3,
        hot_cap: 2, // smaller than the 3 distinct programs: force churn
        store_dir: Some(dir.clone()),
        ..ServeConfig::default()
    })
    .expect("boot daemon");
    let addr = handle.addr().to_string();

    // One thread + one connection per report, all in flight at once.
    let answers: Vec<(usize, String)> = std::thread::scope(|s| {
        let handles: Vec<_> = corpus
            .iter()
            .enumerate()
            .map(|(i, r)| {
                let addr = addr.clone();
                let req = request_for(r);
                s.spawn(move || {
                    let mut client = TriageClient::connect(&addr).expect("connect");
                    let resp = client.triage(req).expect("io").expect("admitted");
                    (i, identity(&resp))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("join"))
            .collect()
    });

    for (i, got) in answers {
        assert_eq!(
            got, sequential[i],
            "concurrent daemon answer for report {i} diverged from the sequential library run"
        );
    }

    let mut handle = handle;
    handle.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn full_queue_rejects_with_backpressure_response() {
    let corpus = small_corpus(vec![BugKind::DivByZero], 2);
    // workers: 0 — nothing drains the queue, so occupancy is
    // deterministic: the first request parks in the single slot forever.
    let handle = serve(ServeConfig {
        workers: 0,
        queue_cap: 1,
        ..ServeConfig::default()
    })
    .expect("boot daemon");

    let mut occupant = TriageClient::connect(handle.addr()).expect("connect occupant");
    occupant
        .send(&WireRequest::Triage(request_for(&corpus[0])))
        .expect("send");

    // Wait until the daemon has actually enqueued it.
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut probe = TriageClient::connect(handle.addr()).expect("connect probe");
    loop {
        let stats = probe.stats().expect("stats");
        // `admitted` is bumped only after the job is in the queue.
        if stats.admitted == 1 && stats.queue_depth == 1 {
            break;
        }
        assert!(Instant::now() < deadline, "request never reached the queue");
        std::thread::sleep(Duration::from_millis(10));
    }

    // The queue is full: the next submission is answered immediately
    // with a well-formed backpressure response, not a hang.
    match probe.triage(request_for(&corpus[1])).expect("io") {
        Err(WireResponse::Rejected {
            reason,
            queue_depth,
        }) => {
            assert_eq!(reason, "queue full");
            assert_eq!(queue_depth, 1);
        }
        other => panic!("expected a queue-full rejection, got {other:?}"),
    }
    let stats = probe.stats().expect("stats");
    assert_eq!(stats.rejected_queue, 1);
    assert_eq!(stats.completed, 0);

    // Tear down with the occupant still parked: stop() cancels the
    // queued job rather than deadlocking on its reply.
    drop(probe);
    drop(occupant);
    let mut handle = handle;
    handle.stop();
}
