//! Robustness of the portable replay-trace format (`res-trace`).
//!
//! Traces and solver stores answer damage differently, on purpose. The
//! store degrades — any damage falls back to a cold start because a
//! store is only a cache. A trace is a *claim* ("this schedule
//! reproduces that failure"), and replaying half a schedule can
//! "verify" something the recording never said, so every kind of
//! damage here must surface as a typed [`TraceError`] and never as a
//! partial trace, a panic, or a silent PASS. Each test damages a real
//! trace a different way — in both encodings where the damage applies —
//! and asserts the exact error class.

use res_debugger::prelude::*;
use res_debugger::trace::{Encoding, TraceError};
use res_debugger::triage::bucket_key_for;
use res_debugger::workloads::run_to_failure;

/// One recorded trace of the deterministic DivByZero scenario, plus
/// the program it was recorded against.
fn recorded() -> (Program, TraceFile) {
    let program = build_workload(
        BugKind::DivByZero,
        WorkloadParams {
            prefix_iters: 2,
            hash_rounds: 1,
        },
    );
    let machine = (0..500)
        .find_map(|s| run_to_failure(&program, s))
        .expect("DivByZero workload must fault");
    let dump = Coredump::capture(&machine);
    let engine = ResEngine::new(&program, ResConfig::default());
    let result = engine.synthesize(&dump);
    let bucket = bucket_key_for(&program, &dump, &result.suffixes);
    let trace = result
        .suffixes
        .iter()
        .find_map(|s| {
            record_trace(
                &program,
                &dump,
                s,
                Some(bucket.clone()),
                &Recorder::disabled(),
            )
            .ok()
        })
        .expect("a suffix must record");
    (program, trace)
}

#[test]
fn truncation_is_torn_never_partial() {
    let (_, trace) = recorded();
    for encoding in [Encoding::Json, Encoding::Binary] {
        let bytes = trace.to_bytes(encoding);
        // Tear at several depths: mid-final-record, mid-file, just past
        // the magic. Every depth must produce a typed error — a torn
        // trace never yields a shorter schedule.
        for keep in [bytes.len() - 3, bytes.len() / 2, 40] {
            let err = TraceFile::from_bytes(&bytes[..keep])
                .expect_err(&format!("{}: tear at {keep} accepted", encoding.name()));
            assert!(
                matches!(err, TraceError::Torn { .. } | TraceError::Missing(_)),
                "{}: tear at {keep} gave {err:?}",
                encoding.name()
            );
        }
        // Torn inside the magic itself: not recognizably a trace.
        assert!(matches!(
            TraceFile::from_bytes(&bytes[..4]),
            Err(TraceError::NotATrace)
        ));
    }
}

#[test]
fn corrupted_payload_is_torn_at_the_damaged_record() {
    let (_, trace) = recorded();
    // Text: flip one payload byte mid-file; the checksum catches it.
    let text = trace.to_bytes(Encoding::Json);
    let mut tampered = text.clone();
    let mid = tampered.len() / 2;
    tampered[mid] ^= 0x01;
    match TraceFile::from_bytes(&tampered) {
        Err(TraceError::Torn { record }) => assert!(record > 0, "magic is intact"),
        other => panic!("corrupt text byte gave {other:?}"),
    }
    // Binary: same damage, same answer.
    let bin = trace.to_bytes(Encoding::Binary);
    let mut tampered = bin.clone();
    let mid = tampered.len() / 2;
    tampered[mid] ^= 0x01;
    assert!(
        matches!(
            TraceFile::from_bytes(&tampered),
            Err(TraceError::Torn { .. })
        ),
        "corrupt binary byte must be torn"
    );
}

#[test]
fn foreign_bytes_are_not_a_trace() {
    for junk in [
        &b""[..],
        b"hello world\n",
        b"RES-STORE 1 deadbeef\n", // a solver store, not a trace
        b"{\"header\":{}}",
    ] {
        assert!(
            matches!(TraceFile::from_bytes(junk), Err(TraceError::NotATrace)),
            "accepted junk {junk:?}"
        );
    }
}

#[test]
fn future_format_version_is_refused_with_the_version() {
    let (_, trace) = recorded();
    // Text magic line: `RES-TRACE 1 <fp>` -> version 99.
    let text = String::from_utf8(trace.to_bytes(Encoding::Json)).unwrap();
    let bumped = text.replacen("RES-TRACE 1", "RES-TRACE 99", 1);
    assert_eq!(
        TraceFile::from_bytes(bumped.as_bytes()).unwrap_err(),
        TraceError::Version(99)
    );
    // Binary magic: `RES-TRACE-BIN 1\n` -> version 9 (same length, so
    // the framing after it is untouched).
    let mut bin = trace.to_bytes(Encoding::Binary);
    let needle = b"RES-TRACE-BIN 1\n";
    assert_eq!(&bin[..needle.len()], needle);
    bin[needle.len() - 2] = b'9';
    assert_eq!(
        TraceFile::from_bytes(&bin).unwrap_err(),
        TraceError::Version(9)
    );
}

#[test]
fn missing_section_is_reported_by_name() {
    let (_, trace) = recorded();
    let text = String::from_utf8(trace.to_bytes(Encoding::Json)).unwrap();
    // Drop the expected-outcome record (tag X) entirely; the file is
    // otherwise pristine, so this exercises the completeness check
    // rather than the framing.
    let without: String = text
        .lines()
        .filter(|l| !l.starts_with("X "))
        .map(|l| format!("{l}\n"))
        .collect();
    assert_eq!(
        TraceFile::from_bytes(without.as_bytes()).unwrap_err(),
        TraceError::Missing("expected-outcome")
    );
}

#[test]
fn replay_refuses_a_foreign_program_by_fingerprint() {
    let (_, trace) = recorded();
    let other = build_workload(
        BugKind::UseAfterFree,
        WorkloadParams {
            prefix_iters: 2,
            hash_rounds: 1,
        },
    );
    let err = replay_trace(&other, &trace, &Recorder::disabled()).unwrap_err();
    match err {
        TraceError::Fingerprint { expected, got } => {
            assert_eq!(expected, trace.header.program_fp);
            assert_ne!(got, expected);
        }
        other => panic!("foreign program gave {other:?}"),
    }
}

/// Damage must also be typed end to end: a torn file on disk surfaces
/// through [`TraceFile::read`] the same way as through `from_bytes`.
#[test]
fn read_from_disk_reports_the_same_typed_errors() {
    let (_, trace) = recorded();
    let dir = std::env::temp_dir().join(format!("res-trace-robust-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("t.restrace");
    trace.write(&path).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
    assert!(matches!(
        TraceFile::read(&path),
        Err(TraceError::Torn { .. } | TraceError::Missing(_))
    ));
    assert!(matches!(
        TraceFile::read(&dir.join("absent.restrace")),
        Err(TraceError::Io(_))
    ));
    let _ = std::fs::remove_dir_all(&dir);
}
