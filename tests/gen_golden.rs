//! Golden-fixture regression for the `res-gen` generator.
//!
//! The generator's determinism contract says: same `GenSpec` → byte-
//! identical assembly, byte-identical assembled program, the same
//! schedule hint, and therefore the same first-failure coredump. The
//! fixture pins all of that for a fixed seed grid across every class,
//! so any unintentional drift — a reordered rng draw, a template tweak,
//! a serialization change — fails CI even when the generator still
//! "works".
//!
//! To regenerate after an *intentional* generator change:
//!
//! ```text
//! RES_REGEN_FIXTURES=1 cargo test --test gen_golden
//! ```

use std::path::PathBuf;

use res_debugger::store::fnv64;
use res_debugger::workloads::gen::{collect_failures, generate, GenClass, GenSpec};

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn check_golden(name: &str, rendered: &str) {
    let path = fixture_path(name);
    if std::env::var_os("RES_REGEN_FIXTURES").is_some() {
        std::fs::write(&path, format!("{rendered}\n")).expect("write fixture");
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing fixture {} ({e}); regenerate with RES_REGEN_FIXTURES=1",
            path.display()
        )
    });
    assert_eq!(
        golden.trim_end(),
        rendered,
        "fixture {name} drifted: the generator no longer emits the same \
         programs/dumps for a fixed GenSpec; if the change is \
         intentional, regenerate with RES_REGEN_FIXTURES=1"
    );
}

/// One fixture line per (class, seed): the ground truth plus digests of
/// the serialized program and first-failure coredump.
fn render() -> String {
    let mut out = String::new();
    for class in GenClass::ALL {
        for seed in [3u64, 11] {
            let spec = GenSpec {
                seed,
                class,
                size: 1,
            };
            let gp = generate(spec);
            let failure = &collect_failures(&gp, 1)[0];
            out.push_str(&format!(
                "{cls} seed={seed} site={site} hint={hint} prog=fnv64:{p:016x} \
                 fault={fault} dump=fnv64:{d:016x}\n",
                cls = class.name(),
                site = gp.truth.site,
                hint = gp.truth.schedule_hint,
                p = fnv64(mvm_json::to_string(&gp.program).as_bytes()),
                fault = failure.fault_class,
                d = fnv64(mvm_json::to_string(&failure.dump).as_bytes()),
            ));
        }
    }
    out.trim_end().to_string()
}

#[test]
fn generator_output_is_pinned() {
    check_golden("gen_golden.txt", &render());
}

#[test]
fn regeneration_is_reproducible_within_one_process() {
    // The fixture pins cross-process determinism; this pins the cheaper
    // in-process half without touching the file.
    assert_eq!(render(), render());
}
