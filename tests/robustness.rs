//! Robustness tests: misbehaving inputs, edge configurations, and the
//! engine's honesty about divergence.

use res_debugger::isa::BinOp;
use res_debugger::machine::{LbrEntry, LbrRing, Machine, MachineConfig};
use res_debugger::prelude::*;
use res_debugger::symbolic::{Expr, SolveResult, Solver, SolverConfig};

#[test]
fn lbr_filtered_recording_matches_engine_expectations() {
    // A machine configured with the §2.4 filtering extension records
    // only conditional branches; the engine must be told (lbr_filtered)
    // and still synthesize correctly.
    let p = build_workload(BugKind::Figure1, WorkloadParams::default());
    let mut m = Machine::new(
        p.clone(),
        MachineConfig {
            lbr_capacity: 4,
            lbr_filter_inferrable: true,
            ..MachineConfig::default()
        },
    );
    m.run();
    let d = Coredump::capture(&m);
    // Filtered rings contain no inferrable transfers.
    assert!(d.lbr.iter().all(|e| !e.inferrable));
    let engine = ResEngine::new(
        &p,
        ResConfig::builder()
            .use_lbr(true)
            .lbr_filtered(true)
            .build(),
    );
    let result = engine.synthesize(&d);
    assert!(
        matches!(result.verdict, Verdict::SuffixFound),
        "{:?}",
        result.stats
    );
    assert!(result
        .suffixes
        .iter()
        .any(|s| replay_suffix(&p, &d, s).reproduced));
}

#[test]
fn replay_reports_divergence_for_tampered_suffix() {
    // A suffix whose initial image is tampered with must not silently
    // "reproduce": the replayer reports the divergence.
    let p = build_workload(BugKind::DivByZero, WorkloadParams::default());
    let mut m = Machine::new(p.clone(), MachineConfig::default());
    m.run();
    let d = Coredump::capture(&m);
    let engine = ResEngine::new(&p, ResConfig::default());
    let result = engine.synthesize(&d);
    let mut sfx = result.suffixes[0].clone();
    let ok = replay_suffix(&p, &d, &sfx);
    assert!(ok.reproduced);
    // Tamper: flip a cell of Mi (or inject one if empty).
    if let Some(cell) = sfx.initial_cells.first_mut() {
        cell.2 ^= 0xff;
    } else {
        sfx.initial_cells.push((
            res_debugger::isa::layout::GLOBAL_BASE,
            res_debugger::isa::Width::W8,
            0xdead,
        ));
    }
    let bad = replay_suffix(&p, &d, &sfx);
    assert!(!bad.reproduced, "tampered suffix must not reproduce");
}

#[test]
fn solver_scales_to_wider_constraint_sets() {
    // A 12-symbol chained system: σ0+σ1=K0, σ1+σ2=K1, ... with σ0
    // pinned; forced-value derivation must crack it without search
    // explosion.
    let solver = Solver::with_config(SolverConfig::default());
    let mut cs = vec![Expr::bin(BinOp::Eq, Expr::sym(0), Expr::konst(7))];
    for i in 0..11u32 {
        cs.push(Expr::bin(
            BinOp::Eq,
            Expr::bin(BinOp::Add, Expr::sym(i), Expr::sym(i + 1)),
            Expr::konst(100 + i as u64),
        ));
    }
    let SolveResult::Sat(m) = solver.check(&cs) else {
        panic!("chained system must be sat");
    };
    for c in &cs {
        assert_eq!(m.eval_total(c), Some(1), "violated {c}");
    }
}

#[test]
fn lbr_ring_model_matches_hardware_semantics() {
    // Capacity-bounded, order-preserving, filter drops inferrable.
    let mut ring = LbrRing::new(2).with_filtering(true);
    let mk = |b: u32, inferrable: bool| LbrEntry {
        tid: 0,
        from: res_debugger::isa::Loc {
            func: res_debugger::isa::FuncId(0),
            block: res_debugger::isa::BlockId(b),
            inst: 0,
        },
        to: res_debugger::isa::Loc {
            func: res_debugger::isa::FuncId(0),
            block: res_debugger::isa::BlockId(b + 1),
            inst: 0,
        },
        inferrable,
    };
    for b in 0..6 {
        ring.record(mk(b, b % 2 == 0));
    }
    let got: Vec<u32> = ring.entries().map(|e| e.from.block.0).collect();
    assert_eq!(
        got,
        vec![3, 5],
        "filtered ring keeps last essential entries"
    );
}

#[test]
fn engine_survives_minimal_and_maximal_budgets() {
    let p = build_workload(BugKind::SemanticAssert, WorkloadParams::default());
    let mut m = Machine::new(p.clone(), MachineConfig::default());
    m.run();
    let d = Coredump::capture(&m);
    // Degenerate budgets must not panic and must answer honestly.
    for (depth, nodes) in [(1usize, 1u64), (2, 2), (64, 50_000)] {
        let engine = ResEngine::new(
            &p,
            ResConfig::builder()
                .max_depth(depth)
                .max_nodes(nodes)
                .build(),
        );
        let result = engine.synthesize(&d);
        match result.verdict {
            Verdict::SuffixFound => {
                assert!(!result.suffixes.is_empty());
            }
            Verdict::BudgetExhausted | Verdict::NoFeasibleSuffix { .. } => {}
        }
    }
}

#[test]
fn corpus_reports_are_self_consistent() {
    use res_debugger::workloads::{generate_corpus, CorpusSpec};
    let corpus = generate_corpus(&CorpusSpec {
        kinds: vec![BugKind::DivByZero, BugKind::HashChain],
        per_kind: 2,
        ..CorpusSpec::default()
    });
    for r in &corpus {
        // The minidump is a faithful projection of the dump.
        assert_eq!(r.minidump.fault, r.dump.fault);
        assert_eq!(r.minidump.call_stack(), r.dump.call_stack());
        // The seed re-derives the same failure deterministically.
        let m = res_debugger::workloads::run_to_failure(&r.program, r.seed).expect("re-fails");
        let d2 = Coredump::capture(&m);
        assert_eq!(
            res_debugger::coredump::diff_dumps(&r.dump, &d2, 8).is_empty(),
            true
        );
    }
}
