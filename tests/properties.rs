//! Property-based tests over the core invariants, on the in-repo
//! `proptest-mini` harness. Case counts match the original proptest
//! setup (256 per property; 8 for the expensive end-to-end one), and a
//! failure panics with the master seed so any counterexample reproduces
//! via `RES_PROP_SEED=<seed> cargo test`.

use proptest_mini::{
    any_u64, any_u8, check, pair, prop_assert, prop_assert_eq, triple, u32_range, u64_range,
    usize_range, vec_of, Config,
};

use res_debugger::isa::{BinOp, UnOp};
use res_debugger::machine::{Machine, MachineConfig, Memory, Outcome, SchedPolicy};
use res_debugger::prelude::*;
use res_debugger::symbolic::{Expr, Interval, Model, SolveResult, Solver, SolverSession};

/// The expression simplifier never changes semantics: evaluating the
/// simplified tree equals evaluating the original operation.
#[test]
fn simplifier_preserves_binop_semantics() {
    check(
        "simplifier_preserves_binop_semantics",
        &Config::new(),
        &triple(any_u64(), any_u64(), usize_range(0, 17)),
        |&(a, b, op_idx)| {
            let ops = [
                BinOp::Add,
                BinOp::Sub,
                BinOp::Mul,
                BinOp::DivU,
                BinOp::RemU,
                BinOp::And,
                BinOp::Or,
                BinOp::Xor,
                BinOp::Shl,
                BinOp::Shr,
                BinOp::Sar,
                BinOp::Eq,
                BinOp::Ne,
                BinOp::LtU,
                BinOp::LeU,
                BinOp::LtS,
                BinOp::LeS,
            ];
            let op = ops[op_idx];
            let e = Expr::bin(op, Expr::konst(a), Expr::konst(b));
            match op.eval(a, b) {
                Some(v) => prop_assert_eq!(e.as_const(), Some(v)),
                None => prop_assert!(e.as_const().is_none()),
            }
            Ok(())
        },
    );
}

/// Simplification identities hold for symbolic operands under any
/// witness.
#[test]
fn simplifier_identities_sound() {
    check(
        "simplifier_identities_sound",
        &Config::new(),
        &pair(any_u64(), any_u64()),
        |&(x, c)| {
            let sym = Expr::sym(0);
            let lookup = |_: u32| Some(x);
            for (e, expected) in [
                (
                    Expr::bin(BinOp::Add, sym.clone(), Expr::konst(c)),
                    x.wrapping_add(c),
                ),
                (Expr::bin(BinOp::Xor, sym.clone(), sym.clone()), 0),
                (Expr::bin(BinOp::Sub, sym.clone(), sym.clone()), 0),
                (Expr::un(UnOp::Neg, Expr::un(UnOp::Neg, sym.clone())), x),
            ] {
                prop_assert_eq!(e.eval(&lookup), Some(expected));
            }
            Ok(())
        },
    );
}

/// A Sat answer from the solver always comes with a model that
/// satisfies every constraint.
#[test]
fn solver_models_are_witnesses() {
    check(
        "solver_models_are_witnesses",
        &Config::new(),
        &triple(any_u64(), any_u64(), u64_range(1, 1000)),
        |&(target, addend, bound)| {
            let cs = vec![
                Expr::bin(
                    BinOp::Eq,
                    Expr::bin(BinOp::Add, Expr::sym(0), Expr::konst(addend)),
                    Expr::konst(target),
                ),
                Expr::bin(BinOp::LtU, Expr::sym(1), Expr::konst(bound)),
            ];
            let solver = Solver::new();
            if let SolveResult::Sat(m) = solver.check(&cs) {
                for c in &cs {
                    prop_assert_eq!(m.eval_total(c).map(|v| v != 0), Some(true));
                }
            } else {
                // x + addend == target is always solvable.
                prop_assert!(false, "must be sat");
            }
            Ok(())
        },
    );
}

/// The memoizing session is transparent: over random constraint sets,
/// a cached answer always equals what a fresh solver would say, and
/// re-asking the same set is a cache hit.
#[test]
fn solver_session_cache_is_transparent() {
    check(
        "solver_session_cache_is_transparent",
        &Config::new(),
        &triple(vec_of(any_u64(), 1, 4), any_u64(), usize_range(0, 5)),
        |(consts, x, op_idx)| {
            let ops = [
                BinOp::Eq,
                BinOp::Ne,
                BinOp::LtU,
                BinOp::LeU,
                BinOp::LtS,
                BinOp::LeS,
            ];
            let cs: Vec<_> = consts
                .iter()
                .enumerate()
                .map(|(i, &c)| {
                    Expr::bin(
                        ops[*op_idx],
                        Expr::bin(BinOp::Add, Expr::sym((i % 2) as u32), Expr::konst(c)),
                        Expr::konst(*x),
                    )
                })
                .collect();
            let session = SolverSession::new();
            let first = session.check(&cs);
            let second = session.check(&cs);
            let fresh = Solver::new().check(&cs);
            prop_assert_eq!(format!("{first:?}"), format!("{fresh:?}"));
            prop_assert_eq!(format!("{second:?}"), format!("{fresh:?}"));
            prop_assert!(session.stats().cache_hits >= 1);
            Ok(())
        },
    );
}

/// Interval refinement never *adds* values: refined ⊆ original.
#[test]
fn interval_refinement_shrinks() {
    check(
        "interval_refinement_shrinks",
        &Config::new(),
        &triple(any_u64(), any_u64(), any_u64()),
        |&(lo, hi, v)| {
            let iv = Interval::new(lo.min(hi), lo.max(hi));
            for refined in [
                iv.refine_lt(v),
                iv.refine_le(v),
                iv.refine_gt(v),
                iv.refine_ge(v),
                iv.refine_ne(v),
            ] {
                prop_assert!(refined.count() <= iv.count());
                if !refined.is_empty() {
                    prop_assert!(iv.contains(refined.lo) && iv.contains(refined.hi));
                }
            }
            Ok(())
        },
    );
}

/// Memory round-trips arbitrary byte strings at arbitrary addresses.
#[test]
fn memory_round_trips() {
    check(
        "memory_round_trips",
        &Config::new(),
        &pair(u64_range(0, u64::MAX - 64), vec_of(any_u8(), 1, 32)),
        |(addr, bytes)| {
            let mut m = Memory::new();
            m.write_bytes(*addr, bytes);
            prop_assert_eq!(m.read_bytes(*addr, bytes.len()), bytes.clone());
            Ok(())
        },
    );
}

/// Machine execution is deterministic: identical configs produce
/// identical outcomes, step counts, and memory.
#[test]
fn machine_is_deterministic() {
    check(
        "machine_is_deterministic",
        &Config::new(),
        &pair(any_u64(), u32_range(0, 1000)),
        |&(seed, switch)| {
            let p = build_workload(
                BugKind::DataRace,
                WorkloadParams {
                    prefix_iters: 3,
                    hash_rounds: 1,
                },
            );
            let run = || {
                let mut m = Machine::new(
                    p.clone(),
                    MachineConfig {
                        sched: SchedPolicy::Random {
                            seed,
                            switch_per_mille: switch,
                        },
                        max_steps: 200_000,
                        ..MachineConfig::default()
                    },
                );
                let o = m.run();
                (format!("{o:?}"), m.steps(), m.memory().page_count())
            };
            prop_assert_eq!(run(), run());
            Ok(())
        },
    );
}

/// Models are total under `get_or_zero` and never panic.
#[test]
fn model_total_eval_never_fails() {
    check(
        "model_total_eval_never_fails",
        &Config::new(),
        &vec_of(any_u64(), 1, 8),
        |syms| {
            let mut m = Model::new();
            for (i, v) in syms.iter().enumerate() {
                m.set(i as u32, *v);
            }
            let e = Expr::bin(
                BinOp::Add,
                Expr::sym(0),
                Expr::bin(BinOp::Xor, Expr::sym(100), Expr::konst(5)),
            );
            prop_assert!(m.eval_total(&e).is_some());
            Ok(())
        },
    );
}

/// End-to-end: for the deterministic single-threaded workloads, every
/// synthesized suffix replays into the exact coredump — across
/// randomized prefix lengths.
#[test]
fn synthesis_replay_round_trip() {
    check(
        "synthesis_replay_round_trip",
        &Config::with_cases(8),
        &u64_range(1, 200),
        |&prefix| {
            let p = build_workload(
                BugKind::DivByZero,
                WorkloadParams {
                    prefix_iters: prefix,
                    hash_rounds: 1,
                },
            );
            let mut m = Machine::new(p.clone(), MachineConfig::default());
            let o = m.run();
            let faulted = matches!(o, Outcome::Faulted { .. });
            prop_assert!(faulted);
            let d = Coredump::capture(&m);
            let engine = ResEngine::new(&p, ResConfig::default());
            let result = engine.synthesize(&d);
            let found = matches!(result.verdict, Verdict::SuffixFound);
            prop_assert!(found);
            let ok = result
                .suffixes
                .iter()
                .any(|s| replay_suffix(&p, &d, s).reproduced);
            prop_assert!(ok);
            Ok(())
        },
    );
}
