//! Bounded-wall-clock runs: an expired deadline must surface as
//! [`CutReason::Deadline`] with a well-formed partial result — never a
//! hang, a panic, or a confident verdict the search did not earn.

use std::time::Duration;

use res_debugger::baselines::{ForwardConfig, ForwardSynthesizer};
use res_debugger::prelude::*;
use res_debugger::res::{Budget, CutReason};
use res_debugger::workloads::run_to_failure;

fn crash() -> (Program, Coredump) {
    let program = build_workload(
        BugKind::DivByZero,
        WorkloadParams {
            prefix_iters: 2,
            hash_rounds: 1,
        },
    );
    let machine = (0..500)
        .find_map(|s| run_to_failure(&program, s))
        .expect("DivByZero workload must fault");
    let dump = Coredump::capture(&machine);
    (program, dump)
}

#[test]
fn expired_deadline_is_a_reported_cut_with_a_well_formed_result() {
    let (program, dump) = crash();
    let engine = ResEngine::new(
        &program,
        ResConfig::builder().deadline(Some(Duration::ZERO)).build(),
    );
    let result = engine.synthesize(&dump);
    assert_eq!(result.verdict, Verdict::BudgetExhausted);
    assert_eq!(result.stats.cut, Some(CutReason::Deadline));
    assert!(
        result.suffixes.is_empty(),
        "a zero deadline leaves no time to complete any suffix"
    );
    assert!(
        result.stats.abandoned.nodes >= 1,
        "the cut must account for the abandoned frontier (at least the root)"
    );
    assert_eq!(result.stats.nodes_expanded, 0);
    assert!(result.parallel.is_none(), "single-worker run");
}

#[test]
fn expired_deadline_with_workers_still_reports_the_cut() {
    let (program, dump) = crash();
    let engine = ResEngine::new(
        &program,
        ResConfig::builder()
            .deadline(Some(Duration::ZERO))
            .workers(2)
            .build(),
    );
    let result = engine.synthesize(&dump);
    assert_eq!(result.verdict, Verdict::BudgetExhausted);
    assert_eq!(result.stats.cut, Some(CutReason::Deadline));
    assert!(result.suffixes.is_empty());
    let report = result.parallel.expect("sharded run reports speculation");
    assert_eq!(report.workers, 2);
    assert_eq!(
        report.speculative.cut,
        Some(CutReason::Deadline),
        "each speculative worker hits the same deadline"
    );
}

#[test]
fn generous_deadline_does_not_perturb_the_search() {
    let (program, dump) = crash();
    let bounded = ResEngine::new(
        &program,
        ResConfig::builder()
            .deadline(Some(Duration::from_secs(3600)))
            .build(),
    )
    .synthesize(&dump);
    let unbounded = ResEngine::new(&program, ResConfig::default()).synthesize(&dump);
    assert_eq!(bounded.verdict, unbounded.verdict);
    assert_eq!(bounded.stats.cut, None);
    assert_eq!(
        format!("{:?}", bounded.suffixes),
        format!("{:?}", unbounded.suffixes)
    );
}

#[test]
fn forward_es_deadline_is_reported_before_any_candidate_runs() {
    let (program, dump) = crash();
    let goal = Minidump::from_coredump(&dump);
    let r = ForwardSynthesizer::new(ForwardConfig {
        budget: Budget {
            deadline: Some(Duration::ZERO),
            ..ForwardConfig::default().budget
        },
        ..ForwardConfig::default()
    })
    .synthesize(&program, &goal);
    assert!(!r.found);
    assert_eq!(r.stats.cut, Some(CutReason::Deadline));
    assert_eq!(r.candidates_tried, 0);
}
