//! Determinism regression: the full RES pipeline — workload build,
//! production run, coredump capture, suffix synthesis, replay — is a
//! pure function of its seeds. Two runs with identical seeds must agree
//! byte-for-byte on the JSON-serialized dumps and on every synthesized
//! suffix.
//!
//! This is the property the hermetic build exists to protect: with the
//! PRNG, serializer, and scheduler all in-repo, no dependency upgrade
//! can silently change a generated sequence or a serialized byte.

use res_debugger::prelude::*;
use res_debugger::workloads::run_to_failure;

/// One full pipeline pass, reduced to comparable bytes.
struct PipelineFingerprint {
    program_json: String,
    dump_json: String,
    verdict: String,
    suffixes: Vec<String>,
    replays: Vec<bool>,
}

fn run_pipeline(kind: BugKind, prefix_iters: u64) -> PipelineFingerprint {
    let program = build_workload(
        kind,
        WorkloadParams {
            prefix_iters,
            hash_rounds: 2,
        },
    );
    let machine = (0..500)
        .find_map(|s| run_to_failure(&program, s))
        .unwrap_or_else(|| panic!("{} must fault", kind.name()));
    let dump = Coredump::capture(&machine);
    let engine = ResEngine::new(&program, ResConfig::default());
    let result = engine.synthesize(&dump);
    PipelineFingerprint {
        program_json: mvm_json::to_string_pretty(&program),
        dump_json: mvm_json::to_string_pretty(&dump),
        verdict: format!("{:?}", result.verdict),
        suffixes: result.suffixes.iter().map(|s| format!("{s:?}")).collect(),
        replays: result
            .suffixes
            .iter()
            .map(|s| replay_suffix(&program, &dump, s).reproduced)
            .collect(),
    }
}

fn assert_identical(kind: BugKind, prefix_iters: u64) {
    let a = run_pipeline(kind, prefix_iters);
    let b = run_pipeline(kind, prefix_iters);
    assert_eq!(
        a.program_json,
        b.program_json,
        "{}: program JSON differs",
        kind.name()
    );
    assert_eq!(
        a.dump_json,
        b.dump_json,
        "{}: coredump JSON differs",
        kind.name()
    );
    assert_eq!(a.verdict, b.verdict, "{}: verdict differs", kind.name());
    assert_eq!(
        a.suffixes,
        b.suffixes,
        "{}: synthesized suffixes differ",
        kind.name()
    );
    assert_eq!(
        a.replays,
        b.replays,
        "{}: replay outcomes differ",
        kind.name()
    );
    assert!(
        !a.suffixes.is_empty(),
        "{}: expected at least one suffix",
        kind.name()
    );
}

/// Deterministic single-threaded pipeline: byte-identical end to end.
#[test]
fn sequential_pipeline_is_byte_identical() {
    assert_identical(BugKind::DivByZero, 25);
    assert_identical(BugKind::UseAfterFree, 10);
}

/// Concurrent workload under the seeded random scheduler: the schedule
/// is random but seed-derived, so the pipeline is still reproducible.
#[test]
fn concurrent_pipeline_is_byte_identical() {
    assert_identical(BugKind::DataRace, 5);
}

/// Different seeds must be *able* to diverge — guards against the
/// scheduler ignoring its seed (which would make the determinism
/// assertions above vacuous).
#[test]
fn scheduler_seed_actually_matters() {
    let program = build_workload(
        BugKind::DataRace,
        WorkloadParams {
            prefix_iters: 5,
            hash_rounds: 2,
        },
    );
    let trace_for = |seed: u64| {
        let mut m = Machine::new(
            program.clone(),
            MachineConfig {
                sched: SchedPolicy::Random {
                    seed,
                    switch_per_mille: 400,
                },
                max_steps: 500_000,
                ..MachineConfig::default()
            },
        );
        let o = m.run();
        (format!("{o:?}"), m.steps())
    };
    let baseline = trace_for(1);
    assert_eq!(baseline, trace_for(1), "same seed must reproduce");
    let diverged = (2..50u64).any(|s| trace_for(s) != baseline);
    assert!(diverged, "no seed in 2..50 diverged from seed 1");
}
