//! Observability invariants (see DESIGN.md, "Observability").
//!
//! Three claims, each load-bearing for the tracing subsystem:
//!
//! 1. **Passivity** — enabling tracing changes no synthesized byte, at
//!    any worker count. The recorder is written to, never read.
//! 2. **Fidelity** — the JSONL journal round-trips through `mvm-json`,
//!    reconstructs the full phase timeline (absorb/speculate/replay/
//!    commit spans, worker shards, solver and store events), and its
//!    counter totals reconcile *exactly* against `KernelStats`,
//!    `SessionStats`, and `StoreReport`.
//! 3. **Zero cost when off** — the disabled recorder allocates nothing
//!    on the hot path (asserted with an allocation counter, not
//!    timing).

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use res_debugger::obs::{read_journal, render, EventKind, Recorder, Registry};
use res_debugger::prelude::*;
use res_debugger::res::search::SynthesisResult;
use res_debugger::serve::{serve, ServeConfig, StatsRequest, StatsResponse, TriageClient};
use res_debugger::triage::TriageRequest;
use res_debugger::workloads::run_to_failure;

// ---------------------------------------------------------------------
// Allocation counting (claim 3). The counter is thread-local so
// parallel test threads cannot pollute each other's counts.

struct CountingAlloc;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCS.with(|c| c.get())
}

// ---------------------------------------------------------------------
// Shared scenario: the same deterministic DivByZero crash the golden
// suffix fixture uses.

fn crash() -> (Program, Coredump) {
    let program = build_workload(
        BugKind::DivByZero,
        WorkloadParams {
            prefix_iters: 2,
            hash_rounds: 1,
        },
    );
    let machine = (0..500)
        .find_map(|s| run_to_failure(&program, s))
        .expect("DivByZero workload must fault");
    let dump = Coredump::capture(&machine);
    (program, dump)
}

fn tmp_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("res-obs-determinism-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create tmp dir");
    dir
}

fn synth(workers: usize, trace: Option<&Path>, cache: Option<&Path>) -> (String, SynthesisResult) {
    let (program, dump) = crash();
    let mut builder = ResConfig::builder().workers(workers);
    if let Some(t) = trace {
        builder = builder.trace(t);
    }
    if let Some(c) = cache {
        builder = builder.cache_path(c);
    }
    let engine = ResEngine::new(&program, builder.build());
    let result = engine.synthesize(&dump);
    let mut rendered = String::new();
    rendered.push_str(&format!("verdict: {:?}\n", result.verdict));
    for (i, s) in result.suffixes.iter().enumerate() {
        rendered.push_str(&format!("--- suffix {i} ---\n{s:?}\n"));
    }
    (rendered, result)
}

// ---------------------------------------------------------------------
// Claim 1: passivity.

#[test]
fn tracing_on_and_off_synthesize_identical_suffixes_at_any_worker_count() {
    let dir = tmp_dir();
    for workers in [1usize, 2, 4] {
        let (plain, _) = synth(workers, None, None);
        let journal = dir.join(format!("passivity-w{workers}.jsonl"));
        let (traced, _) = synth(workers, Some(&journal), None);
        assert_eq!(
            plain, traced,
            "enabling tracing perturbed the search at workers = {workers}"
        );
    }
}

// ---------------------------------------------------------------------
// Claim 2: fidelity.

fn find_span<'a>(events: &'a [EventKind], name: &str) -> Option<(u64, Option<u64>)> {
    events.iter().find_map(|k| match k {
        EventKind::Span {
            id,
            parent,
            name: n,
        } if n == name => Some((*id, *parent)),
        _ => None,
    })
}

fn mark_fields<'a>(events: &'a [EventKind], name: &str) -> Option<BTreeMap<&'a str, &'a str>> {
    events.iter().find_map(|k| match k {
        EventKind::Mark { name: n, fields } if n == name => Some(
            fields
                .iter()
                .map(|(k, v)| (k.as_str(), v.as_str()))
                .collect(),
        ),
        _ => None,
    })
}

#[test]
fn journal_round_trips_and_reconciles_against_stats() {
    let dir = tmp_dir();
    let journal = dir.join("reconcile.jsonl");
    let workers = 2usize;
    let (_, result) = synth(workers, Some(&journal), None);

    let events = read_journal(&journal).expect("journal must parse");
    assert!(!events.is_empty());

    // Schema round-trip on every real event, not just synthetic ones.
    for e in &events {
        let line = mvm_json::to_string(e);
        let back: res_debugger::obs::Event = mvm_json::from_str(&line).expect("event reparses");
        assert_eq!(&back, e, "event drifted through serialization");
    }

    // Phase timeline: synthesize ⊃ {speculate, replay, commit}, with
    // one shard span per worker under speculate, and every opened span
    // closed.
    let kinds: Vec<EventKind> = events.iter().map(|e| e.kind.clone()).collect();
    let (synth_id, synth_parent) = find_span(&kinds, "synthesize").expect("synthesize span");
    assert_eq!(synth_parent, None, "synthesize is a root span");
    let (spec_id, spec_parent) = find_span(&kinds, "speculate").expect("speculate span");
    assert_eq!(spec_parent, Some(synth_id));
    for phase in ["replay", "commit"] {
        let (_, parent) = find_span(&kinds, phase).unwrap_or_else(|| panic!("{phase} span"));
        assert_eq!(parent, Some(synth_id), "{phase} must nest under synthesize");
    }
    for w in 0..workers {
        let (_, parent) = find_span(&kinds, &format!("speculate.w{w}.shard"))
            .unwrap_or_else(|| panic!("worker {w} shard span"));
        assert_eq!(parent, Some(spec_id), "shards nest under speculate");
    }
    let opened: Vec<u64> = kinds
        .iter()
        .filter_map(|k| match k {
            EventKind::Span { id, .. } => Some(*id),
            _ => None,
        })
        .collect();
    for id in &opened {
        assert!(
            kinds
                .iter()
                .any(|k| matches!(k, EventKind::End { id: e, .. } if e == id)),
            "span {id} never closed"
        );
    }

    // Counter totals reconcile exactly against the stat structs.
    let totals = render::counter_totals(&events);
    let get = |name: &str| totals.get(name).copied().unwrap_or(0);
    let stats = &result.stats;
    assert_eq!(get("kernel.nodes_expanded"), stats.nodes_expanded);
    assert_eq!(get("kernel.hypotheses"), stats.hypotheses);
    assert_eq!(get("kernel.artifacts"), result.suffixes.len() as u64);
    let solver = &stats.solver;
    assert_eq!(get("solver.queries"), solver.queries);
    assert_eq!(get("solver.cache_hits"), solver.cache_hits);
    assert_eq!(get("solver.cache_misses"), solver.cache_misses);
    assert_eq!(get("solver.absorbed_hits"), solver.absorbed_hits);
    assert_eq!(get("solver.store_hits"), solver.store_hits);
    assert_eq!(get("solver.assignments"), solver.assignments);
    assert_eq!(get("solver.sat"), solver.sat);
    assert_eq!(get("solver.unsat"), solver.unsat);
    let parallel = result.parallel.expect("sharded run has a report");
    for (w, &nodes) in parallel.per_worker_nodes.iter().enumerate() {
        assert_eq!(
            get(&format!("speculate.w{w}.kernel.nodes_expanded")),
            nodes,
            "worker {w} journal total != ParallelReport.per_worker_nodes"
        );
    }

    // The pretty-printer can explain the run from the journal alone.
    let report = render::render(&events);
    for needle in [
        "synthesize",
        "replay",
        "kernel.nodes_expanded",
        "solver.queries",
    ] {
        assert!(report.contains(needle), "render missing {needle:?}");
    }
}

#[test]
fn store_events_reconcile_against_store_report() {
    let dir = tmp_dir();
    let store_path = dir.join("reconcile.resstore");
    let _ = std::fs::remove_file(&store_path);

    // Cold run: the journal's commit mark matches the appended count.
    let cold_journal = dir.join("store-cold.jsonl");
    let (_, cold) = synth(1, Some(&cold_journal), Some(&store_path));
    let cold_report = cold.store.expect("store configured");
    let cold_kinds: Vec<EventKind> = read_journal(&cold_journal)
        .expect("cold journal parses")
        .into_iter()
        .map(|e| e.kind)
        .collect();
    let open = mark_fields(&cold_kinds, "store.open").expect("store.open mark");
    assert_eq!(open["outcome"], format!("{:?}", cold_report.outcome));
    assert_eq!(open["entries"], cold_report.loaded_entries.to_string());
    let commit = mark_fields(&cold_kinds, "store.commit").expect("store.commit mark");
    assert_eq!(commit["appended"], cold_report.appended_entries.to_string());
    assert!(
        find_span(&cold_kinds, "absorb").is_some(),
        "engine-level store absorb span missing"
    );

    // Warm run: loaded entries and store hits line up too.
    let warm_journal = dir.join("store-warm.jsonl");
    let (_, warm) = synth(1, Some(&warm_journal), Some(&store_path));
    let warm_report = warm.store.expect("store configured");
    assert!(warm_report.loaded_entries > 0, "second run must start warm");
    let warm_events = read_journal(&warm_journal).expect("warm journal parses");
    let warm_kinds: Vec<EventKind> = warm_events.iter().map(|e| e.kind.clone()).collect();
    let open = mark_fields(&warm_kinds, "store.open").expect("store.open mark");
    assert_eq!(open["entries"], warm_report.loaded_entries.to_string());
    let totals = render::counter_totals(&warm_events);
    assert_eq!(
        totals.get("solver.store_hits").copied().unwrap_or(0),
        warm_report.store_hits,
        "journal store-hit total != StoreReport.store_hits"
    );
    let absorb = mark_fields(&warm_kinds, "solver.absorb").expect("solver.absorb mark");
    assert_eq!(absorb["source"], "Store");
}

// ---------------------------------------------------------------------
// Claim 3: zero cost when off.

#[test]
fn disabled_recorder_allocates_nothing_on_the_hot_path() {
    let rec = Recorder::disabled();
    let scoped = rec.scoped("kernel");
    // Warm up thread-local state outside the measured window.
    rec.counter("warmup", 1);
    let before = allocations();
    for i in 0..1_000u64 {
        rec.counter("kernel.nodes_expanded", 1);
        rec.gauge("workers", i);
        rec.observe("suffix.len", i);
        rec.event_with("kernel.cut", || {
            vec![("reason".to_string(), "Nodes".to_string())]
        });
        let span = rec.span("synthesize");
        let child = span.child("replay");
        drop(child);
        drop(span);
        scoped.counter("frontier_pop", 1);
        let nested = scoped.scoped("inner");
        nested.counter("n", 1);
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "the disabled recorder must not allocate on the hot path"
    );
}

#[test]
fn disabled_registry_allocates_nothing_on_the_hot_path() {
    let reg = Registry::disabled();
    let histo = reg.histogram("serve.rtt.triage_us");
    let before = allocations();
    for i in 0..1_000u64 {
        histo.record(i);
        // Even the registration path is inert: disabled registries hand
        // out default handles without touching the name.
        let h = reg.histogram("serve.queue.wait_us");
        h.record(i * 3);
        let snaps = reg.snapshot();
        assert!(snaps.is_empty());
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "the disabled registry must not allocate on the hot path"
    );
}

// ---------------------------------------------------------------------
// Claim 4: the daemon's telemetry snapshot is deterministic modulo
// timestamps. Two daemons given the same request sequence answer
// `StatsQuery` with byte-identical `normalized()` views — counters,
// request/connection counts, histogram sample counts, and the flight
// recorder's ids/endpoints/outcomes are all functions of the sequence,
// never of the wall clock.

fn stats_after_fixed_sequence() -> StatsResponse {
    let (program, dump) = crash();
    let handle = serve(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    })
    .expect("boot daemon");
    let mut client = TriageClient::connect(handle.addr()).expect("connect");
    for _ in 0..2 {
        let _ = client
            .triage(TriageRequest::new(program.clone(), dump.clone()))
            .expect("io")
            .expect("admitted");
    }
    let resp = client.stats_query(&StatsRequest::default()).expect("stats");
    drop(client);
    let mut handle = handle;
    handle.stop();
    resp
}

#[test]
fn stats_response_is_deterministic_modulo_timestamps() {
    let a = stats_after_fixed_sequence();
    let b = stats_after_fixed_sequence();
    assert_ne!(
        a.uptime_us, 0,
        "the raw response does carry timing — only normalized() drops it"
    );
    assert_eq!(
        mvm_json::to_string(&a.normalized()),
        mvm_json::to_string(&b.normalized()),
        "normalized stats must be identical for identical request sequences"
    );
    // Spot-check the currency is non-trivial: real counts survive
    // normalization.
    let norm = a.normalized();
    assert_eq!(norm.requests, 3, "two triages + this stats query");
    assert_eq!(norm.connections, 1);
    let rtt = norm
        .histograms
        .iter()
        .find(|h| h.name == "serve.rtt.triage_us")
        .expect("triage rtt histogram");
    assert_eq!(rtt.count, 2);
    assert_eq!(norm.recent.len(), 2, "both triages in the flight recorder");
    assert!(norm.recent.iter().all(|r| r.total_us == 0));
}
