//! Golden-fixture tests for the JSON wire format.
//!
//! The fixtures under `tests/fixtures/` pin the exact on-disk encoding
//! of the three exchange types (`Program`, `Coredump`, `Minidump`) so
//! that format drift in `mvm-json` or in the `json_struct!`/`json_enum!`
//! expansions is caught as a diff, not discovered when an archived dump
//! no longer parses. Each test asserts three things:
//!
//! 1. serializing a deterministically-built value reproduces the
//!    checked-in fixture byte-for-byte,
//! 2. parsing the fixture back yields an equal value, and
//! 3. a compact re-serialization round-trips through the parser.
//!
//! To regenerate after an *intentional* format change:
//!
//! ```text
//! RES_REGEN_FIXTURES=1 cargo test --test golden_json
//! ```

use std::path::PathBuf;

use res_debugger::prelude::*;
use res_debugger::workloads::run_to_failure;

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// The canonical crash scenario for the fixtures: a short DivByZero
/// workload. Single-threaded and input-free up to the faulting divide,
/// so the run — and therefore the dump — is fully deterministic.
fn crash() -> (Program, Coredump) {
    let program = build_workload(
        BugKind::DivByZero,
        WorkloadParams {
            prefix_iters: 2,
            hash_rounds: 1,
        },
    );
    let machine = (0..500)
        .find_map(|s| run_to_failure(&program, s))
        .expect("DivByZero workload must fault");
    let dump = Coredump::capture(&machine);
    (program, dump)
}

fn check_golden<T>(name: &str, value: &T)
where
    T: mvm_json::ToJson + mvm_json::FromJson + PartialEq + std::fmt::Debug,
{
    let rendered = mvm_json::to_string_pretty(value);
    let path = fixture_path(name);
    if std::env::var_os("RES_REGEN_FIXTURES").is_some() {
        std::fs::write(&path, format!("{rendered}\n")).expect("write fixture");
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing fixture {} ({e}); regenerate with RES_REGEN_FIXTURES=1",
            path.display()
        )
    });
    assert_eq!(
        golden.trim_end(),
        rendered,
        "fixture {name} drifted from the serializer output; \
         if the format change is intentional, regenerate with RES_REGEN_FIXTURES=1"
    );
    let parsed: T = mvm_json::from_str(&golden).expect("fixture must parse");
    assert_eq!(&parsed, value, "fixture {name} parsed to a different value");
    let compact = mvm_json::to_string(&parsed);
    let reparsed: T = mvm_json::from_str(&compact).expect("compact form must parse");
    assert_eq!(reparsed, parsed, "compact round-trip changed {name}");
}

#[test]
fn program_matches_golden_fixture() {
    let (program, _) = crash();
    check_golden("program.json", &program);
}

#[test]
fn coredump_matches_golden_fixture() {
    let (_, dump) = crash();
    check_golden("coredump.json", &dump);
}

#[test]
fn minidump_matches_golden_fixture() {
    let (_, dump) = crash();
    check_golden("minidump.json", &Minidump::from_coredump(&dump));
}
