//! Property-based soundness of speculative yield: for *any* generated
//! corpus program and any worker count, a verdict-pruned replay must
//! (a) synthesize byte-identical suffixes to the plain sequential
//! search, (b) expand a subset of its nodes (strict whenever a skip
//! actually fired), and (c) reconcile exactly with it on effective
//! exploration totals — the actual counters plus the certified
//! accounting of every skipped subtree.
//!
//! Solver `assignments` are excluded from the effective-totals
//! comparison: an α-duplicate query whose occurrences straddle a skip
//! boundary is charged once in the full run but can be re-charged by
//! the pruned run (and vice versa), so assignment totals legitimately
//! differ. That is exactly why `skip_admissible` refuses to skip when a
//! solver-assignment budget is set.
//!
//! A failing case panics with the master seed and reproduces via
//! `RES_PROP_SEED=<seed> cargo test --test verdict_soundness`.

use std::cell::Cell;
use std::path::PathBuf;

use proptest_mini::{check, pair, prop_assert, prop_assert_eq, u64_range, usize_range, Config};

use res_debugger::prelude::*;
use res_debugger::workloads::gen::{generate, GenClass, GenSpec};
use res_debugger::workloads::run_to_failure;

const WORKER_GRID: [usize; 4] = [1, 2, 4, 8];

/// "At least this many instructions of reconstructed history":
/// dead-end suffixes below this are rejected late, which is what gives
/// the search tree genuinely exhausted — and therefore skippable —
/// subtrees.
const MIN_SUFFIX_STEPS: u64 = 32;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("res-verdict-sound-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn rendered(r: &res_debugger::res::SynthesisResult) -> String {
    format!("{:?} {:?}", r.verdict, r.suffixes)
}

/// Draws (spec, workers): an arbitrary generated program and a worker
/// count from the {1, 2, 4, 8} grid.
fn case_gen() -> proptest_mini::Gen<(GenSpec, usize)> {
    pair(
        pair(
            usize_range(0, GenClass::ALL.len() - 1),
            u64_range(0, 1 << 40),
        ),
        usize_range(0, WORKER_GRID.len() - 1),
    )
    .map(|((i, seed), w)| (GenSpec::new(GenClass::ALL[i], seed), WORKER_GRID[w]))
}

#[test]
fn verdict_pruned_replay_is_a_sound_strict_subset() {
    // Aggregate proof-of-work: across the whole run, certificates must
    // actually have been exported and consulted — a vacuously-passing
    // sweep (nothing ever skipped) is itself a failure.
    let total_skipped = Cell::new(0u64);
    let total_exported = Cell::new(0usize);

    check(
        "verdict_pruned_replay_is_a_sound_strict_subset",
        &Config::with_cases(8),
        &case_gen(),
        |&(spec, workers)| {
            let gp = generate(spec);
            let Some(m) = run_to_failure(&gp.program, gp.truth.schedule_hint) else {
                // The hint is validated by gen_properties; treat a miss
                // here as a generator bug, not a search bug.
                return Err(format!("schedule hint did not manifest for {spec:?}"));
            };
            let dump = Coredump::capture(&m);

            // The authoritative result: plain sequential search, no
            // store, certificate pruning off. `min_suffix_steps` is what
            // makes exhausted subtrees *possible* — without it every
            // dead end finalizes into an artifact and there is nothing
            // to skip (see DESIGN.md, "Speculative yield").
            let base_engine = ResEngine::new(
                &gp.program,
                ResConfig::builder()
                    .min_suffix_steps(MIN_SUFFIX_STEPS)
                    .speculative_yield(false)
                    .build(),
            );
            let base = base_engine.synthesize(&dump);
            let golden = rendered(&base);

            let dir = scratch(&format!("{:?}-{}-{workers}", spec.class, spec.seed));
            let store_path = dir.join("verdicts.resstore");
            let config = ResConfig::builder()
                .min_suffix_steps(MIN_SUFFIX_STEPS)
                .workers(workers)
                .cache_path(&store_path)
                .build();

            // Cold pass: populates the store (entries + certificates).
            let engine = ResEngine::new(&gp.program, config.clone());
            let cold = engine.synthesize(&dump);
            prop_assert!(
                rendered(&cold) == golden,
                "cold certified run diverged ({spec:?}, workers {workers})"
            );
            let cold_store = cold.store.expect("store configured");
            total_exported.set(total_exported.get() + cold_store.appended_verdicts);

            // Warm pass: consults persisted certificates and prunes.
            let engine = ResEngine::new(&gp.program, config);
            let warm = engine.synthesize(&dump);
            prop_assert!(
                rendered(&warm) == golden,
                "verdict-pruned run diverged ({spec:?}, workers {workers})"
            );

            // Subset: never more expansions than the full search, and
            // strictly fewer whenever a skip fired.
            prop_assert!(
                warm.stats.nodes_expanded <= base.stats.nodes_expanded,
                "pruned replay expanded more nodes ({} > {}) for {spec:?}",
                warm.stats.nodes_expanded,
                base.stats.nodes_expanded
            );
            if warm.stats.skipped_subtrees > 0 {
                prop_assert!(
                    warm.stats.nodes_expanded < base.stats.nodes_expanded,
                    "skips fired but no node was saved for {spec:?}"
                );
            }
            total_skipped.set(total_skipped.get() + warm.stats.skipped_subtrees);

            // Exact reconciliation on effective totals (assignments
            // excluded, see module docs).
            let mut eff_warm = warm.stats.effective();
            let mut eff_base = base.stats.effective();
            eff_warm.assignments = 0;
            eff_base.assignments = 0;
            prop_assert!(
                eff_warm == eff_base,
                "effective totals do not reconcile for {spec:?}, workers \
                 {workers}:\n  pruned: {eff_warm:?}\n  full:   {eff_base:?}"
            );
            prop_assert_eq!(warm.stats.deepest, base.stats.deepest);

            let _ = std::fs::remove_dir_all(&dir);
            Ok(())
        },
    );

    assert!(
        total_exported.get() > 0,
        "no run exported a single certificate — the sweep proved nothing"
    );
    assert!(
        total_skipped.get() > 0,
        "no warm run skipped a single subtree — the sweep proved nothing"
    );
}
