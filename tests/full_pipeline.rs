//! Cross-crate integration tests: the whole pipeline from workload to
//! verdict, through the facade crate.

use res_debugger::prelude::*;
use res_debugger::triage::bucket::res_bucket_key;
use res_debugger::triage::classify_with_res;
use res_debugger::workloads::run_to_failure;

fn failing_dump(kind: BugKind) -> (Program, Coredump) {
    let p = build_workload(kind, WorkloadParams::default());
    let m = (0..500)
        .find_map(|s| run_to_failure(&p, s))
        .expect("workload failure");
    (p, Coredump::capture(&m))
}

#[test]
fn every_workload_yields_a_reproducing_suffix_or_verdict() {
    // The engine must do something sensible for *every* bug class:
    // either a replay-verified suffix or an honest budget verdict.
    for kind in BugKind::ALL {
        let (p, d) = failing_dump(kind);
        let engine = ResEngine::new(&p, ResConfig::default());
        let result = engine.synthesize(&d);
        match result.verdict {
            Verdict::SuffixFound => {
                let reproduced = result
                    .suffixes
                    .iter()
                    .any(|s| replay_suffix(&p, &d, s).reproduced);
                assert!(reproduced, "{kind:?}: no suffix replayed");
            }
            other => panic!("{kind:?}: unexpected verdict {other:?}"),
        }
    }
}

#[test]
fn hotos_eval_bugs_all_get_concurrency_root_causes() {
    for kind in BugKind::HOTOS_EVAL {
        let (p, d) = failing_dump(kind);
        let engine = ResEngine::new(&p, ResConfig::default());
        let result = engine.synthesize(&d);
        let found = result.suffixes.iter().any(|s| {
            replay_suffix(&p, &d, s).reproduced && analyze_root_cause(&p, &d, s).is_concurrency()
        });
        assert!(found, "{kind:?}: concurrency root cause not identified");
    }
}

#[test]
fn bucket_keys_are_stable_across_manifestations() {
    let p = build_workload(BugKind::UseAfterFree, WorkloadParams::default());
    let config = ResConfig::default();
    let mut keys = std::collections::HashSet::new();
    for seed in [1u64, 7, 23] {
        let m = run_to_failure(&p, seed).expect("deterministic failure");
        let d = Coredump::capture(&m);
        keys.insert(res_bucket_key(&p, &d, &config));
    }
    assert_eq!(keys.len(), 1, "same bug must bucket identically: {keys:?}");
}

#[test]
fn exploitability_requires_taint_evidence() {
    let config = ResConfig::default();
    let (pt, dt) = failing_dump(BugKind::HeapOverflowTainted);
    let (pl, dl) = failing_dump(BugKind::HeapOverflowLocal);
    let tainted = classify_with_res(&pt, &dt, &config);
    let local = classify_with_res(&pl, &dl, &config);
    assert_eq!(tainted.name(), "EXPLOITABLE");
    assert_eq!(local.name(), "NOT_EXPLOITABLE");
}

#[test]
fn hardware_verdict_distinguishes_all_three_cases() {
    let (p, d) = failing_dump(BugKind::SemanticAssert);
    let config = ResConfig::default();
    assert_eq!(hardware_verdict(&p, &d, &config), HwVerdict::SoftwareBug);

    let mut flipped = d.clone();
    // Flip the `config` global the assertion depends on.
    res_debugger::coredump::flip_memory_bit_at(
        &mut flipped,
        res_debugger::isa::layout::GLOBAL_BASE,
        1,
    );
    assert!(matches!(
        hardware_verdict(&p, &flipped, &config),
        HwVerdict::HardwareSuspected { .. }
    ));
}

#[test]
fn suffix_focus_sets_are_tiny_relative_to_dump() {
    let (p, d) = failing_dump(BugKind::DataRace);
    let engine = ResEngine::new(&p, ResConfig::default());
    let result = engine.synthesize(&d);
    let sfx = result
        .suffixes
        .iter()
        .find(|s| replay_suffix(&p, &d, s).reproduced)
        .expect("reproducing suffix");
    // §3.3: the read/write sets focus attention on a few locations,
    // not the whole dump.
    assert!(sfx.read_set().len() < 32);
    assert!(sfx.write_set().len() < 32);
    assert!(d.size_bytes() > 4096);
}

#[test]
fn facade_prelude_is_sufficient_for_the_workflow() {
    // Compile-time check that the prelude covers the primary workflow.
    let p = build_workload(BugKind::DivByZero, WorkloadParams::default());
    let mut m = Machine::new(p.clone(), MachineConfig::default());
    let _: Outcome = m.run();
    let d = Coredump::capture(&m);
    let _ = Minidump::from_coredump(&d);
    let engine = ResEngine::new(&p, ResConfig::default());
    let result = engine.synthesize(&d);
    assert!(matches!(result.verdict, Verdict::SuffixFound));
}
