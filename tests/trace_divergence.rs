//! Point-of-first-divergence reporting: the `verify` half of the
//! record → fix → verify workflow.
//!
//! Each scenario records a trace of a buggy program, replays it against
//! the *repaired* program ([`build_fixed`]), and asserts the exact
//! divergence payload — event index, thread, and expected-vs-got — not
//! just "it failed". The payloads are what a developer reads to confirm
//! a fix changed precisely the behaviour it was supposed to change:
//!
//! * DivByZero's fix changes a stored value, so the first difference is
//!   a **write** divergence at the instruction that writes the repaired
//!   quota — with the recorded and replayed values side by side.
//! * SemanticAssert's fix changes only register state, so the replay
//!   tracks the recording all the way to the final step and reports a
//!   **fault** divergence with `got: None`: the recorded failure no
//!   longer happens at all.

use res_debugger::prelude::*;
use res_debugger::res::{Divergence, DivergenceKind};
use res_debugger::triage::bucket_key_for;
use res_debugger::workloads::{build_fixed, run_to_failure};

const PARAMS: WorkloadParams = WorkloadParams {
    prefix_iters: 2,
    hash_rounds: 1,
};

/// Crash `kind`, synthesize, and record the first reproducible suffix.
fn recorded(kind: BugKind) -> (Program, TraceFile) {
    let program = build_workload(kind, PARAMS);
    let machine = (0..500)
        .find_map(|s| run_to_failure(&program, s))
        .unwrap_or_else(|| panic!("{} workload must fault", kind.name()));
    let dump = Coredump::capture(&machine);
    let engine = ResEngine::new(&program, ResConfig::default());
    let result = engine.synthesize(&dump);
    let bucket = bucket_key_for(&program, &dump, &result.suffixes);
    let trace = result
        .suffixes
        .iter()
        .find_map(|s| {
            record_trace(
                &program,
                &dump,
                s,
                Some(bucket.clone()),
                &Recorder::disabled(),
            )
            .ok()
        })
        .unwrap_or_else(|| panic!("{} must record", kind.name()));
    (program, trace)
}

/// Sanity for every scenario: the unmodified program verifies PASS.
fn assert_passes(program: &Program, trace: &TraceFile) {
    let outcome = verify_trace(program, trace, &Recorder::disabled());
    assert!(outcome.fingerprint_matches);
    assert!(
        outcome.pass,
        "unmodified program must verify PASS, got {:?}",
        outcome.divergence
    );
    assert_eq!(outcome.divergence, None);
}

#[test]
fn fixed_div_by_zero_diverges_at_the_repaired_write() {
    let (program, trace) = recorded(BugKind::DivByZero);
    assert_passes(&program, &trace);

    let fixed = build_fixed(BugKind::DivByZero, PARAMS).expect("DivByZero has a fixed variant");
    let outcome = verify_trace(&fixed, &trace, &Recorder::disabled());
    assert!(!outcome.pass);
    assert!(!outcome.fingerprint_matches, "the fix changes the program");
    let d = outcome.divergence.expect("a fixed program must diverge");

    // The recording knows exactly where the buggy program zeroed the
    // quota: the *last* zero-valued write before the divide (the churn
    // prefix also stores zeros, but those are untouched by the fix).
    // Locate it in the trace rather than hardcoding the event index,
    // then demand an exact payload match.
    let (event, index, &(addr, width, _)) = trace
        .steps
        .iter()
        .enumerate()
        .rev()
        .find_map(|(ei, s)| {
            s.writes
                .iter()
                .enumerate()
                .find(|(_, &(_, _, v))| v == 0)
                .map(|(wi, w)| (ei, wi, w))
        })
        .expect("the recorded suffix contains the zeroing write");
    assert_eq!(
        d,
        Divergence {
            event,
            tid: trace.expected.faulting_tid,
            kind: DivergenceKind::Write {
                index,
                expected: Some((addr, width, 0)),
                got: Some((addr, width, 1)),
            },
        },
        "first divergence must be the repaired quota write"
    );
    // The report's rendering carries the same payload for humans.
    let shown = format!("{d}");
    assert!(shown.contains(&format!("event {event}")), "{shown}");
    assert!(shown.contains("expected"), "{shown}");
}

#[test]
fn fixed_semantic_assert_no_longer_faults() {
    let (program, trace) = recorded(BugKind::SemanticAssert);
    assert_passes(&program, &trace);

    let fixed =
        build_fixed(BugKind::SemanticAssert, PARAMS).expect("SemanticAssert has a fixed variant");
    let outcome = verify_trace(&fixed, &trace, &Recorder::disabled());
    assert!(!outcome.pass);
    let d = outcome.divergence.expect("a fixed program must diverge");

    // The fix only changes register state, so every recorded event
    // replays identically; the divergence is the final faulting step
    // itself — the recorded assert failure never happens.
    assert_eq!(
        d,
        Divergence {
            event: trace.steps.len(),
            tid: trace.expected.faulting_tid,
            kind: DivergenceKind::Fault {
                expected: trace.expected.fault.clone(),
                got: None,
            },
        },
        "the fix must make the recorded fault vanish, not move"
    );
}

#[test]
fn bugs_without_a_fixed_variant_decline() {
    assert!(build_fixed(BugKind::UseAfterFree, PARAMS).is_none());
}
