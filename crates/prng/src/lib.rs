//! # mvm-prng — deterministic std-only pseudo-random number generators
//!
//! Every stochastic choice in this workspace — scheduler preemption,
//! seeded input streams, fault-injection site selection, property-test
//! generation — must be a pure function of an explicit `u64` seed, so
//! that any failure reproduces from the seed alone. This crate is the
//! single home for the generators, replacing both the external `rand`
//! dependency and the copies of xorshift64* that used to be inlined in
//! `mvm-machine` and `mvm-core`.
//!
//! Three generators, by role:
//!
//! * [`XorShift64Star`] — the legacy machine/injector stream. Keeps the
//!   exact sequences of the previously inlined implementations: the
//!   input source and fault injectors OR the state with 1 on every draw
//!   ([`XorShift64Star::step`]); the scheduler forces the low bit only
//!   at seeding time ([`XorShift64Star::step_raw`]). Seeded executions,
//!   schedules, and injection sites recorded before the refactor still
//!   reproduce.
//! * [`SplitMix64`] — stateless-feeling 64-bit mixer; used to derive
//!   independent per-case seeds (e.g. one per property-test case) from
//!   a master seed.
//! * [`Xoshiro256StarStar`] — the workhorse generator for bulk random
//!   data (property-test value generation), seeded via SplitMix64 as
//!   its authors recommend.
//!
//! None of the generators are cryptographic; they are chosen for
//! reproducibility and speed.

/// The xorshift64* multiplier.
const XSS_MUL: u64 = 0x2545_f491_4f6c_dd1d;

/// xorshift64* with per-draw low-bit forcing.
///
/// This matches the historical inline implementations byte for byte:
/// each draw ORs the state with 1 before shifting, which guarantees a
/// nonzero state for any seed (including 0) at the cost of fixing the
/// state's low bit between draws.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XorShift64Star {
    state: u64,
}

impl XorShift64Star {
    /// Creates a generator from any seed (zero is fine).
    pub fn new(seed: u64) -> Self {
        XorShift64Star { state: seed }
    }

    /// The raw internal state (for embedding in serializable configs).
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Next pseudo-random value.
    pub fn next_u64(&mut self) -> u64 {
        Self::step(&mut self.state)
    }

    /// Advances a bare state word: the exact function previously copied
    /// into `mvm-machine`'s input source and `mvm-core`'s injectors.
    pub fn step(state: &mut u64) -> u64 {
        let mut x = *state | 1;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        *state = x;
        x.wrapping_mul(XSS_MUL)
    }

    /// Advances a bare state word *without* the per-draw `| 1`: the
    /// textbook xorshift64* step, byte-exact with `mvm-machine`'s
    /// scheduler, which forces the low bit only when seeding. The
    /// caller must keep the state nonzero (seed with `seed | 1`).
    pub fn step_raw(state: &mut u64) -> u64 {
        let mut x = *state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        *state = x;
        x.wrapping_mul(XSS_MUL)
    }

    /// Uniform-ish value in `0..n` (by modulo; `n` must be nonzero).
    pub fn next_below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// Sebastiano Vigna's SplitMix64.
///
/// Every output is a bijective mix of a simple counter, so nearby seeds
/// still produce decorrelated streams — exactly what deriving "case N
/// of master seed S" needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from any seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next pseudo-random value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// One-shot mix: the `i`-th output of a SplitMix64 seeded with
    /// `seed`, without constructing a generator.
    pub fn mix(seed: u64, i: u64) -> u64 {
        let mut g = SplitMix64::new(seed.wrapping_add(i.wrapping_mul(0x9e37_79b9_7f4a_7c15)));
        g.next_u64()
    }
}

/// Blackman & Vigna's xoshiro256**, seeded through SplitMix64.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Creates a generator, expanding the seed with SplitMix64 (the
    /// seeding procedure the algorithm's authors recommend).
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Xoshiro256StarStar {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Next pseudo-random value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform-ish value in `0..n` (by modulo; `n` must be nonzero).
    pub fn next_below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Uniform-ish value in the inclusive range `[lo, hi]`.
    pub fn next_in(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        let span = hi.wrapping_sub(lo);
        if span == u64::MAX {
            self.next_u64()
        } else {
            lo + self.next_below(span + 1)
        }
    }

    /// A biased coin: `true` with probability `num / den`.
    pub fn next_bool(&mut self, num: u64, den: u64) -> bool {
        debug_assert!(den > 0);
        self.next_below(den) < num
    }

    /// Fills a byte slice with pseudo-random data.
    pub fn fill_bytes(&mut self, out: &mut [u8]) {
        for chunk in out.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xorshift_matches_legacy_inline_sequence() {
        // The exact loop previously inlined in mvm-machine's
        // InputSource::Seeded and mvm-core's injectors.
        fn legacy(state: &mut u64) -> u64 {
            let mut x = *state | 1;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            *state = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }
        let mut s = 0xdead_beefu64;
        let mut g = XorShift64Star::new(0xdead_beef);
        for _ in 0..64 {
            assert_eq!(g.next_u64(), legacy(&mut s));
        }
        assert_eq!(g.state(), s);
    }

    #[test]
    fn step_raw_matches_legacy_scheduler_sequence() {
        // The exact loop previously inlined in mvm-machine's scheduler:
        // low bit forced at seeding only, textbook steps after that.
        fn legacy(state: &mut u64) -> u64 {
            let mut x = *state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            *state = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }
        let seed = 0xdead_beefu64 | 1;
        let (mut a, mut b) = (seed, seed);
        for _ in 0..64 {
            assert_eq!(XorShift64Star::step_raw(&mut a), legacy(&mut b));
            assert_ne!(a, 0, "odd-seeded raw stream must stay nonzero");
        }
        // The two step variants are genuinely different streams: once
        // the raw state goes even, per-draw |1 changes the next value.
        let mut raw = seed;
        let mut ord = seed;
        let diverged =
            (0..64).any(|_| XorShift64Star::step_raw(&mut raw) != XorShift64Star::step(&mut ord));
        assert!(diverged);
    }

    #[test]
    fn splitmix_reference_vector() {
        // Reference outputs for seed 0 (Vigna's splitmix64.c).
        let mut g = SplitMix64::new(0);
        assert_eq!(g.next_u64(), 0xe220a8397b1dcdaf);
        assert_eq!(g.next_u64(), 0x6e789e6aa1b965f4);
        assert_eq!(g.next_u64(), 0x06c45d188009454f);
    }

    #[test]
    fn xoshiro_is_seed_deterministic_and_seed_sensitive() {
        let seq = |seed| {
            let mut g = Xoshiro256StarStar::new(seed);
            (0..32).map(|_| g.next_u64()).collect::<Vec<_>>()
        };
        assert_eq!(seq(42), seq(42));
        assert_ne!(seq(42), seq(43));
        assert_ne!(seq(0), seq(1), "zero seed must still work");
    }

    #[test]
    fn mix_is_stable_and_index_sensitive() {
        assert_eq!(SplitMix64::mix(7, 3), SplitMix64::mix(7, 3));
        assert_ne!(SplitMix64::mix(7, 3), SplitMix64::mix(7, 4));
        assert_ne!(SplitMix64::mix(7, 3), SplitMix64::mix(8, 3));
    }

    #[test]
    fn range_helpers_respect_bounds() {
        let mut g = Xoshiro256StarStar::new(5);
        for _ in 0..1000 {
            let v = g.next_in(10, 20);
            assert!((10..=20).contains(&v));
            assert!(g.next_below(7) < 7);
        }
        // Degenerate and full ranges.
        assert_eq!(g.next_in(3, 3), 3);
        let _ = g.next_in(0, u64::MAX);
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut g = Xoshiro256StarStar::new(9);
        let mut buf = [0u8; 13];
        g.fill_bytes(&mut buf);
        let mut g2 = Xoshiro256StarStar::new(9);
        let mut buf2 = [0u8; 13];
        g2.fill_bytes(&mut buf2);
        assert_eq!(buf, buf2);
        assert_ne!(buf, [0u8; 13]);
    }

    #[test]
    fn bool_probabilities_are_sane() {
        let mut g = Xoshiro256StarStar::new(11);
        assert!((0..100).all(|_| g.next_bool(1, 1)));
        assert!((0..100).all(|_| !g.next_bool(0, 1)));
        let heads = (0..10_000).filter(|_| g.next_bool(1, 2)).count();
        assert!((4000..6000).contains(&heads), "{heads}");
    }
}
