//! A memoizing solver session.
//!
//! The RES search loop issues many satisfiability checks over constraint
//! sets that repeat: sibling hypotheses share the suffix they extend, the
//! hardware-error localization sweep re-solves the same relaxed sets, and
//! the global compatibility check grows one tagged constraint at a time.
//! Because [`ExprRef`]s are structurally hashed and the solver is a
//! deterministic function of its input, a `(constraint set → result)`
//! memo is exact: a cache hit returns precisely what a fresh
//! [`Solver::check`] would.
//!
//! [`SolverSession`] wraps a [`Solver`] with that memo plus cumulative
//! accounting — queries, hit/miss counts, sat/unsat/unknown tallies
//! (unknowns split by [`UnknownReason`]), and the total enumeration
//! assignments spent. The assignment total is what kernel-level solver
//! budgets are charged against; cache hits cost zero, which is the point.

use std::cell::RefCell;
use std::collections::HashMap;

use crate::expr::ExprRef;
use crate::solver::{SolveResult, Solver, SolverConfig, UnknownReason};

/// Cumulative counters for one [`SolverSession`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SessionStats {
    /// Total `check` calls.
    pub queries: u64,
    /// Queries answered from the memo cache.
    pub cache_hits: u64,
    /// Queries that ran the underlying solver.
    pub cache_misses: u64,
    /// Sat verdicts (counting cached replays).
    pub sat: u64,
    /// Unsat verdicts (counting cached replays).
    pub unsat: u64,
    /// Unknown verdicts caused by assignment-budget exhaustion.
    pub unknown_budget: u64,
    /// Unknown verdicts caused by a theory gap.
    pub unknown_incomplete: u64,
    /// Enumeration assignments spent by cache misses.
    pub assignments: u64,
}

impl SessionStats {
    /// Counter-wise difference `self - earlier`; use with a snapshot
    /// taken before a phase to attribute work to that phase.
    pub fn delta_since(&self, earlier: &SessionStats) -> SessionStats {
        SessionStats {
            queries: self.queries - earlier.queries,
            cache_hits: self.cache_hits - earlier.cache_hits,
            cache_misses: self.cache_misses - earlier.cache_misses,
            sat: self.sat - earlier.sat,
            unsat: self.unsat - earlier.unsat,
            unknown_budget: self.unknown_budget - earlier.unknown_budget,
            unknown_incomplete: self.unknown_incomplete - earlier.unknown_incomplete,
            assignments: self.assignments - earlier.assignments,
        }
    }

    /// Cache hit rate in `[0, 1]`; 0 when no queries ran.
    pub fn hit_rate(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.queries as f64
        }
    }
}

/// A [`Solver`] wrapped with a constraint-set memo cache and cumulative
/// accounting.
///
/// Interior mutability keeps the caller's API `&self`: the search engine
/// threads one session through hypothesis testing, finalization, and the
/// localization sweep without plumbing `&mut` everywhere.
#[derive(Debug, Default)]
pub struct SolverSession {
    solver: Solver,
    cache: RefCell<HashMap<Vec<ExprRef>, SolveResult>>,
    stats: RefCell<SessionStats>,
}

impl SolverSession {
    /// Session around a solver with default budgets.
    pub fn new() -> Self {
        Self::default()
    }

    /// Session around a solver with explicit budgets.
    pub fn with_config(config: SolverConfig) -> Self {
        SolverSession {
            solver: Solver::with_config(config),
            ..Self::default()
        }
    }

    /// Session around an existing solver.
    pub fn from_solver(solver: Solver) -> Self {
        SolverSession {
            solver,
            ..Self::default()
        }
    }

    /// Memoized [`Solver::check`]: the conjunction of `constraints`,
    /// each truthy when non-zero.
    ///
    /// The key is the constraint *sequence* — structurally equal sets in
    /// a different order miss; callers with a canonical build order (as
    /// the search engine has) get exact reuse anyway.
    pub fn check(&self, constraints: &[ExprRef]) -> SolveResult {
        let mut stats = self.stats.borrow_mut();
        stats.queries += 1;
        if let Some(hit) = self.cache.borrow().get(constraints) {
            stats.cache_hits += 1;
            Self::tally(&mut stats, hit);
            return hit.clone();
        }
        stats.cache_misses += 1;
        drop(stats);
        let (result, used) = self.solver.check_counted(constraints);
        let mut stats = self.stats.borrow_mut();
        stats.assignments += used;
        Self::tally(&mut stats, &result);
        self.cache
            .borrow_mut()
            .insert(constraints.to_vec(), result.clone());
        result
    }

    /// Memoized [`Solver::solve`]: check and demand a model.
    pub fn solve(&self, constraints: &[ExprRef]) -> Option<crate::model::Model> {
        match self.check(constraints) {
            SolveResult::Sat(m) => Some(m),
            _ => None,
        }
    }

    fn tally(stats: &mut SessionStats, result: &SolveResult) {
        match result {
            SolveResult::Sat(_) => stats.sat += 1,
            SolveResult::Unsat => stats.unsat += 1,
            SolveResult::Unknown(UnknownReason::BudgetExhausted) => stats.unknown_budget += 1,
            SolveResult::Unknown(UnknownReason::Incomplete) => stats.unknown_incomplete += 1,
        }
    }

    /// Snapshot of the cumulative counters.
    pub fn stats(&self) -> SessionStats {
        *self.stats.borrow()
    }

    /// Total enumeration assignments spent so far (cache hits are free).
    pub fn assignments_spent(&self) -> u64 {
        self.stats.borrow().assignments
    }

    /// Number of distinct constraint sets memoized.
    pub fn cache_len(&self) -> usize {
        self.cache.borrow().len()
    }

    /// The wrapped solver, for callers that need an uncached check.
    pub fn solver(&self) -> &Solver {
        &self.solver
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use mvm_isa::BinOp;

    fn eq(a: ExprRef, b: ExprRef) -> ExprRef {
        Expr::bin(BinOp::Eq, a, b)
    }

    #[test]
    fn repeat_query_hits_cache_and_agrees() {
        let session = SolverSession::new();
        let cs = vec![eq(
            Expr::bin(BinOp::Add, Expr::sym(0), Expr::konst(5)),
            Expr::konst(12),
        )];
        let first = session.check(&cs);
        let second = session.check(&cs);
        assert_eq!(first, second);
        let st = session.stats();
        assert_eq!(st.queries, 2);
        assert_eq!(st.cache_hits, 1);
        assert_eq!(st.cache_misses, 1);
        assert_eq!(st.sat, 2, "cached replays still tally verdicts");
        assert_eq!(session.cache_len(), 1);
    }

    #[test]
    fn cached_answer_equals_fresh_solver() {
        let session = SolverSession::new();
        let fresh = Solver::new();
        let cs = vec![
            eq(
                Expr::bin(BinOp::Add, Expr::sym(0), Expr::sym(1)),
                Expr::konst(10),
            ),
            eq(Expr::sym(0), Expr::konst(4)),
        ];
        assert_eq!(session.check(&cs), fresh.check(&cs));
        assert_eq!(session.check(&cs), fresh.check(&cs)); // now from cache
    }

    #[test]
    fn assignments_accrue_only_on_misses() {
        let session = SolverSession::new();
        // Forces enumeration: two-symbol non-invertible constraint.
        let cs = vec![
            eq(
                Expr::bin(BinOp::Mul, Expr::sym(0), Expr::sym(0)),
                Expr::konst(9),
            ),
            Expr::bin(BinOp::LtU, Expr::sym(0), Expr::konst(4)),
        ];
        session.check(&cs);
        let after_miss = session.assignments_spent();
        assert!(after_miss > 0, "enumeration must cost assignments");
        session.check(&cs);
        assert_eq!(session.assignments_spent(), after_miss, "hits are free");
    }

    #[test]
    fn unknown_reasons_are_split() {
        let session = SolverSession::with_config(SolverConfig {
            max_assignments: 10,
            ..SolverConfig::default()
        });
        let cs = vec![eq(
            Expr::bin(BinOp::Mul, Expr::sym(0), Expr::sym(0)),
            Expr::konst(0x4000_0000_0000_0001),
        )];
        let r = session.check(&cs);
        assert!(r.is_unknown(), "tiny budget must not decide: {r:?}");
        let st = session.stats();
        assert_eq!(st.unknown_budget + st.unknown_incomplete, 1);
    }

    #[test]
    fn delta_since_isolates_a_phase() {
        let session = SolverSession::new();
        let a = vec![eq(Expr::sym(0), Expr::konst(1))];
        let b = vec![eq(Expr::sym(0), Expr::konst(2))];
        session.check(&a);
        let snap = session.stats();
        session.check(&b);
        session.check(&b);
        let d = session.stats().delta_since(&snap);
        assert_eq!(d.queries, 2);
        assert_eq!(d.cache_misses, 1);
        assert_eq!(d.cache_hits, 1);
    }
}
