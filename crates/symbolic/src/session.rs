//! A memoizing solver session.
//!
//! The RES search loop issues many satisfiability checks over constraint
//! sets that repeat: sibling hypotheses share the suffix they extend, the
//! hardware-error localization sweep re-solves the same relaxed sets, and
//! the global compatibility check grows one tagged constraint at a time.
//! Because [`ExprRef`]s are structurally hashed and the solver is a
//! deterministic function of its input, a `(constraint set → result)`
//! memo is exact: a cache hit returns precisely what a fresh
//! [`Solver::check`] would.
//!
//! [`SolverSession`] wraps a [`Solver`] with that memo plus cumulative
//! accounting — queries, hit/miss counts, sat/unsat/unknown tallies
//! (unknowns split by [`UnknownReason`]), and the total enumeration
//! assignments spent. The assignment total is what kernel-level solver
//! budgets are charged against; cache hits cost zero, which is the point.

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};

use mvm_json::json_struct;
use res_obs::Recorder;

use crate::expr::ExprRef;
use crate::fingerprint::{canonical_key, CanonFp, PortableCache, PortableResult};
use crate::solver::{SolveResult, Solver, SolverConfig, UnknownReason};

/// Cumulative counters for one [`SolverSession`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SessionStats {
    /// Total `check` calls.
    pub queries: u64,
    /// Queries answered from the memo cache.
    pub cache_hits: u64,
    /// Queries that ran the underlying solver.
    pub cache_misses: u64,
    /// Cache hits served by the absorbed (cross-session, α-canonical)
    /// cache rather than the exact in-session memo. A subset of
    /// `cache_hits`.
    pub absorbed_hits: u64,
    /// Absorbed hits served by entries that came from a *persistent
    /// cross-run store* (as opposed to a same-process speculative
    /// worker). A subset of `absorbed_hits`; this is the counter the
    /// warm-run experiments report, so cross-run reuse is never
    /// conflated with intra-run memoization.
    pub store_hits: u64,
    /// Sat verdicts (counting cached replays).
    pub sat: u64,
    /// Unsat verdicts (counting cached replays).
    pub unsat: u64,
    /// Unknown verdicts caused by assignment-budget exhaustion.
    pub unknown_budget: u64,
    /// Unknown verdicts caused by a theory gap.
    pub unknown_incomplete: u64,
    /// Enumeration assignments spent by cache misses (plus the replayed
    /// cost of first-time absorbed hits, so budget accounting does not
    /// depend on *which* session originally paid for a query).
    pub assignments: u64,
    /// Queries answered by a result that is *not* renaming-equivariant
    /// (probe-seeded enumeration; see `Solver::check_classified`),
    /// whether solved fresh or replayed from the exact memo. The
    /// subtree-verdict certifier watches this counter: a speculative
    /// subtree that consumed any private result is tainted and must not
    /// be certified, because another session could answer the same
    /// α-equivalent query with a different (equally valid) verdict.
    pub private_results: u64,
}

json_struct!(SessionStats {
    queries,
    cache_hits,
    cache_misses,
    absorbed_hits,
    store_hits,
    sat,
    unsat,
    unknown_budget,
    unknown_incomplete,
    assignments,
    private_results
});

impl SessionStats {
    /// Counter-wise difference `self - earlier`; use with a snapshot
    /// taken before a phase to attribute work to that phase.
    pub fn delta_since(&self, earlier: &SessionStats) -> SessionStats {
        SessionStats {
            queries: self.queries - earlier.queries,
            cache_hits: self.cache_hits - earlier.cache_hits,
            cache_misses: self.cache_misses - earlier.cache_misses,
            absorbed_hits: self.absorbed_hits - earlier.absorbed_hits,
            store_hits: self.store_hits - earlier.store_hits,
            sat: self.sat - earlier.sat,
            unsat: self.unsat - earlier.unsat,
            unknown_budget: self.unknown_budget - earlier.unknown_budget,
            unknown_incomplete: self.unknown_incomplete - earlier.unknown_incomplete,
            assignments: self.assignments - earlier.assignments,
            private_results: self.private_results - earlier.private_results,
        }
    }

    /// Counter-wise sum, for rolling per-worker sessions into one
    /// report.
    pub fn absorb(&mut self, other: &SessionStats) {
        self.queries += other.queries;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.absorbed_hits += other.absorbed_hits;
        self.store_hits += other.store_hits;
        self.sat += other.sat;
        self.unsat += other.unsat;
        self.unknown_budget += other.unknown_budget;
        self.unknown_incomplete += other.unknown_incomplete;
        self.assignments += other.assignments;
        self.private_results += other.private_results;
    }

    /// Cache hit rate in `[0, 1]`; 0 when no queries ran.
    pub fn hit_rate(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.queries as f64
        }
    }
}

/// A [`Solver`] wrapped with a constraint-set memo cache and cumulative
/// accounting.
///
/// Interior mutability keeps the caller's API `&self`: the search engine
/// threads one session through hypothesis testing, finalization, and the
/// localization sweep without plumbing `&mut` everywhere.
#[derive(Debug, Default)]
pub struct SolverSession {
    solver: Solver,
    /// Exact memo: constraint sequence → (result, original assignment
    /// cost, renaming-equivariant?).
    cache: RefCell<HashMap<Vec<ExprRef>, (SolveResult, u64, bool)>>,
    /// Cross-session cache absorbed from other sessions' portable
    /// exports, keyed by α-canonical fingerprint and tagged with where
    /// the entry came from. Consulted only after the exact memo misses.
    absorbed: RefCell<HashMap<CanonFp, (PortableResult, AbsorbSource)>>,
    stats: RefCell<SessionStats>,
    /// Passive observer mirroring the stats counters into a journal
    /// (disabled by default: every call is then an allocation-free
    /// no-op). Nothing in the session ever reads it back. The caller
    /// hands in an already-scoped recorder (the engine uses
    /// `rec.scoped("solver")`), so counter names here stay bare.
    recorder: RefCell<Recorder>,
}

/// Where an absorbed cache entry originated. The distinction only
/// affects accounting ([`SessionStats::store_hits`]); lookup semantics
/// are identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbsorbSource {
    /// A sibling session in this process (a speculative worker).
    Worker,
    /// A persistent cross-run store loaded from disk.
    Store,
}

impl SolverSession {
    /// Session around a solver with default budgets.
    pub fn new() -> Self {
        Self::default()
    }

    /// Session around a solver with explicit budgets.
    pub fn with_config(config: SolverConfig) -> Self {
        SolverSession {
            solver: Solver::with_config(config),
            ..Self::default()
        }
    }

    /// Session around an existing solver.
    pub fn from_solver(solver: Solver) -> Self {
        SolverSession {
            solver,
            ..Self::default()
        }
    }

    /// Attaches a tracing recorder at construction time. Pass an
    /// already-scoped handle (e.g. `rec.scoped("solver")`); the session
    /// emits bare counter names like `queries` and `store_hits`.
    pub fn with_recorder(self, recorder: Recorder) -> Self {
        self.recorder.replace(recorder);
        self
    }

    /// Swaps the tracing recorder, returning the previous one — used by
    /// callers that override tracing for a single run and restore it
    /// after.
    pub fn set_recorder(&self, recorder: Recorder) -> Recorder {
        self.recorder.replace(recorder)
    }

    /// Memoized [`Solver::check`]: the conjunction of `constraints`,
    /// each truthy when non-zero.
    ///
    /// The key is the constraint *sequence* — structurally equal sets in
    /// a different order miss; callers with a canonical build order (as
    /// the search engine has) get exact reuse anyway.
    pub fn check(&self, constraints: &[ExprRef]) -> SolveResult {
        let rec = self.recorder.borrow();
        let mut stats = self.stats.borrow_mut();
        stats.queries += 1;
        rec.counter("queries", 1);
        if let Some((hit, _, portable)) = self.cache.borrow().get(constraints) {
            stats.cache_hits += 1;
            rec.counter("cache_hits", 1);
            if !portable {
                stats.private_results += 1;
                rec.counter("private_results", 1);
            }
            Self::tally(&mut stats, &rec, hit);
            return hit.clone();
        }
        // Absorbed (α-canonical) lookup. The guard keeps the common
        // single-session path free of canonicalization overhead.
        if !self.absorbed.borrow().is_empty() {
            let (fp, sorted_syms) = canonical_key(constraints);
            let instantiated = self
                .absorbed
                .borrow()
                .get(&fp)
                .and_then(|(p, src)| Some((p.instantiate(&sorted_syms)?, p.assignments, *src)));
            if let Some((result, cost, source)) = instantiated {
                stats.cache_hits += 1;
                stats.absorbed_hits += 1;
                rec.counter("cache_hits", 1);
                rec.counter("absorbed_hits", 1);
                if source == AbsorbSource::Store {
                    stats.store_hits += 1;
                    rec.counter("store_hits", 1);
                }
                // Charge the original enumeration cost so solver-budget
                // enforcement matches a session that solved this query
                // itself; repeats then hit the exact memo for free,
                // exactly like a locally-solved query.
                stats.assignments += cost;
                rec.counter("assignments", cost);
                Self::tally(&mut stats, &rec, &result);
                self.cache
                    .borrow_mut()
                    .insert(constraints.to_vec(), (result.clone(), cost, true));
                return result;
            }
        }
        stats.cache_misses += 1;
        rec.counter("cache_misses", 1);
        drop(stats);
        let (result, used, portable) = self.solver.check_classified(constraints);
        let mut stats = self.stats.borrow_mut();
        stats.assignments += used;
        rec.counter("assignments", used);
        if !portable {
            stats.private_results += 1;
            rec.counter("private_results", 1);
        }
        Self::tally(&mut stats, &rec, &result);
        self.cache
            .borrow_mut()
            .insert(constraints.to_vec(), (result.clone(), used, portable));
        result
    }

    /// Exports every renaming-equivariant cached result as an
    /// α-canonical [`PortableCache`], deduplicated by fingerprint and in
    /// deterministic (fingerprint) order. The export contains no
    /// [`ExprRef`]s, so it can cross threads.
    pub fn export_portable(&self) -> PortableCache {
        let mut by_fp: BTreeMap<CanonFp, PortableResult> = BTreeMap::new();
        for (key, (result, assignments, portable)) in self.cache.borrow().iter() {
            if !portable {
                continue;
            }
            let (fp, sorted_syms) = canonical_key(key);
            if let Some(p) = PortableResult::from_result(result, *assignments, &sorted_syms) {
                by_fp.entry(fp).or_insert(p);
            }
        }
        PortableCache {
            entries: by_fp.into_iter().collect(),
            verdicts: Vec::new(),
        }
    }

    /// Merges another session's portable export into this session's
    /// absorbed cache. On fingerprint collision between absorptions the
    /// first entry wins; by equivariance the entries are identical
    /// anyway (modulo the ~2⁻¹²⁸ hash-collision risk, which
    /// [`PortableResult::instantiate`]'s rank guard partially covers).
    pub fn absorb(&self, export: &PortableCache) {
        self.absorb_from(export, AbsorbSource::Worker);
    }

    /// [`absorb`](SolverSession::absorb) for entries loaded from a
    /// persistent cross-run store: hits they serve are additionally
    /// counted in [`SessionStats::store_hits`].
    pub fn absorb_from_store(&self, export: &PortableCache) {
        self.absorb_from(export, AbsorbSource::Store);
    }

    /// Merges a portable export, tagging every newly-absorbed entry
    /// with `source` for hit attribution.
    pub fn absorb_from(&self, export: &PortableCache, source: AbsorbSource) {
        let mut absorbed = self.absorbed.borrow_mut();
        let before = absorbed.len();
        for (fp, p) in &export.entries {
            absorbed.entry(*fp).or_insert_with(|| (p.clone(), source));
        }
        let new = absorbed.len() - before;
        self.recorder.borrow().event_with("absorb", || {
            vec![
                ("source".into(), format!("{source:?}")),
                ("entries".into(), export.entries.len().to_string()),
                ("new".into(), new.to_string()),
            ]
        });
    }

    /// Number of entries in the absorbed (cross-session) cache.
    pub fn absorbed_len(&self) -> usize {
        self.absorbed.borrow().len()
    }

    /// Memoized [`Solver::solve`]: check and demand a model.
    pub fn solve(&self, constraints: &[ExprRef]) -> Option<crate::model::Model> {
        match self.check(constraints) {
            SolveResult::Sat(m) => Some(m),
            _ => None,
        }
    }

    fn tally(stats: &mut SessionStats, rec: &Recorder, result: &SolveResult) {
        match result {
            SolveResult::Sat(_) => {
                stats.sat += 1;
                rec.counter("sat", 1);
            }
            SolveResult::Unsat => {
                stats.unsat += 1;
                rec.counter("unsat", 1);
            }
            SolveResult::Unknown(UnknownReason::BudgetExhausted) => {
                stats.unknown_budget += 1;
                rec.counter("unknown_budget", 1);
            }
            SolveResult::Unknown(UnknownReason::Incomplete) => {
                stats.unknown_incomplete += 1;
                rec.counter("unknown_incomplete", 1);
            }
        }
    }

    /// Snapshot of the cumulative counters.
    pub fn stats(&self) -> SessionStats {
        *self.stats.borrow()
    }

    /// Total enumeration assignments spent so far (cache hits are free).
    pub fn assignments_spent(&self) -> u64 {
        self.stats.borrow().assignments
    }

    /// Number of distinct constraint sets memoized.
    pub fn cache_len(&self) -> usize {
        self.cache.borrow().len()
    }

    /// The wrapped solver, for callers that need an uncached check.
    pub fn solver(&self) -> &Solver {
        &self.solver
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use mvm_isa::BinOp;

    fn eq(a: ExprRef, b: ExprRef) -> ExprRef {
        Expr::bin(BinOp::Eq, a, b)
    }

    #[test]
    fn repeat_query_hits_cache_and_agrees() {
        let session = SolverSession::new();
        let cs = vec![eq(
            Expr::bin(BinOp::Add, Expr::sym(0), Expr::konst(5)),
            Expr::konst(12),
        )];
        let first = session.check(&cs);
        let second = session.check(&cs);
        assert_eq!(first, second);
        let st = session.stats();
        assert_eq!(st.queries, 2);
        assert_eq!(st.cache_hits, 1);
        assert_eq!(st.cache_misses, 1);
        assert_eq!(st.sat, 2, "cached replays still tally verdicts");
        assert_eq!(session.cache_len(), 1);
    }

    #[test]
    fn cached_answer_equals_fresh_solver() {
        let session = SolverSession::new();
        let fresh = Solver::new();
        let cs = vec![
            eq(
                Expr::bin(BinOp::Add, Expr::sym(0), Expr::sym(1)),
                Expr::konst(10),
            ),
            eq(Expr::sym(0), Expr::konst(4)),
        ];
        assert_eq!(session.check(&cs), fresh.check(&cs));
        assert_eq!(session.check(&cs), fresh.check(&cs)); // now from cache
    }

    #[test]
    fn assignments_accrue_only_on_misses() {
        let session = SolverSession::new();
        // Forces enumeration: two-symbol non-invertible constraint.
        let cs = vec![
            eq(
                Expr::bin(BinOp::Mul, Expr::sym(0), Expr::sym(0)),
                Expr::konst(9),
            ),
            Expr::bin(BinOp::LtU, Expr::sym(0), Expr::konst(4)),
        ];
        session.check(&cs);
        let after_miss = session.assignments_spent();
        assert!(after_miss > 0, "enumeration must cost assignments");
        session.check(&cs);
        assert_eq!(session.assignments_spent(), after_miss, "hits are free");
    }

    #[test]
    fn unknown_reasons_are_split() {
        let session = SolverSession::with_config(SolverConfig {
            max_assignments: 10,
            ..SolverConfig::default()
        });
        let cs = vec![eq(
            Expr::bin(BinOp::Mul, Expr::sym(0), Expr::sym(0)),
            Expr::konst(0x4000_0000_0000_0001),
        )];
        let r = session.check(&cs);
        assert!(r.is_unknown(), "tiny budget must not decide: {r:?}");
        let st = session.stats();
        assert_eq!(st.unknown_budget + st.unknown_incomplete, 1);
    }

    #[test]
    fn absorbed_cache_shares_portable_answers_across_renaming() {
        let a = SolverSession::new();
        // Propagation-decided → portable.
        let q_a = vec![eq(
            Expr::bin(BinOp::Add, Expr::sym(3), Expr::konst(5)),
            Expr::konst(12),
        )];
        a.check(&q_a);
        let export = a.export_portable();
        assert!(!export.is_empty(), "portable result must be exported");

        let b = SolverSession::new();
        b.absorb(&export);
        assert_eq!(b.absorbed_len(), export.len());
        // Same query, different symbol numbering.
        let q_b = vec![eq(
            Expr::bin(BinOp::Add, Expr::sym(41), Expr::konst(5)),
            Expr::konst(12),
        )];
        let r = b.check(&q_b);
        assert_eq!(r.model().unwrap().get(41), Some(7), "renamed witness");
        let st = b.stats();
        assert_eq!(st.queries, 1);
        assert_eq!(st.cache_hits, 1, "absorbed hit counts as a hit");
        assert_eq!(st.absorbed_hits, 1);
        assert_eq!(st.cache_misses, 0);
        // The absorbed answer is now in the exact memo: a repeat is an
        // ordinary hit, not a second absorbed hit.
        b.check(&q_b);
        assert_eq!(b.stats().absorbed_hits, 1);
        assert_eq!(b.stats().cache_hits, 2);
    }

    #[test]
    fn absorbed_hits_replay_the_original_assignment_cost() {
        let a = SolverSession::new();
        // Complete-domain enumeration → portable, with nonzero cost.
        let q_a = vec![
            Expr::bin(BinOp::LtU, Expr::sym(0), Expr::konst(4)),
            eq(
                Expr::bin(BinOp::Mul, Expr::sym(0), Expr::sym(0)),
                Expr::konst(9),
            ),
        ];
        a.check(&q_a);
        let original_cost = a.assignments_spent();
        assert!(original_cost > 0, "enumeration must cost assignments");

        let b = SolverSession::new();
        b.absorb(&a.export_portable());
        let q_b = vec![
            Expr::bin(BinOp::LtU, Expr::sym(9), Expr::konst(4)),
            eq(
                Expr::bin(BinOp::Mul, Expr::sym(9), Expr::sym(9)),
                Expr::konst(9),
            ),
        ];
        let r = b.check(&q_b);
        assert_eq!(r.model().unwrap().get(9), Some(3));
        assert_eq!(
            b.assignments_spent(),
            original_cost,
            "first absorbed hit charges what a fresh solve would have"
        );
        b.check(&q_b);
        assert_eq!(b.assignments_spent(), original_cost, "repeats are free");
    }

    #[test]
    fn store_hits_are_split_from_worker_absorbed_hits() {
        let origin = SolverSession::new();
        let q = |sym: u32| {
            vec![eq(
                Expr::bin(BinOp::Add, Expr::sym(sym), Expr::konst(5)),
                Expr::konst(12),
            )]
        };
        origin.check(&q(0));
        let export = origin.export_portable();
        assert!(!export.is_empty());

        // Worker-absorbed: absorbed_hits ticks, store_hits does not.
        let via_worker = SolverSession::new();
        via_worker.absorb(&export);
        via_worker.check(&q(17));
        let st = via_worker.stats();
        assert_eq!(st.absorbed_hits, 1);
        assert_eq!(st.store_hits, 0);

        // Store-absorbed: both tick.
        let via_store = SolverSession::new();
        via_store.absorb_from_store(&export);
        via_store.check(&q(23));
        let st = via_store.stats();
        assert_eq!(st.absorbed_hits, 1);
        assert_eq!(st.store_hits, 1);
        // A repeat lands in the exact memo: a plain session hit.
        via_store.check(&q(23));
        assert_eq!(via_store.stats().store_hits, 1);
        assert_eq!(via_store.stats().cache_hits, 2);
    }

    #[test]
    fn probe_based_results_stay_private() {
        let session = SolverSession::new();
        // Unbounded domain → probe candidates → not renaming-equivariant.
        let q = vec![eq(
            Expr::bin(BinOp::And, Expr::sym(0), Expr::konst(0xf0)),
            Expr::konst(0x30),
        )];
        assert!(session.check(&q).is_sat());
        assert!(
            session.export_portable().is_empty(),
            "probe-seeded results must not be exported"
        );
    }

    #[test]
    fn private_results_count_fresh_and_memoized_replays() {
        let session = SolverSession::new();
        // Probe-seeded (private) query: fresh solve + memo replay both
        // tick the taint counter; the certifier needs replays counted
        // because a cached private answer taints a subtree just the
        // same.
        let private = vec![eq(
            Expr::bin(BinOp::And, Expr::sym(0), Expr::konst(0xf0)),
            Expr::konst(0x30),
        )];
        session.check(&private);
        assert_eq!(session.stats().private_results, 1, "fresh private solve");
        session.check(&private);
        assert_eq!(session.stats().private_results, 2, "memoized replay");
        // Propagation-decided (portable) query: never tainted.
        let portable = vec![eq(
            Expr::bin(BinOp::Add, Expr::sym(1), Expr::konst(5)),
            Expr::konst(12),
        )];
        session.check(&portable);
        session.check(&portable);
        assert_eq!(session.stats().private_results, 2);
    }

    #[test]
    fn delta_since_isolates_a_phase() {
        let session = SolverSession::new();
        let a = vec![eq(Expr::sym(0), Expr::konst(1))];
        let b = vec![eq(Expr::sym(0), Expr::konst(2))];
        session.check(&a);
        let snap = session.stats();
        session.check(&b);
        session.check(&b);
        let d = session.stats().delta_since(&snap);
        assert_eq!(d.queries, 2);
        assert_eq!(d.cache_misses, 1);
        assert_eq!(d.cache_hits, 1);
    }
}
