//! A from-scratch constraint solver for RES-style constraint sets.
//!
//! Three cooperating phases (see the crate docs for why this is enough
//! for block-level reverse synthesis):
//!
//! 1. **Equality isolation** — `σ + 5 == 12`-style constraints are
//!    solved exactly by inverting the arithmetic spine (add/sub/xor/not/
//!    neg/odd-mul are invertible on `u64`).
//! 2. **Interval propagation** — unsigned comparisons against constants
//!    narrow per-symbol ranges; an empty range proves unsatisfiability.
//! 3. **Bounded enumeration** — remaining symbols are searched over a
//!    candidate set seeded with the constraints' own constants, interval
//!    endpoints, small values, and deterministic pseudo-random probes.
//!
//! The verdict is three-valued: [`SolveResult::Unsat`] is only returned
//! when *proven* (contradiction during propagation, or exhaustive
//! enumeration of a complete finite candidate space); budget exhaustion
//! yields [`SolveResult::Unknown`], which RES treats conservatively.

use std::collections::{BTreeMap, BTreeSet};

use mvm_isa::{BinOp, UnOp};
use mvm_json::json_enum;

use crate::expr::{Expr, ExprRef, SymId};
use crate::interval::Interval;
use crate::model::Model;

/// Solver tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct SolverConfig {
    /// Maximum full assignments tried during enumeration.
    pub max_assignments: u64,
    /// Maximum propagation rounds.
    pub max_rounds: usize,
    /// Pseudo-random probe values per symbol.
    pub probes_per_symbol: usize,
    /// Domains at most this large are enumerated exhaustively, allowing
    /// a definitive Unsat.
    pub exhaustive_domain: u64,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            max_assignments: 20_000,
            max_rounds: 32,
            probes_per_symbol: 8,
            exhaustive_domain: 256,
        }
    }
}

/// Why a check came back [`SolveResult::Unknown`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnknownReason {
    /// The enumeration ran out of its assignment budget; a larger
    /// `max_assignments` might produce a verdict.
    BudgetExhausted,
    /// The residual constraints are outside what the solver can decide
    /// (theory gap); no budget increase will help.
    Incomplete,
}

json_enum!(UnknownReason {
    BudgetExhausted,
    Incomplete
});

/// The outcome of a satisfiability check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveResult {
    /// Satisfiable, with a witness.
    Sat(Model),
    /// Proven unsatisfiable.
    Unsat,
    /// No verdict, with the reason (budget vs theory gap).
    Unknown(UnknownReason),
}

impl SolveResult {
    /// Returns the model if satisfiable.
    pub fn model(&self) -> Option<&Model> {
        match self {
            SolveResult::Sat(m) => Some(m),
            _ => None,
        }
    }

    /// `true` if definitely satisfiable.
    pub fn is_sat(&self) -> bool {
        matches!(self, SolveResult::Sat(_))
    }

    /// `true` if proven unsatisfiable.
    pub fn is_unsat(&self) -> bool {
        matches!(self, SolveResult::Unsat)
    }

    /// `true` if no verdict was reached.
    pub fn is_unknown(&self) -> bool {
        matches!(self, SolveResult::Unknown(_))
    }
}

/// The constraint solver.
#[derive(Debug, Clone, Default)]
pub struct Solver {
    config: SolverConfig,
}

/// Multiplicative inverse of an odd `u64` (Newton's method).
fn odd_inverse(a: u64) -> u64 {
    debug_assert!(a & 1 == 1);
    let mut x = a; // 3 bits correct
    for _ in 0..5 {
        x = x.wrapping_mul(2u64.wrapping_sub(a.wrapping_mul(x)));
    }
    x
}

/// Outcome of trying to isolate `expr == target` down to a symbol.
enum Isolated {
    /// `sym` must equal the value.
    Bind(SymId, u64),
    /// The equation is contradictory (e.g. `shl` with bad low bits).
    Contradiction,
    /// Not invertible down to a single symbol.
    NoProgress,
}

fn isolate(e: &ExprRef, target: u64) -> Isolated {
    match &**e {
        Expr::Sym(s) => Isolated::Bind(*s, target),
        Expr::Const(c) => {
            if *c == target {
                // Trivially true; caller drops the constraint.
                Isolated::NoProgress
            } else {
                Isolated::Contradiction
            }
        }
        Expr::Un(UnOp::Neg, a) => isolate(a, target.wrapping_neg()),
        Expr::Un(UnOp::Not, a) => isolate(a, !target),
        Expr::Bin(op, a, b) => {
            match (op, a.as_const(), b.as_const()) {
                (BinOp::Add, _, Some(c)) => isolate(a, target.wrapping_sub(c)),
                (BinOp::Sub, _, Some(c)) => isolate(a, target.wrapping_add(c)),
                (BinOp::Sub, Some(c), _) => isolate(b, c.wrapping_sub(target)),
                (BinOp::Xor, _, Some(c)) => isolate(a, target ^ c),
                (BinOp::Mul, _, Some(c)) if c & 1 == 1 && a.as_const() != Some(0) => {
                    isolate(a, target.wrapping_mul(odd_inverse(c)))
                }
                (BinOp::Shl, _, Some(c)) if c < 64 => {
                    // a << c == target requires target's low c bits zero;
                    // the high bits of `a` are unconstrained, so only
                    // detect contradiction, don't bind.
                    if target & ((1u64 << c) - 1) != 0 {
                        Isolated::Contradiction
                    } else {
                        Isolated::NoProgress
                    }
                }
                _ => Isolated::NoProgress,
            }
        }
    }
}

/// Negates a comparison operator (`(a op b) == 0` rewriting).
fn negate_cmp(op: BinOp) -> Option<(BinOp, bool)> {
    // Returns (new_op, swap_operands).
    Some(match op {
        BinOp::Eq => (BinOp::Ne, false),
        BinOp::Ne => (BinOp::Eq, false),
        BinOp::LtU => (BinOp::LeU, true),
        BinOp::LeU => (BinOp::LtU, true),
        BinOp::LtS => (BinOp::LeS, true),
        BinOp::LeS => (BinOp::LtS, true),
        _ => return None,
    })
}

struct State {
    bindings: BTreeMap<SymId, u64>,
    intervals: BTreeMap<SymId, Interval>,
    constraints: Vec<ExprRef>,
}

impl State {
    fn bind(&mut self, s: SymId, v: u64) -> Result<bool, ()> {
        if let Some(&old) = self.bindings.get(&s) {
            return if old == v { Ok(false) } else { Err(()) };
        }
        if !self
            .intervals
            .get(&s)
            .copied()
            .unwrap_or_default()
            .contains(v)
        {
            return Err(());
        }
        self.bindings.insert(s, v);
        Ok(true)
    }

    fn refine(&mut self, s: SymId, f: impl FnOnce(Interval) -> Interval) -> Result<bool, ()> {
        let cur = self.intervals.get(&s).copied().unwrap_or_default();
        let next = f(cur);
        if next.is_empty() {
            return Err(());
        }
        if next == cur {
            return Ok(false);
        }
        self.intervals.insert(s, next);
        if next.is_point() {
            self.bind(s, next.lo).map(|_| true)
        } else {
            Ok(true)
        }
    }
}

impl Solver {
    /// Creates a solver with default budgets.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a solver with explicit budgets.
    pub fn with_config(config: SolverConfig) -> Self {
        Solver { config }
    }

    /// Checks the conjunction of `constraints` (each truthy when
    /// non-zero).
    pub fn check(&self, constraints: &[ExprRef]) -> SolveResult {
        self.check_counted(constraints).0
    }

    /// Like [`check`](Solver::check), but also reports how many full
    /// assignments the enumeration phase consumed (0 when propagation
    /// alone decided the query). This is the currency the kernel-level
    /// solver budget is denominated in.
    pub fn check_counted(&self, constraints: &[ExprRef]) -> (SolveResult, u64) {
        let (result, used, _) = self.check_classified(constraints);
        (result, used)
    }

    /// Like [`check_counted`](Solver::check_counted), plus a *portable*
    /// flag: `true` when the verdict is renaming-equivariant — renaming
    /// the query's symbols by any monotone map and re-solving would
    /// return the identically-renamed verdict at the same assignment
    /// cost. That holds when propagation alone decided the query, or
    /// when enumeration ran over complete finite domains (candidates
    /// are then whole intervals and the search order is the sorted
    /// symbol order, both structure-only). It does *not* hold once
    /// probe candidates enter, because probes are seeded from raw
    /// [`SymId`]s. Portable results may be shared across
    /// differently-numbered sessions (see `crate::fingerprint`).
    pub fn check_classified(&self, constraints: &[ExprRef]) -> (SolveResult, u64, bool) {
        let mut st = State {
            bindings: BTreeMap::new(),
            intervals: BTreeMap::new(),
            constraints: constraints.to_vec(),
        };
        match self.propagate(&mut st) {
            Err(()) => return (SolveResult::Unsat, 0, true),
            Ok(()) => {}
        }
        if st.constraints.is_empty() {
            let mut model = Model::new();
            for (&s, &v) in &st.bindings {
                model.set(s, v);
            }
            // Unconstrained symbols take their interval's low point.
            for (&s, iv) in &st.intervals {
                if model.get(s).is_none() {
                    model.set(s, iv.lo);
                }
            }
            return (SolveResult::Sat(model), 0, true);
        }
        self.enumerate(st)
    }

    /// Convenience: check and demand a model.
    pub fn solve(&self, constraints: &[ExprRef]) -> Option<Model> {
        match self.check(constraints) {
            SolveResult::Sat(m) => Some(m),
            _ => None,
        }
    }

    fn propagate(&self, st: &mut State) -> Result<(), ()> {
        for _ in 0..self.config.max_rounds {
            let mut changed = false;
            let mut next: Vec<ExprRef> = Vec::with_capacity(st.constraints.len());
            let bindings = st.bindings.clone();
            for c in std::mem::take(&mut st.constraints) {
                let c = c.substitute(&|s| bindings.get(&s).map(|&v| Expr::konst(v)));
                match c.as_const() {
                    Some(0) => return Err(()),
                    Some(_) => {
                        changed = true;
                        continue;
                    }
                    None => {}
                }
                match self.extract(&c, st) {
                    Err(()) => return Err(()),
                    Ok(Some(())) => changed = true,
                    Ok(None) => next.push(c),
                }
            }
            st.constraints = next;
            if !changed {
                break;
            }
        }
        // Final substitution + tautology sweep.
        let bindings = st.bindings.clone();
        let mut out = Vec::new();
        for c in std::mem::take(&mut st.constraints) {
            let c = c.substitute(&|s| bindings.get(&s).map(|&v| Expr::konst(v)));
            match c.as_const() {
                Some(0) => return Err(()),
                Some(_) => {}
                None => out.push(c),
            }
        }
        st.constraints = out;
        Ok(())
    }

    /// Tries to turn one constraint into bindings / interval
    /// refinements. `Ok(Some(()))` means the constraint was fully
    /// absorbed; `Ok(None)` keeps it.
    fn extract(&self, c: &ExprRef, st: &mut State) -> Result<Option<()>, ()> {
        match &**c {
            // A bare symbol as a constraint: σ != 0.
            Expr::Sym(s) => {
                st.refine(*s, |iv| iv.refine_ne(0)).map_err(|_| ())?;
                Ok(Some(()))
            }
            Expr::Bin(BinOp::Eq, a, b) => {
                // `(cmp ...) == 0` → negated comparison.
                if b.as_const() == Some(0) {
                    if let Expr::Bin(op, x, y) = &**a {
                        if let Some((nop, swap)) = negate_cmp(*op) {
                            let (x, y) = if swap {
                                (y.clone(), x.clone())
                            } else {
                                (x.clone(), y.clone())
                            };
                            let rewritten = Expr::bin(nop, x, y);
                            return self.extract(&rewritten, st).map(|r| match r {
                                Some(()) => Some(()),
                                None => {
                                    st.constraints.push(rewritten);
                                    Some(())
                                }
                            });
                        }
                    }
                }
                if let Some(t) = b.as_const() {
                    match isolate(a, t) {
                        Isolated::Bind(s, v) => {
                            st.bind(s, v).map_err(|_| ())?;
                            return Ok(Some(()));
                        }
                        Isolated::Contradiction => return Err(()),
                        Isolated::NoProgress => {}
                    }
                }
                if let Some(t) = a.as_const() {
                    match isolate(b, t) {
                        Isolated::Bind(s, v) => {
                            st.bind(s, v).map_err(|_| ())?;
                            return Ok(Some(()));
                        }
                        Isolated::Contradiction => return Err(()),
                        Isolated::NoProgress => {}
                    }
                }
                Ok(None)
            }
            Expr::Bin(BinOp::Ne, a, b) => {
                if let (Some(s), Some(v)) = (a.as_sym(), b.as_const()) {
                    st.refine(s, |iv| iv.refine_ne(v)).map_err(|_| ())?;
                    return Ok(Some(()));
                }
                Ok(None)
            }
            Expr::Bin(BinOp::LtU, a, b) => {
                let mut used = false;
                if let (Some(s), Some(v)) = (a.as_sym(), b.as_const()) {
                    st.refine(s, |iv| iv.refine_lt(v)).map_err(|_| ())?;
                    used = true;
                }
                if let (Some(v), Some(s)) = (a.as_const(), b.as_sym()) {
                    st.refine(s, |iv| iv.refine_gt(v)).map_err(|_| ())?;
                    used = true;
                }
                Ok(used.then_some(()))
            }
            Expr::Bin(BinOp::LeU, a, b) => {
                let mut used = false;
                if let (Some(s), Some(v)) = (a.as_sym(), b.as_const()) {
                    st.refine(s, |iv| iv.refine_le(v)).map_err(|_| ())?;
                    used = true;
                }
                if let (Some(v), Some(s)) = (a.as_const(), b.as_sym()) {
                    st.refine(s, |iv| iv.refine_ge(v)).map_err(|_| ())?;
                    used = true;
                }
                Ok(used.then_some(()))
            }
            _ => Ok(None),
        }
    }

    fn enumerate(&self, st: State) -> (SolveResult, u64, bool) {
        // Free symbols of the residual constraints.
        let mut syms: BTreeSet<SymId> = BTreeSet::new();
        for c in &st.constraints {
            syms.extend(c.symbols());
        }
        let syms: Vec<SymId> = syms.into_iter().collect();
        if syms.is_empty() {
            // Residual constraints with no symbols should have folded;
            // if they didn't, that's a theory gap, not a budget issue.
            return (SolveResult::Unknown(UnknownReason::Incomplete), 0, true);
        }
        // Seed constants from the constraints.
        let mut seeds: BTreeSet<u64> = BTreeSet::new();
        for c in &st.constraints {
            for k in c.constants() {
                seeds.insert(k);
                seeds.insert(k.wrapping_add(1));
                seeds.insert(k.wrapping_sub(1));
            }
        }
        seeds.insert(0);
        seeds.insert(1);
        seeds.insert(u64::MAX);

        // Candidate lists per symbol.
        let mut candidates: Vec<Vec<u64>> = Vec::with_capacity(syms.len());
        let mut complete = true;
        for (i, &s) in syms.iter().enumerate() {
            let iv = st.intervals.get(&s).copied().unwrap_or_default();
            let mut cs: BTreeSet<u64> = BTreeSet::new();
            if iv.count() <= self.config.exhaustive_domain {
                for v in iv.lo..=iv.hi {
                    cs.insert(v);
                }
            } else {
                complete = false;
                cs.insert(iv.lo);
                cs.insert(iv.hi);
                for &k in &seeds {
                    if iv.contains(k) {
                        cs.insert(k);
                    }
                }
                // Deterministic probes.
                let mut x = 0x9e37_79b9_7f4a_7c15u64 ^ ((s as u64 + 1) * (i as u64 + 1));
                for _ in 0..self.config.probes_per_symbol {
                    x ^= x >> 12;
                    x ^= x << 25;
                    x ^= x >> 27;
                    let v = iv
                        .lo
                        .wrapping_add(x.wrapping_mul(0x2545_f491_4f6c_dd1d) % iv.count().max(1));
                    if iv.contains(v) {
                        cs.insert(v);
                    }
                }
            }
            candidates.push(cs.into_iter().collect());
        }
        // Order symbols by ascending candidate count (fail fast).
        let mut order: Vec<usize> = (0..syms.len()).collect();
        order.sort_by_key(|&i| candidates[i].len());

        let mut assignment: BTreeMap<SymId, u64> = st.bindings.clone();
        let mut budget = self.config.max_assignments;
        let found = self.dfs(
            &st.constraints,
            &syms,
            &candidates,
            &order,
            0,
            &mut assignment,
            &mut budget,
        );
        let used = self.config.max_assignments - budget;
        let result = match found {
            Some(model_map) => {
                let mut model = Model::new();
                for (s, v) in model_map {
                    model.set(s, v);
                }
                SolveResult::Sat(model)
            }
            None if complete && budget > 0 => SolveResult::Unsat,
            None if budget == 0 => SolveResult::Unknown(UnknownReason::BudgetExhausted),
            // Candidate space exhausted but incomplete: more budget would
            // not have helped, the probe set just missed.
            None => SolveResult::Unknown(UnknownReason::Incomplete),
        };
        // With complete domains no probe candidates exist, so the whole
        // enumeration (order, forced values, budget spend, witness) is a
        // function of constraint structure alone → portable. A budget
        // cut is still portable: the renamed run cuts at the same point.
        (result, used, complete)
    }

    /// Checks whether any constraint, specialized to the current partial
    /// assignment, pins symbol `s` to a unique value. Returns
    /// `Some(Ok(v))` when forced, `Some(Err(()))` when contradictory,
    /// `None` when unconstrained.
    fn forced_value(
        &self,
        constraints: &[ExprRef],
        assignment: &BTreeMap<SymId, u64>,
        s: SymId,
    ) -> Option<Result<u64, ()>> {
        for c in constraints {
            let syms = c.symbols();
            if !syms.contains(&s) {
                continue;
            }
            // Every *other* symbol must already be assigned.
            if !syms.iter().all(|q| *q == s || assignment.contains_key(q)) {
                continue;
            }
            let specialized = c.substitute(&|q| assignment.get(&q).map(|&v| Expr::konst(v)));
            if let Expr::Bin(BinOp::Eq, a, b) = &*specialized {
                let (expr, target) = match (a.as_const(), b.as_const()) {
                    (Some(t), None) => (b, t),
                    (None, Some(t)) => (a, t),
                    _ => continue,
                };
                match isolate(expr, target) {
                    Isolated::Bind(q, v) if q == s => return Some(Ok(v)),
                    Isolated::Contradiction => return Some(Err(())),
                    _ => {}
                }
            }
        }
        None
    }

    #[allow(clippy::too_many_arguments)]
    fn dfs(
        &self,
        constraints: &[ExprRef],
        syms: &[SymId],
        candidates: &[Vec<u64>],
        order: &[usize],
        depth: usize,
        assignment: &mut BTreeMap<SymId, u64>,
        budget: &mut u64,
    ) -> Option<BTreeMap<SymId, u64>> {
        if *budget == 0 {
            return None;
        }
        if depth == order.len() {
            *budget -= 1;
            let ok = constraints.iter().all(|c| {
                c.eval(&|s| assignment.get(&s).copied())
                    .is_some_and(|v| v != 0)
            });
            return ok.then(|| assignment.clone());
        }
        let idx = order[depth];
        let s = syms[idx];
        // If, under the current partial assignment, some constraint
        // reduces to an invertible equality on `s`, its value is forced:
        // enumerate just that value (Contradiction prunes the branch).
        let forced = self.forced_value(constraints, assignment, s);
        let forced_list;
        let values: &[u64] = match forced {
            Some(Ok(v)) => {
                forced_list = [v];
                &forced_list
            }
            Some(Err(())) => &[],
            None => &candidates[idx],
        };
        for &v in values {
            if *budget == 0 {
                return None;
            }
            assignment.insert(s, v);
            // Early pruning: evaluate constraints that are fully
            // assigned so far.
            let viable =
                constraints
                    .iter()
                    .all(|c| match c.eval(&|q| assignment.get(&q).copied()) {
                        Some(0) => false,
                        Some(_) | None => true,
                    });
            if viable {
                if let Some(m) = self.dfs(
                    constraints,
                    syms,
                    candidates,
                    order,
                    depth + 1,
                    assignment,
                    budget,
                ) {
                    return Some(m);
                }
            } else {
                *budget = budget.saturating_sub(1);
            }
            assignment.remove(&s);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(id: SymId) -> ExprRef {
        Expr::sym(id)
    }

    fn k(v: u64) -> ExprRef {
        Expr::konst(v)
    }

    fn eq(a: ExprRef, b: ExprRef) -> ExprRef {
        Expr::bin(BinOp::Eq, a, b)
    }

    #[test]
    fn trivially_sat_and_unsat() {
        let solver = Solver::new();
        assert!(solver.check(&[k(1)]).is_sat());
        assert!(solver.check(&[k(0)]).is_unsat());
        assert!(solver.check(&[]).is_sat());
    }

    #[test]
    fn isolates_linear_equations() {
        let solver = Solver::new();
        // σ0 + 5 == 12 → σ0 = 7.
        let c = eq(Expr::bin(BinOp::Add, s(0), k(5)), k(12));
        let m = solver.solve(&[c]).unwrap();
        assert_eq!(m.get(0), Some(7));
    }

    #[test]
    fn isolates_through_chains() {
        let solver = Solver::new();
        // ((σ0 ^ 0xff) - 3) == 10 → σ0 = 13 ^ 0xff.
        let c = eq(
            Expr::bin(BinOp::Sub, Expr::bin(BinOp::Xor, s(0), k(0xff)), k(3)),
            k(10),
        );
        let m = solver.solve(&[c]).unwrap();
        assert_eq!(m.get(0), Some(13 ^ 0xff));
    }

    #[test]
    fn isolates_odd_multiplication() {
        let solver = Solver::new();
        // σ0 * 3 == 42 → σ0 = 14.
        let c = eq(Expr::bin(BinOp::Mul, s(0), k(3)), k(42));
        let m = solver.solve(&[c]).unwrap();
        assert_eq!(m.get(0), Some(14));
    }

    #[test]
    fn isolates_negation_and_not() {
        let solver = Solver::new();
        let c = eq(Expr::un(UnOp::Neg, s(0)), k(5u64.wrapping_neg()));
        assert_eq!(solver.solve(&[c]).unwrap().get(0), Some(5));
        let c = eq(Expr::un(UnOp::Not, s(1)), k(!77));
        assert_eq!(solver.solve(&[c]).unwrap().get(1), Some(77));
    }

    #[test]
    fn conflicting_equalities_unsat() {
        let solver = Solver::new();
        let c1 = eq(s(0), k(1));
        let c2 = eq(s(0), k(2));
        assert!(solver.check(&[c1, c2]).is_unsat());
    }

    #[test]
    fn interval_contradiction_unsat() {
        let solver = Solver::new();
        // σ0 < 5 and σ0 == 9.
        let c1 = Expr::bin(BinOp::LtU, s(0), k(5));
        let c2 = eq(s(0), k(9));
        assert!(solver.check(&[c1, c2]).is_unsat());
    }

    #[test]
    fn bounded_domain_enumerated_exhaustively() {
        let solver = Solver::new();
        // σ0 < 4 and σ0*σ0 == 9 → σ0 = 3.
        let c1 = Expr::bin(BinOp::LtU, s(0), k(4));
        let c2 = eq(Expr::bin(BinOp::Mul, s(0), s(0)), k(9));
        let m = solver.solve(&[c1, c2]).unwrap();
        assert_eq!(m.get(0), Some(3));
    }

    #[test]
    fn bounded_domain_proves_unsat() {
        let solver = Solver::new();
        // σ0 < 4 and σ0*σ0 == 10 — nothing works; domain complete.
        let c1 = Expr::bin(BinOp::LtU, s(0), k(4));
        let c2 = eq(Expr::bin(BinOp::Mul, s(0), s(0)), k(10));
        assert!(solver.check(&[c1, c2]).is_unsat());
    }

    #[test]
    fn constant_seeding_cracks_equalities() {
        let solver = Solver::new();
        // σ0 & 0xf0 == 0x30 over an unbounded domain — seeds include
        // 0x30 ± 1 and friends; 0x30 itself satisfies.
        let c = eq(Expr::bin(BinOp::And, s(0), k(0xf0)), k(0x30));
        let m = solver.solve(&[c]).unwrap();
        assert_eq!(m.get_or_zero(0) & 0xf0, 0x30);
    }

    #[test]
    fn two_symbol_system() {
        let solver = Solver::new();
        // σ0 + σ1 == 10, σ0 == 4.
        let c1 = eq(Expr::bin(BinOp::Add, s(0), s(1)), k(10));
        let c2 = eq(s(0), k(4));
        let m = solver.solve(&[c1, c2]).unwrap();
        assert_eq!(m.get(0), Some(4));
        assert_eq!(m.get(1), Some(6));
    }

    #[test]
    fn negated_comparison_rewrites() {
        let solver = Solver::new();
        // (σ0 < 10) == 0 → σ0 >= 10; with σ0 <= 10 → σ0 = 10.
        let lt = Expr::bin(BinOp::LtU, s(0), k(10));
        let c1 = eq(lt, k(0));
        let c2 = Expr::bin(BinOp::LeU, s(0), k(10));
        let m = solver.solve(&[c1, c2]).unwrap();
        assert_eq!(m.get(0), Some(10));
    }

    #[test]
    fn bare_symbol_constraint_means_nonzero() {
        let solver = Solver::new();
        let c1 = s(0);
        let c2 = Expr::bin(BinOp::LeU, s(0), k(1));
        let m = solver.solve(&[c1, c2]).unwrap();
        assert_eq!(m.get(0), Some(1));
    }

    #[test]
    fn disequality_enumeration() {
        let solver = Solver::new();
        // σ0 != 0, σ0 != 1, σ0 <= 2 → σ0 = 2.
        let c1 = Expr::bin(BinOp::Ne, s(0), k(0));
        let c2 = Expr::bin(BinOp::Ne, s(0), k(1));
        let c3 = Expr::bin(BinOp::LeU, s(0), k(2));
        let m = solver.solve(&[c1, c2, c3]).unwrap();
        assert_eq!(m.get(0), Some(2));
    }

    #[test]
    fn unknown_on_hard_unbounded_problems() {
        // σ0 * σ0 == 0x4000000000000001 over the full domain with a tiny
        // budget: no seed hits it, so the solver must answer Unknown,
        // never a false Unsat.
        let solver = Solver::with_config(SolverConfig {
            max_assignments: 100,
            ..SolverConfig::default()
        });
        let c = eq(Expr::bin(BinOp::Mul, s(0), s(0)), k(0x4000_0000_0000_0001));
        let r = solver.check(&[c]);
        assert!(!r.is_unsat(), "must not claim unsat: {r:?}");
    }

    #[test]
    fn shl_low_bits_contradiction() {
        let solver = Solver::new();
        // σ0 << 4 == 3 is impossible.
        let c = eq(Expr::bin(BinOp::Shl, s(0), k(4)), k(3));
        assert!(solver.check(&[c]).is_unsat());
    }

    #[test]
    fn model_satisfies_all_constraints() {
        let solver = Solver::new();
        let cs = vec![
            eq(Expr::bin(BinOp::Add, s(0), s(1)), k(100)),
            Expr::bin(BinOp::LtU, s(0), k(50)),
            Expr::bin(BinOp::LtU, k(40), s(0)),
        ];
        let m = solver.solve(&cs).unwrap();
        for c in &cs {
            assert_eq!(m.eval_total(c).map(|v| v != 0), Some(true), "violated: {c}");
        }
    }

    #[test]
    fn odd_inverse_correct() {
        for a in [1u64, 3, 5, 7, 0xdead_beef | 1, u64::MAX] {
            assert_eq!(a.wrapping_mul(odd_inverse(a)), 1, "inv({a})");
        }
    }
}
