//! Subtree-verdict certificates exported by speculative workers.
//!
//! PR 3's sharded speculation warms a portable solver cache but throws
//! the workers' *search outcomes* away: the sequential replay still
//! re-expands every node, so the parallel win is bounded by solver cost
//! alone. A [`VerdictRecord`] is the missing export — a checkable
//! certificate, keyed by the canonical enumeration index of a subtree
//! root, stating what a full exploration of that subtree yields:
//!
//! * [`VerdictKind::Exhausted`] — the subtree contains no surviving
//!   suffix. Replay may *skip* it wholesale, folding the certificate's
//!   [`SubtreeStats`] into its own accounting so every total (node,
//!   hypothesis, rejection, and assignment counts, budget admission,
//!   the final proven/budget verdict) reconciles exactly with what a
//!   full replay would have produced.
//! * [`VerdictKind::HasArtifact`] — the subtree contains at least one
//!   surviving suffix. Never skipped (replay must materialize the
//!   artifact bytes itself); persisted for provenance and tooling.
//!
//! Soundness rests on the same α-equivariance contract as
//! [`PortableResult`](crate::PortableResult): a certificate is emitted
//! only when every solver answer consumed inside the subtree was
//! renaming-equivariant (see `SessionStats::private_results`), so a
//! worker's exploration of the subtree is step-for-step isomorphic to
//! the replay exploration it stands in for. Certificates are scoped by
//! a fingerprint of the (dump, search-configuration) pair and carry the
//! worker index that produced them ([`REPLAY_ORIGIN`] marks records
//! re-certified by the sequential replay itself).

use std::collections::BTreeMap;

use mvm_json::{json_enum, json_struct};

/// Origin tag for verdicts certified by the sequential replay itself
/// (as opposed to speculative worker `w < workers`).
pub const REPLAY_ORIGIN: u32 = u32::MAX;

/// Exact exploration accounting for one subtree — the counters a full
/// sequential exploration of the subtree would have added to
/// `KernelStats`. Field-for-field these mirror the kernel's counter
/// fields; `res-core` folds them back on skip so totals reconcile.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SubtreeStats {
    /// Nodes the subtree exploration expanded (including its root).
    pub nodes: u64,
    /// Candidate hypotheses instantiated.
    pub hypotheses: u64,
    /// Hypotheses accepted as feasible children.
    pub accepted: u64,
    /// Rejections: structurally inapplicable hypotheses.
    pub rejected_structural: u64,
    /// Rejections: symbolic execution infeasibility.
    pub rejected_exec: u64,
    /// Rejections: solver-proven Unsat.
    pub rejected_solver: u64,
    /// Rejections: LBR breadcrumb mismatch.
    pub rejected_lbr: u64,
    /// Rejections: error-log breadcrumb mismatch.
    pub rejected_log: u64,
    /// Rejections: per-hypothesis instruction budget.
    pub rejected_budget: u64,
    /// Solver-Unknown children accepted over-approximately.
    pub unknown_accepted: u64,
    /// ... of which the solver ran out of assignment budget.
    pub unknown_accepted_budget: u64,
    /// ... of which the solver theory was incomplete.
    pub unknown_accepted_incomplete: u64,
    /// Artifact finalizations that failed.
    pub finalize_failed: u64,
    /// Artifacts (suffixes) produced inside the subtree.
    pub artifacts: u64,
    /// Deepest node depth reached inside the subtree (absolute).
    pub deepest: u64,
    /// Solver enumeration assignments spent inside the subtree.
    pub assignments: u64,
    /// Symbolic variables minted inside the subtree. On skip the replay
    /// advances its symbol allocator by this amount, so every node
    /// explored *after* the skipped subtree sees byte-identical symbol
    /// ids to a full sequential run — without this, downstream
    /// constraint sets would be merely α-equivalent, and probe-seeded
    /// (non-equivariant) solver answers could drift.
    pub syms: u64,
}

json_struct!(SubtreeStats {
    nodes,
    hypotheses,
    accepted,
    rejected_structural,
    rejected_exec,
    rejected_solver,
    rejected_lbr,
    rejected_log,
    rejected_budget,
    unknown_accepted,
    unknown_accepted_budget,
    unknown_accepted_incomplete,
    finalize_failed,
    artifacts,
    deepest,
    assignments,
    syms
});

impl SubtreeStats {
    /// Folds another subtree's accounting into this one (sums counters,
    /// maxes `deepest`).
    pub fn absorb(&mut self, other: &SubtreeStats) {
        self.nodes += other.nodes;
        self.hypotheses += other.hypotheses;
        self.accepted += other.accepted;
        self.rejected_structural += other.rejected_structural;
        self.rejected_exec += other.rejected_exec;
        self.rejected_solver += other.rejected_solver;
        self.rejected_lbr += other.rejected_lbr;
        self.rejected_log += other.rejected_log;
        self.rejected_budget += other.rejected_budget;
        self.unknown_accepted += other.unknown_accepted;
        self.unknown_accepted_budget += other.unknown_accepted_budget;
        self.unknown_accepted_incomplete += other.unknown_accepted_incomplete;
        self.finalize_failed += other.finalize_failed;
        self.artifacts += other.artifacts;
        self.deepest = self.deepest.max(other.deepest);
        self.assignments += other.assignments;
        self.syms += other.syms;
    }
}

/// What a certified subtree contains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerdictKind {
    /// Fully explored, no surviving suffix anywhere inside. Replay may
    /// skip the subtree and fold [`SubtreeStats`] in.
    Exhausted,
    /// Fully explored and at least one surviving suffix was produced.
    /// Informational: replay re-derives the artifact bytes itself.
    HasArtifact,
}

json_enum!(VerdictKind {
    Exhausted,
    HasArtifact
});

/// One subtree certificate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerdictRecord {
    /// Fingerprint of the (coredump, search-configuration) pair the
    /// certificate is valid for. Verdicts from a different scope are
    /// ignored, never wrong.
    pub scope: u64,
    /// Worker index that certified the subtree ([`REPLAY_ORIGIN`] for
    /// the sequential replay).
    pub worker: u32,
    /// Canonical enumeration index of the subtree root: the sequence of
    /// candidate indices (in deterministic `generate()` order) from the
    /// search root.
    pub path: Vec<u32>,
    /// What the subtree contains.
    pub kind: VerdictKind,
    /// Exact accounting of the full exploration.
    pub stats: SubtreeStats,
}

json_struct!(VerdictRecord {
    scope,
    worker,
    path,
    kind,
    stats
});

/// A consultable set of verdicts for one scope, keyed by enumeration
/// path. First insertion wins: certificates for the same (scope, path)
/// are exact replicas by construction, so dedup order is cosmetic.
#[derive(Debug, Clone, Default)]
pub struct VerdictSet {
    by_path: BTreeMap<Vec<u32>, VerdictRecord>,
}

impl VerdictSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a record unless its path is already certified. Returns
    /// `true` when the record was new.
    pub fn insert(&mut self, record: VerdictRecord) -> bool {
        match self.by_path.entry(record.path.clone()) {
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(record);
                true
            }
            std::collections::btree_map::Entry::Occupied(_) => false,
        }
    }

    /// Looks up the certificate for an enumeration path.
    pub fn get(&self, path: &[u32]) -> Option<&VerdictRecord> {
        self.by_path.get(path)
    }

    /// Number of certified subtrees.
    pub fn len(&self) -> usize {
        self.by_path.len()
    }

    /// `true` when no subtree is certified.
    pub fn is_empty(&self) -> bool {
        self.by_path.is_empty()
    }

    /// Iterates the records in path order.
    pub fn records(&self) -> impl Iterator<Item = &VerdictRecord> {
        self.by_path.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(path: Vec<u32>, kind: VerdictKind) -> VerdictRecord {
        VerdictRecord {
            scope: 0xabcd,
            worker: 1,
            path,
            kind,
            stats: SubtreeStats {
                nodes: 3,
                hypotheses: 6,
                accepted: 2,
                deepest: 4,
                assignments: 10,
                ..SubtreeStats::default()
            },
        }
    }

    #[test]
    fn verdict_records_round_trip_through_json() {
        let r = record(vec![0, 2, 1], VerdictKind::Exhausted);
        let text = mvm_json::to_string(&r);
        let back: VerdictRecord = mvm_json::from_str(&text).unwrap();
        assert_eq!(back, r);
        let h = record(vec![], VerdictKind::HasArtifact);
        let back: VerdictRecord = mvm_json::from_str(&mvm_json::to_string(&h)).unwrap();
        assert_eq!(back, h);
    }

    #[test]
    fn subtree_stats_absorb_sums_and_maxes() {
        let mut a = SubtreeStats {
            nodes: 1,
            deepest: 2,
            assignments: 5,
            ..SubtreeStats::default()
        };
        let b = SubtreeStats {
            nodes: 4,
            deepest: 1,
            assignments: 7,
            artifacts: 1,
            ..SubtreeStats::default()
        };
        a.absorb(&b);
        assert_eq!(a.nodes, 5);
        assert_eq!(a.deepest, 2);
        assert_eq!(a.assignments, 12);
        assert_eq!(a.artifacts, 1);
    }

    #[test]
    fn verdict_set_first_insertion_wins() {
        let mut set = VerdictSet::new();
        assert!(set.insert(record(vec![1], VerdictKind::Exhausted)));
        assert!(!set.insert(record(vec![1], VerdictKind::HasArtifact)));
        assert_eq!(set.len(), 1);
        assert_eq!(set.get(&[1]).unwrap().kind, VerdictKind::Exhausted);
        assert!(set.get(&[2]).is_none());
    }
}
