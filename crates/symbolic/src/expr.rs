//! Symbolic expressions over 64-bit words.
//!
//! Expressions are immutable trees behind [`Rc`]; the smart constructors
//! ([`Expr::bin`], [`Expr::un`]) fold constants and apply algebraic
//! identities eagerly, so trees stay small as a block's instructions are
//! executed symbolically. A fully concrete expression is always a single
//! [`Expr::Const`] node.

use std::collections::BTreeSet;
use std::rc::Rc;

use mvm_isa::{BinOp, UnOp};

/// Identifies a symbolic value (an "unknown" introduced by havocking an
/// overwritten location or by an external input — paper §2.4).
pub type SymId = u32;

/// Shared reference to an expression node.
pub type ExprRef = Rc<Expr>;

/// A symbolic 64-bit expression.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// A concrete constant.
    Const(u64),
    /// A symbolic value.
    Sym(SymId),
    /// A binary operation.
    Bin(BinOp, ExprRef, ExprRef),
    /// A unary operation.
    Un(UnOp, ExprRef),
}

impl Expr {
    /// A constant expression.
    pub fn konst(v: u64) -> ExprRef {
        Rc::new(Expr::Const(v))
    }

    /// A symbolic-value expression.
    pub fn sym(id: SymId) -> ExprRef {
        Rc::new(Expr::Sym(id))
    }

    /// Returns the constant value if the expression is concrete.
    pub fn as_const(&self) -> Option<u64> {
        match self {
            Expr::Const(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the symbol id if the expression is a bare symbol.
    pub fn as_sym(&self) -> Option<SymId> {
        match self {
            Expr::Sym(s) => Some(*s),
            _ => None,
        }
    }

    /// Builds `op(a, b)` with constant folding and identity
    /// simplification.
    ///
    /// Division/remainder by a constant zero is *not* folded (it has no
    /// value); it is left symbolic so the solver treats the constraint
    /// as unsatisfiable.
    pub fn bin(op: BinOp, a: ExprRef, b: ExprRef) -> ExprRef {
        // Constant folding.
        if let (Some(x), Some(y)) = (a.as_const(), b.as_const()) {
            if let Some(v) = op.eval(x, y) {
                return Expr::konst(v);
            }
        }
        // Identities. Commutative ops are normalized const-right first.
        let (a, b) = match op {
            BinOp::Add
            | BinOp::Mul
            | BinOp::And
            | BinOp::Or
            | BinOp::Xor
            | BinOp::Eq
            | BinOp::Ne
                if a.as_const().is_some() && b.as_const().is_none() =>
            {
                (b, a)
            }
            _ => (a, b),
        };
        match (op, a.as_const(), b.as_const()) {
            (
                BinOp::Add
                | BinOp::Sub
                | BinOp::Xor
                | BinOp::Or
                | BinOp::Shl
                | BinOp::Shr
                | BinOp::Sar,
                _,
                Some(0),
            ) => return a,
            (BinOp::Mul, _, Some(1))
            | (BinOp::DivU, _, Some(1))
            | (BinOp::And, _, Some(u64::MAX)) => return a,
            (BinOp::Mul | BinOp::And, _, Some(0)) => return Expr::konst(0),
            (BinOp::Or, _, Some(u64::MAX)) => return Expr::konst(u64::MAX),
            (BinOp::RemU, _, Some(1)) => return Expr::konst(0),
            _ => {}
        }
        if a == b {
            match op {
                BinOp::Sub | BinOp::Xor => return Expr::konst(0),
                BinOp::Eq | BinOp::LeU | BinOp::LeS => return Expr::konst(1),
                BinOp::Ne | BinOp::LtU | BinOp::LtS => return Expr::konst(0),
                BinOp::And | BinOp::Or => return a,
                _ => {}
            }
        }
        // Comparison-of-comparison simplifications: `(a cmp b) != 0` is
        // `(a cmp b)`, and `(a == b) == 0` etc. are handled by the
        // solver's negation handling; keep construction simple here.
        if op == BinOp::Ne {
            if let Expr::Bin(inner, _, _) = &*a {
                if inner.is_comparison() && b.as_const() == Some(0) {
                    return a;
                }
            }
        }
        // Re-associate `(x + c1) + c2` → `x + (c1+c2)` (also for Sub via
        // negation) so chains of address arithmetic stay flat.
        if op == BinOp::Add {
            if let (Expr::Bin(BinOp::Add, x, c1), Some(c2)) = (&*a, b.as_const()) {
                if let Some(c1v) = c1.as_const() {
                    return Expr::bin(BinOp::Add, x.clone(), Expr::konst(c1v.wrapping_add(c2)));
                }
            }
        }
        Rc::new(Expr::Bin(op, a, b))
    }

    /// Builds `op(a)` with constant folding and double-negation
    /// elimination.
    pub fn un(op: UnOp, a: ExprRef) -> ExprRef {
        if let Some(x) = a.as_const() {
            return Expr::konst(op.eval(x));
        }
        if let Expr::Un(inner, e) = &*a {
            if *inner == op {
                // not(not(x)) = x, neg(neg(x)) = x.
                return e.clone();
            }
        }
        Rc::new(Expr::Un(op, a))
    }

    /// `true` if the expression contains no symbols.
    pub fn is_concrete(&self) -> bool {
        match self {
            Expr::Const(_) => true,
            Expr::Sym(_) => false,
            Expr::Bin(_, a, b) => a.is_concrete() && b.is_concrete(),
            Expr::Un(_, a) => a.is_concrete(),
        }
    }

    /// Collects the symbols appearing in the expression.
    pub fn symbols(&self) -> BTreeSet<SymId> {
        let mut out = BTreeSet::new();
        self.collect_symbols(&mut out);
        out
    }

    fn collect_symbols(&self, out: &mut BTreeSet<SymId>) {
        match self {
            Expr::Const(_) => {}
            Expr::Sym(s) => {
                out.insert(*s);
            }
            Expr::Bin(_, a, b) => {
                a.collect_symbols(out);
                b.collect_symbols(out);
            }
            Expr::Un(_, a) => a.collect_symbols(out),
        }
    }

    /// Constants appearing anywhere in the expression (enumeration
    /// seeds for the solver).
    pub fn constants(&self) -> BTreeSet<u64> {
        let mut out = BTreeSet::new();
        self.collect_constants(&mut out);
        out
    }

    fn collect_constants(&self, out: &mut BTreeSet<u64>) {
        match self {
            Expr::Const(v) => {
                out.insert(*v);
            }
            Expr::Sym(_) => {}
            Expr::Bin(_, a, b) => {
                a.collect_constants(out);
                b.collect_constants(out);
            }
            Expr::Un(_, a) => a.collect_constants(out),
        }
    }

    /// Evaluates under a (total or partial) assignment; `None` when a
    /// needed symbol is unassigned or an operation has no value
    /// (division by zero).
    pub fn eval(&self, lookup: &dyn Fn(SymId) -> Option<u64>) -> Option<u64> {
        match self {
            Expr::Const(v) => Some(*v),
            Expr::Sym(s) => lookup(*s),
            Expr::Bin(op, a, b) => op.eval(a.eval(lookup)?, b.eval(lookup)?),
            Expr::Un(op, a) => Some(op.eval(a.eval(lookup)?)),
        }
    }

    /// Rebuilds the expression with symbols replaced per `subst`
    /// (unmapped symbols stay symbolic). Simplification re-applies.
    pub fn substitute(self: &ExprRef, subst: &dyn Fn(SymId) -> Option<ExprRef>) -> ExprRef {
        match &**self {
            Expr::Const(_) => self.clone(),
            Expr::Sym(s) => subst(*s).unwrap_or_else(|| self.clone()),
            Expr::Bin(op, a, b) => {
                let na = a.substitute(subst);
                let nb = b.substitute(subst);
                if Rc::ptr_eq(&na, a) && Rc::ptr_eq(&nb, b) {
                    self.clone()
                } else {
                    Expr::bin(*op, na, nb)
                }
            }
            Expr::Un(op, a) => {
                let na = a.substitute(subst);
                if Rc::ptr_eq(&na, a) {
                    self.clone()
                } else {
                    Expr::un(*op, na)
                }
            }
        }
    }

    /// Node count — a complexity metric for budgeting.
    pub fn size(&self) -> usize {
        match self {
            Expr::Const(_) | Expr::Sym(_) => 1,
            Expr::Bin(_, a, b) => 1 + a.size() + b.size(),
            Expr::Un(_, a) => 1 + a.size(),
        }
    }
}

impl std::fmt::Display for Expr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Expr::Const(v) => write!(f, "{v:#x}"),
            Expr::Sym(s) => write!(f, "σ{s}"),
            Expr::Bin(op, a, b) => write!(f, "({} {a} {b})", op.mnemonic()),
            Expr::Un(op, a) => write!(f, "({} {a})", op.mnemonic()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_folding() {
        let e = Expr::bin(BinOp::Add, Expr::konst(2), Expr::konst(40));
        assert_eq!(e.as_const(), Some(42));
        let e = Expr::un(UnOp::Not, Expr::konst(0));
        assert_eq!(e.as_const(), Some(u64::MAX));
    }

    #[test]
    fn div_by_zero_not_folded() {
        let e = Expr::bin(BinOp::DivU, Expr::konst(5), Expr::konst(0));
        assert!(e.as_const().is_none());
    }

    #[test]
    fn identities() {
        let x = Expr::sym(0);
        assert_eq!(Expr::bin(BinOp::Add, x.clone(), Expr::konst(0)), x);
        assert_eq!(Expr::bin(BinOp::Mul, x.clone(), Expr::konst(1)), x);
        assert_eq!(
            Expr::bin(BinOp::Mul, x.clone(), Expr::konst(0)).as_const(),
            Some(0)
        );
        assert_eq!(
            Expr::bin(BinOp::Xor, x.clone(), x.clone()).as_const(),
            Some(0)
        );
        assert_eq!(
            Expr::bin(BinOp::Eq, x.clone(), x.clone()).as_const(),
            Some(1)
        );
        assert_eq!(
            Expr::bin(BinOp::LtU, x.clone(), x.clone()).as_const(),
            Some(0)
        );
    }

    #[test]
    fn commutative_normalization() {
        // `5 + x` normalizes to `x + 5`.
        let e = Expr::bin(BinOp::Add, Expr::konst(5), Expr::sym(1));
        let Expr::Bin(BinOp::Add, a, b) = &*e else {
            panic!("not a bin")
        };
        assert_eq!(a.as_sym(), Some(1));
        assert_eq!(b.as_const(), Some(5));
    }

    #[test]
    fn reassociation_flattens_address_chains() {
        let x = Expr::sym(0);
        let e = Expr::bin(BinOp::Add, x.clone(), Expr::konst(8));
        let e = Expr::bin(BinOp::Add, e, Expr::konst(16));
        let Expr::Bin(BinOp::Add, a, b) = &*e else {
            panic!("not a bin")
        };
        assert_eq!(a.as_sym(), Some(0));
        assert_eq!(b.as_const(), Some(24));
    }

    #[test]
    fn double_negation() {
        let x = Expr::sym(3);
        let e = Expr::un(UnOp::Neg, Expr::un(UnOp::Neg, x.clone()));
        assert_eq!(e, x);
    }

    #[test]
    fn ne_zero_of_comparison_collapses() {
        let cmp = Expr::bin(BinOp::LtU, Expr::sym(0), Expr::konst(10));
        let e = Expr::bin(BinOp::Ne, cmp.clone(), Expr::konst(0));
        assert_eq!(e, cmp);
    }

    #[test]
    fn symbols_and_constants_collected() {
        let e = Expr::bin(
            BinOp::Add,
            Expr::bin(BinOp::Mul, Expr::sym(1), Expr::konst(3)),
            Expr::sym(7),
        );
        assert_eq!(e.symbols().into_iter().collect::<Vec<_>>(), vec![1, 7]);
        assert!(e.constants().contains(&3));
        assert!(!e.is_concrete());
        assert!(e.size() >= 5);
    }

    #[test]
    fn eval_with_assignment() {
        let e = Expr::bin(BinOp::Add, Expr::sym(0), Expr::konst(5));
        assert_eq!(e.eval(&|s| (s == 0).then_some(37)), Some(42));
        assert_eq!(e.eval(&|_| None), None);
    }

    #[test]
    fn substitute_binds_and_simplifies() {
        let e = Expr::bin(BinOp::Add, Expr::sym(0), Expr::sym(1));
        let out = e.substitute(&|s| (s == 0).then(|| Expr::konst(2)));
        let out2 = out.substitute(&|s| (s == 1).then(|| Expr::konst(40)));
        assert_eq!(out2.as_const(), Some(42));
    }

    #[test]
    fn display_is_readable() {
        let e = Expr::bin(BinOp::Add, Expr::sym(0), Expr::konst(1));
        assert_eq!(e.to_string(), "(add σ0 0x1)");
    }
}
