//! Satisfying assignments.

use std::collections::BTreeMap;

use mvm_json::json_struct;

use crate::expr::{ExprRef, SymId};

/// A (possibly partial) assignment of symbols to concrete values.
///
/// The RES engine turns a model into the concrete inputs and the
/// concrete partial memory image `Mi` of a synthesized suffix
/// (paper §2.1).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Model {
    values: BTreeMap<SymId, u64>,
}

json_struct!(Model { values });

impl Model {
    /// An empty model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Binds a symbol.
    pub fn set(&mut self, sym: SymId, value: u64) {
        self.values.insert(sym, value);
    }

    /// Looks up a symbol.
    pub fn get(&self, sym: SymId) -> Option<u64> {
        self.values.get(&sym).copied()
    }

    /// Looks up a symbol, defaulting unbound symbols to zero (a model
    /// produced by the solver may leave don't-care symbols unbound).
    pub fn get_or_zero(&self, sym: SymId) -> u64 {
        self.get(sym).unwrap_or(0)
    }

    /// Evaluates an expression under this model, treating unbound
    /// symbols as zero.
    pub fn eval_total(&self, e: &ExprRef) -> Option<u64> {
        e.eval(&|s| Some(self.get_or_zero(s)))
    }

    /// Evaluates an expression strictly (`None` if an unbound symbol is
    /// reached).
    pub fn eval_partial(&self, e: &ExprRef) -> Option<u64> {
        e.eval(&|s| self.get(s))
    }

    /// Number of bound symbols.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` if no symbol is bound.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterates over `(sym, value)` pairs in symbol order.
    pub fn iter(&self) -> impl Iterator<Item = (SymId, u64)> + '_ {
        self.values.iter().map(|(&s, &v)| (s, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use mvm_isa::BinOp;

    #[test]
    fn set_get_and_defaults() {
        let mut m = Model::new();
        assert!(m.is_empty());
        m.set(3, 77);
        assert_eq!(m.get(3), Some(77));
        assert_eq!(m.get(4), None);
        assert_eq!(m.get_or_zero(4), 0);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn eval_total_vs_partial() {
        let mut m = Model::new();
        m.set(0, 40);
        let e = Expr::bin(BinOp::Add, Expr::sym(0), Expr::sym(1));
        assert_eq!(m.eval_total(&e), Some(40));
        assert_eq!(m.eval_partial(&e), None);
        m.set(1, 2);
        assert_eq!(m.eval_partial(&e), Some(42));
    }

    #[test]
    fn iteration_is_ordered() {
        let mut m = Model::new();
        m.set(5, 1);
        m.set(2, 2);
        let pairs: Vec<_> = m.iter().collect();
        assert_eq!(pairs, vec![(2, 2), (5, 1)]);
    }
}
