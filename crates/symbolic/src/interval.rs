//! Unsigned interval abstract domain.
//!
//! Intervals drive the solver's propagation phase: each unbound symbol
//! carries a `[lo, hi]` range that comparisons against constants narrow.
//! The domain is deliberately simple (no wrapping intervals); operations
//! that would wrap return [`Interval::TOP`], which is always sound.

use mvm_json::json_struct;

/// A closed unsigned interval `[lo, hi]`; empty when `lo > hi`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Inclusive lower bound.
    pub lo: u64,
    /// Inclusive upper bound.
    pub hi: u64,
}

json_struct!(Interval { lo, hi });

impl Interval {
    /// The full domain.
    pub const TOP: Interval = Interval {
        lo: 0,
        hi: u64::MAX,
    };

    /// A singleton interval.
    pub fn point(v: u64) -> Self {
        Interval { lo: v, hi: v }
    }

    /// `[lo, hi]`, normalized to empty if inverted.
    pub fn new(lo: u64, hi: u64) -> Self {
        Interval { lo, hi }
    }

    /// `true` if the interval contains no values.
    pub fn is_empty(&self) -> bool {
        self.lo > self.hi
    }

    /// `true` if the interval is a single value.
    pub fn is_point(&self) -> bool {
        self.lo == self.hi
    }

    /// Number of values, saturating at `u64::MAX`.
    pub fn count(&self) -> u64 {
        if self.is_empty() {
            0
        } else {
            (self.hi - self.lo).saturating_add(1)
        }
    }

    /// `true` if `v` is inside.
    pub fn contains(&self, v: u64) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// Intersection.
    pub fn meet(&self, other: &Interval) -> Interval {
        Interval {
            lo: self.lo.max(other.lo),
            hi: self.hi.min(other.hi),
        }
    }

    /// Convex union.
    pub fn join(&self, other: &Interval) -> Interval {
        if self.is_empty() {
            return *other;
        }
        if other.is_empty() {
            return *self;
        }
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Sound addition (TOP on potential wraparound).
    pub fn add(&self, other: &Interval) -> Interval {
        if self.is_empty() || other.is_empty() {
            return Interval::new(1, 0);
        }
        match (self.lo.checked_add(other.lo), self.hi.checked_add(other.hi)) {
            (Some(lo), Some(hi)) => Interval { lo, hi },
            _ => Interval::TOP,
        }
    }

    /// Sound subtraction (TOP on potential wraparound).
    pub fn sub(&self, other: &Interval) -> Interval {
        if self.is_empty() || other.is_empty() {
            return Interval::new(1, 0);
        }
        match (self.lo.checked_sub(other.hi), self.hi.checked_sub(other.lo)) {
            (Some(lo), Some(hi)) => Interval { lo, hi },
            _ => Interval::TOP,
        }
    }

    /// Refines under `self < bound` (strict unsigned).
    pub fn refine_lt(&self, bound: u64) -> Interval {
        if bound == 0 {
            return Interval::new(1, 0);
        }
        self.meet(&Interval::new(0, bound - 1))
    }

    /// Refines under `self <= bound`.
    pub fn refine_le(&self, bound: u64) -> Interval {
        self.meet(&Interval::new(0, bound))
    }

    /// Refines under `self > bound`.
    pub fn refine_gt(&self, bound: u64) -> Interval {
        if bound == u64::MAX {
            return Interval::new(1, 0);
        }
        self.meet(&Interval::new(bound + 1, u64::MAX))
    }

    /// Refines under `self >= bound`.
    pub fn refine_ge(&self, bound: u64) -> Interval {
        self.meet(&Interval::new(bound, u64::MAX))
    }

    /// Refines under `self != v` when `v` is an endpoint (the only case
    /// a convex interval can express).
    pub fn refine_ne(&self, v: u64) -> Interval {
        if self.is_point() && self.lo == v {
            return Interval::new(1, 0);
        }
        if self.lo == v {
            return Interval::new(self.lo.saturating_add(1), self.hi);
        }
        if self.hi == v {
            return Interval::new(self.lo, self.hi.saturating_sub(1));
        }
        *self
    }
}

impl Default for Interval {
    fn default() -> Self {
        Interval::TOP
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emptiness_and_counting() {
        assert!(Interval::new(5, 4).is_empty());
        assert_eq!(Interval::new(5, 4).count(), 0);
        assert_eq!(Interval::point(9).count(), 1);
        assert_eq!(Interval::new(0, 9).count(), 10);
        assert_eq!(Interval::TOP.count(), u64::MAX);
    }

    #[test]
    fn meet_and_join() {
        let a = Interval::new(0, 10);
        let b = Interval::new(5, 20);
        assert_eq!(a.meet(&b), Interval::new(5, 10));
        assert_eq!(a.join(&b), Interval::new(0, 20));
        assert!(Interval::new(0, 3).meet(&Interval::new(5, 9)).is_empty());
    }

    #[test]
    fn join_with_empty_is_identity() {
        let a = Interval::new(3, 7);
        let empty = Interval::new(1, 0);
        assert_eq!(a.join(&empty), a);
        assert_eq!(empty.join(&a), a);
    }

    #[test]
    fn arithmetic_is_sound() {
        let a = Interval::new(1, 3);
        let b = Interval::new(10, 20);
        assert_eq!(a.add(&b), Interval::new(11, 23));
        assert_eq!(b.sub(&a), Interval::new(7, 19));
        // Wraparound possibility collapses to TOP.
        assert_eq!(
            Interval::new(0, u64::MAX).add(&Interval::point(1)),
            Interval::TOP
        );
        assert_eq!(Interval::new(0, 5).sub(&Interval::point(1)), Interval::TOP);
    }

    #[test]
    fn refinements() {
        let t = Interval::TOP;
        assert_eq!(t.refine_lt(10), Interval::new(0, 9));
        assert!(t.refine_lt(0).is_empty());
        assert_eq!(t.refine_le(10), Interval::new(0, 10));
        assert_eq!(t.refine_gt(10), Interval::new(11, u64::MAX));
        assert!(t.refine_gt(u64::MAX).is_empty());
        assert_eq!(t.refine_ge(10).lo, 10);
    }

    #[test]
    fn refine_ne_trims_endpoints_only() {
        let a = Interval::new(3, 9);
        assert_eq!(a.refine_ne(3), Interval::new(4, 9));
        assert_eq!(a.refine_ne(9), Interval::new(3, 8));
        assert_eq!(a.refine_ne(5), a);
        assert!(Interval::point(4).refine_ne(4).is_empty());
    }
}
