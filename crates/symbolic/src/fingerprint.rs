//! Canonical (α-renamed) constraint fingerprints and portable results.
//!
//! The sharded exploration kernel runs speculative workers, each with
//! its own [`SymCtx`]-style symbol numbering. Two workers exploring the
//! same search path build constraint sets that are *α-equivalent* —
//! identical up to a monotone renaming of symbol ids — but never
//! byte-equal, so the exact memo cache in
//! [`SolverSession`](crate::SolverSession) cannot share answers between
//! them. This module provides the bridge:
//!
//! * [`canonical_key`] renames every symbol to its *rank* among the
//!   distinct symbols of the query (a monotone renaming) and hashes the
//!   renamed structure into a 128-bit [`CanonFp`]. α-equivalent
//!   constraint sequences collide exactly; everything else collides
//!   with probability ~2⁻¹²⁸.
//! * [`PortableResult`] is a solver verdict expressed over ranks
//!   instead of raw symbol ids. It contains no [`ExprRef`]s (which are
//!   `Rc`-backed and cannot cross threads), so worker threads can ship
//!   their caches back to the coordinating session.
//!
//! Only *renaming-equivariant* results may be exported (see
//! [`Solver::check_classified`](crate::Solver::check_classified)):
//! verdicts decided by propagation or by exhaustive enumeration of
//! complete finite domains depend only on the constraint structure, so
//! replaying them through the rank maps reproduces byte-for-byte what a
//! fresh solve would return. Probe-based enumeration seeds its
//! candidates from raw symbol ids and is therefore *not* equivariant;
//! such results stay private to the session that computed them.
//!
//! `SymCtx` lives in `res-core`; the solver only sees the ids it mints.

use std::collections::{BTreeMap, BTreeSet};

use mvm_json::{field, json_enum, json_struct, FromJson, Json, JsonError, ToJson};

use crate::expr::{Expr, ExprRef, SymId};
use crate::model::Model;
use crate::solver::{SolveResult, UnknownReason};

/// A 128-bit fingerprint of a canonicalized constraint sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CanonFp(pub u128);

// JSON keeps integers at u64 precision, so the 128-bit fingerprint is
// split into two words on the wire.
impl ToJson for CanonFp {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("hi".to_string(), Json::U64((self.0 >> 64) as u64)),
            ("lo".to_string(), Json::U64(self.0 as u64)),
        ])
    }
}

impl FromJson for CanonFp {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let obj = v
            .as_obj()
            .ok_or_else(|| JsonError::expected("CanonFp", v))?;
        let hi: u64 = field(obj, "hi", "CanonFp")?;
        let lo: u64 = field(obj, "lo", "CanonFp")?;
        Ok(CanonFp(((hi as u128) << 64) | lo as u128))
    }
}

/// Two independent FNV-1a accumulators, combined into 128 bits.
struct Fnv2 {
    a: u64,
    b: u64,
}

impl Fnv2 {
    fn new() -> Self {
        Fnv2 {
            a: 0xcbf2_9ce4_8422_2325,
            b: 0x6c62_272e_07bb_0142,
        }
    }

    fn byte(&mut self, x: u8) {
        self.a ^= x as u64;
        self.a = self.a.wrapping_mul(0x0000_0100_0000_01b3);
        self.b ^= x as u64;
        self.b = self.b.wrapping_mul(0x0000_0100_0000_0163);
    }

    fn u64(&mut self, x: u64) {
        for byte in x.to_le_bytes() {
            self.byte(byte);
        }
    }

    fn finish(&self) -> u128 {
        ((self.a as u128) << 64) | self.b as u128
    }
}

fn hash_expr(e: &ExprRef, rank: &BTreeMap<SymId, u32>, h: &mut Fnv2) {
    match &**e {
        Expr::Const(v) => {
            h.byte(1);
            h.u64(*v);
        }
        Expr::Sym(s) => {
            h.byte(2);
            h.u64(rank[s] as u64);
        }
        Expr::Bin(op, a, b) => {
            h.byte(3);
            h.byte(*op as u8);
            hash_expr(a, rank, h);
            hash_expr(b, rank, h);
        }
        Expr::Un(op, a) => {
            h.byte(4);
            h.byte(*op as u8);
            hash_expr(a, rank, h);
        }
    }
}

/// Canonicalizes a constraint sequence: returns its [`CanonFp`] and the
/// sorted distinct symbols, whose position *is* the canonical rank
/// (rank → original id). The renaming is monotone (sorted order), so it
/// preserves every id-order-dependent choice the solver makes on
/// complete domains.
pub fn canonical_key(constraints: &[ExprRef]) -> (CanonFp, Vec<SymId>) {
    let mut syms: BTreeSet<SymId> = BTreeSet::new();
    for c in constraints {
        syms.extend(c.symbols());
    }
    let sorted: Vec<SymId> = syms.into_iter().collect();
    let rank: BTreeMap<SymId, u32> = sorted
        .iter()
        .enumerate()
        .map(|(i, &s)| (s, i as u32))
        .collect();
    let mut h = Fnv2::new();
    h.u64(constraints.len() as u64);
    for c in constraints {
        hash_expr(c, &rank, &mut h);
        h.byte(0xfe);
    }
    (CanonFp(h.finish()), sorted)
}

/// A solver verdict over canonical ranks (no `ExprRef`s, so `Send`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PortableVerdict {
    /// Satisfiable; the witness maps ranks to values.
    Sat(Vec<(u32, u64)>),
    /// Proven unsatisfiable.
    Unsat,
    /// No verdict (reason preserved).
    Unknown(UnknownReason),
}

json_enum!(PortableVerdict {
    Sat(Vec<(u32, u64)>),
    Unsat,
    Unknown(UnknownReason),
});

/// A renaming-equivariant solver result, exportable across threads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortableResult {
    /// The verdict, over ranks.
    pub verdict: PortableVerdict,
    /// Enumeration assignments the original solve spent. Replayed into
    /// the absorbing session's accounting so kernel solver budgets
    /// behave identically whether a query was solved locally or
    /// imported.
    pub assignments: u64,
}

json_struct!(PortableResult {
    verdict,
    assignments
});

impl PortableResult {
    /// Renames `result` into rank space. Returns `None` when the model
    /// mentions a symbol outside the key (cannot happen for results the
    /// solver produced from the keyed constraints; guarded anyway).
    pub fn from_result(
        result: &SolveResult,
        assignments: u64,
        sorted_syms: &[SymId],
    ) -> Option<Self> {
        let rank: BTreeMap<SymId, u32> = sorted_syms
            .iter()
            .enumerate()
            .map(|(i, &s)| (s, i as u32))
            .collect();
        let verdict = match result {
            SolveResult::Sat(m) => {
                let mut pairs = Vec::with_capacity(m.len());
                for (s, v) in m.iter() {
                    pairs.push((*rank.get(&s)?, v));
                }
                PortableVerdict::Sat(pairs)
            }
            SolveResult::Unsat => PortableVerdict::Unsat,
            SolveResult::Unknown(r) => PortableVerdict::Unknown(*r),
        };
        Some(PortableResult {
            verdict,
            assignments,
        })
    }

    /// Renames the verdict back into the symbol space of a query with
    /// the given sorted distinct symbols. Returns `None` when a rank is
    /// out of range (a fingerprint collision guard: the query then falls
    /// through to a fresh solve).
    pub fn instantiate(&self, sorted_syms: &[SymId]) -> Option<SolveResult> {
        Some(match &self.verdict {
            PortableVerdict::Sat(pairs) => {
                let mut m = Model::new();
                for &(rank, v) in pairs {
                    m.set(*sorted_syms.get(rank as usize)?, v);
                }
                SolveResult::Sat(m)
            }
            PortableVerdict::Unsat => SolveResult::Unsat,
            PortableVerdict::Unknown(r) => SolveResult::Unknown(*r),
        })
    }
}

/// A batch of canonical cache entries exported by one worker session,
/// plus the subtree-verdict certificates the worker's exploration
/// produced (see [`crate::verdict`]).
#[derive(Debug, Clone, Default)]
pub struct PortableCache {
    /// `(fingerprint, result)` pairs, deduplicated per session.
    pub entries: Vec<(CanonFp, PortableResult)>,
    /// Subtree certificates with worker provenance. Absorbing the
    /// solver entries ignores these; the engine routes them to the
    /// replay pruner and the persistent store.
    pub verdicts: Vec<crate::verdict::VerdictRecord>,
}

json_struct!(PortableCache { entries, verdicts });

impl PortableCache {
    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing was exported.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvm_isa::BinOp;

    fn eq(a: ExprRef, b: ExprRef) -> ExprRef {
        Expr::bin(BinOp::Eq, a, b)
    }

    #[test]
    fn alpha_equivalent_sets_share_a_fingerprint() {
        // σ3 + 5 == 12 and σ90 + 5 == 12 are the same query up to
        // renaming.
        let a = vec![eq(
            Expr::bin(BinOp::Add, Expr::sym(3), Expr::konst(5)),
            Expr::konst(12),
        )];
        let b = vec![eq(
            Expr::bin(BinOp::Add, Expr::sym(90), Expr::konst(5)),
            Expr::konst(12),
        )];
        let (fa, sa) = canonical_key(&a);
        let (fb, sb) = canonical_key(&b);
        assert_eq!(fa, fb);
        assert_eq!(sa, vec![3]);
        assert_eq!(sb, vec![90]);
    }

    #[test]
    fn different_structure_differs() {
        let a = vec![eq(Expr::sym(0), Expr::konst(5))];
        let b = vec![eq(Expr::sym(0), Expr::konst(6))];
        let c = vec![Expr::bin(BinOp::LtU, Expr::sym(0), Expr::konst(5))];
        let (fa, _) = canonical_key(&a);
        let (fb, _) = canonical_key(&b);
        let (fc, _) = canonical_key(&c);
        assert_ne!(fa, fb);
        assert_ne!(fa, fc);
    }

    #[test]
    fn renaming_must_be_monotone_to_match() {
        // Two symbols in swapped roles: σ0 < σ1 vs σ1 < σ0. The sorted
        // renaming maps both queries over ranks {0, 1} but the structure
        // differs, so the fingerprints must differ.
        let a = vec![Expr::bin(BinOp::LtU, Expr::sym(0), Expr::sym(1))];
        let b = vec![Expr::bin(BinOp::LtU, Expr::sym(1), Expr::sym(0))];
        let (fa, _) = canonical_key(&a);
        let (fb, _) = canonical_key(&b);
        assert_ne!(fa, fb);
    }

    #[test]
    fn portable_roundtrip_renames_models() {
        let mut m = Model::new();
        m.set(7, 100);
        m.set(9, 200);
        let p = PortableResult::from_result(&SolveResult::Sat(m), 3, &[7, 9]).unwrap();
        let back = p.instantiate(&[40, 80]).unwrap();
        match back {
            SolveResult::Sat(m2) => {
                assert_eq!(m2.get(40), Some(100));
                assert_eq!(m2.get(80), Some(200));
            }
            other => panic!("expected sat, got {other:?}"),
        }
        assert_eq!(p.assignments, 3);
    }

    #[test]
    fn portable_results_round_trip_through_json() {
        let cache = PortableCache {
            entries: vec![
                (
                    CanonFp(u128::MAX - 7),
                    PortableResult {
                        verdict: PortableVerdict::Sat(vec![(0, u64::MAX), (1, 0)]),
                        assignments: 42,
                    },
                ),
                (
                    CanonFp(3),
                    PortableResult {
                        verdict: PortableVerdict::Unsat,
                        assignments: 0,
                    },
                ),
                (
                    CanonFp(9),
                    PortableResult {
                        verdict: PortableVerdict::Unknown(UnknownReason::Incomplete),
                        assignments: 1,
                    },
                ),
            ],
            verdicts: vec![crate::verdict::VerdictRecord {
                scope: 7,
                worker: 2,
                path: vec![0, 1],
                kind: crate::verdict::VerdictKind::Exhausted,
                stats: crate::verdict::SubtreeStats {
                    nodes: 5,
                    ..Default::default()
                },
            }],
        };
        let text = mvm_json::to_string(&cache);
        let back: PortableCache = mvm_json::from_str(&text).unwrap();
        assert_eq!(back.entries, cache.entries);
        assert_eq!(back.verdicts, cache.verdicts);
    }

    #[test]
    fn instantiate_guards_rank_overflow() {
        let p = PortableResult {
            verdict: PortableVerdict::Sat(vec![(5, 1)]),
            assignments: 0,
        };
        assert!(p.instantiate(&[1, 2]).is_none(), "rank 5 has no symbol");
    }
}
