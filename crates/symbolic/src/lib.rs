//! # Symbolic bitvector expressions and a from-scratch constraint solver
//!
//! `mvm-symbolic` is the reasoning substrate of the RES engine: 64-bit
//! bitvector expressions over *symbolic values* (paper §2.3: "stand-ins
//! for any possible value"), constraint sets, and a purpose-built solver.
//!
//! The original prototype sat on the Cloud9/KLEE stack and an SMT
//! solver. Neither is available offline, so this crate implements the
//! subset RES actually exercises (see `DESIGN.md` §1):
//!
//! * [`Expr`] — immutable expression trees with aggressive
//!   simplification in the smart constructors,
//! * [`Interval`] — an unsigned-interval abstract domain used for
//!   propagation,
//! * [`Solver`] — equality isolation + interval propagation +
//!   bounded backtracking enumeration, answering
//!   [`SolveResult::Sat`] (with a [`Model`]), [`SolveResult::Unsat`],
//!   or an honest [`SolveResult::Unknown`] when its budget runs out.
//!
//! Block-level RES constraints are short (a handful of havoc symbols, a
//! few arithmetic steps), which is what makes this practical: the solver
//! is complete for the invertible-arithmetic core and falls back to
//! value enumeration seeded with the constants that appear in the
//! constraints themselves.

pub mod expr;
pub mod fingerprint;
pub mod interval;
pub mod model;
pub mod session;
pub mod solver;
pub mod verdict;

pub use expr::{Expr, ExprRef, SymId};
pub use fingerprint::{canonical_key, CanonFp, PortableCache, PortableResult, PortableVerdict};
pub use interval::Interval;
pub use model::Model;
pub use session::{AbsorbSource, SessionStats, SolverSession};
pub use solver::{SolveResult, Solver, SolverConfig, UnknownReason};
pub use verdict::{SubtreeStats, VerdictKind, VerdictRecord, VerdictSet, REPLAY_ORIGIN};
