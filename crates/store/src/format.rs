//! Record framing for the store file (see the crate docs for the
//! format specification).

use mvm_json::json_struct;

/// First token of a store file's magic line.
pub const MAGIC: &str = "RES-STORE";

/// The format version this build reads and writes.
pub const FORMAT_VERSION: u32 = 1;

/// FNV-1a over 64 bits — the per-record checksum. Not cryptographic;
/// it guards against torn writes and bit rot, not adversaries.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The store's header record: what the file is and which program's
/// results it holds. `writer` is deliberately static metadata (crate
/// name and version, no timestamps) so that identical runs produce
/// byte-identical stores — the golden round-trip fixture depends on it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Header {
    /// Format version, duplicated from the magic line.
    pub format_version: u32,
    /// Fingerprint of the program whose results the store holds
    /// (see [`program_fingerprint`](crate::program_fingerprint)).
    pub program_fp: u64,
    /// The ISA family the program is encoded in.
    pub isa: String,
    /// Creating tool, for forensics.
    pub writer: String,
}

json_struct!(Header {
    format_version,
    program_fp,
    isa,
    writer
});

impl Header {
    /// The header this build writes for a program fingerprint.
    pub fn new(program_fp: u64) -> Self {
        Header {
            format_version: FORMAT_VERSION,
            program_fp,
            isa: "mvm".to_string(),
            writer: concat!("res-store ", env!("CARGO_PKG_VERSION")).to_string(),
        }
    }
}

/// Record tags. Unknown tags with valid framing are tolerated on read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tag {
    /// The header record.
    Header,
    /// One `CanonFp → PortableResult` entry.
    Entry,
    /// A [`StoreStats`](crate::StoreStats) observability block.
    Stats,
    /// One subtree-verdict certificate
    /// ([`mvm_symbolic::VerdictRecord`]). Introduced after format v1
    /// shipped; v1 readers that predate it see an unknown uppercase tag
    /// and skip the record, so no version bump is needed — an old build
    /// opening a verdict-bearing store degrades to entries-only, and an
    /// old store simply has no `V` records.
    Verdict,
    /// A tag this build does not know (skipped).
    Unknown(u8),
}

impl Tag {
    fn to_char(self) -> char {
        match self {
            Tag::Header => 'H',
            Tag::Entry => 'E',
            Tag::Stats => 'S',
            Tag::Verdict => 'V',
            Tag::Unknown(b) => b as char,
        }
    }

    fn from_str(s: &str) -> Option<Tag> {
        let mut bytes = s.bytes();
        let b = bytes.next()?;
        if bytes.next().is_some() || !b.is_ascii_uppercase() {
            return None;
        }
        Some(match b {
            b'H' => Tag::Header,
            b'E' => Tag::Entry,
            b'S' => Tag::Stats,
            b'V' => Tag::Verdict,
            other => Tag::Unknown(other),
        })
    }
}

/// Appends one framed record line: `<tag> <len> <fnv64-hex> <payload>\n`.
/// The payload is compact JSON and therefore never contains a newline.
pub fn encode_record(tag: Tag, payload: &str, out: &mut Vec<u8>) {
    debug_assert!(!payload.contains('\n'));
    out.extend_from_slice(
        format!(
            "{} {} {:016x} {}\n",
            tag.to_char(),
            payload.len(),
            fnv64(payload.as_bytes()),
            payload
        )
        .as_bytes(),
    );
}

/// The magic line this build writes (without the newline).
pub fn magic_line() -> String {
    format!("{MAGIC} {FORMAT_VERSION}")
}

/// Parses a magic line; returns the declared format version.
pub fn parse_magic(line: &str) -> Option<u32> {
    let rest = line.strip_prefix(MAGIC)?.strip_prefix(' ')?;
    rest.parse().ok()
}

/// Decodes one record line (`line` excludes the trailing newline).
/// Returns the tag and payload, or `None` when the framing, length, or
/// checksum is wrong — the reader treats that as a torn tail.
pub fn decode_record(line: &str) -> Option<(Tag, &str)> {
    let mut parts = line.splitn(4, ' ');
    let tag = Tag::from_str(parts.next()?)?;
    let len: usize = parts.next()?.parse().ok()?;
    let crc = u64::from_str_radix(parts.next()?, 16).ok()?;
    let payload = parts.next()?;
    if payload.len() != len || fnv64(payload.as_bytes()) != crc {
        return None;
    }
    Some((tag, payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_round_trips() {
        let mut out = Vec::new();
        encode_record(Tag::Entry, r#"{"a":1}"#, &mut out);
        let line = std::str::from_utf8(&out).unwrap().trim_end();
        let (tag, payload) = decode_record(line).unwrap();
        assert_eq!(tag, Tag::Entry);
        assert_eq!(payload, r#"{"a":1}"#);
    }

    #[test]
    fn corrupted_payload_fails_the_checksum() {
        let mut out = Vec::new();
        encode_record(Tag::Entry, r#"{"a":1}"#, &mut out);
        let line = std::str::from_utf8(&out).unwrap().trim_end();
        let tampered = line.replace(r#"{"a":1}"#, r#"{"a":2}"#);
        assert!(decode_record(&tampered).is_none());
    }

    #[test]
    fn truncated_payload_fails_the_length() {
        let mut out = Vec::new();
        encode_record(Tag::Entry, r#"{"key":123456}"#, &mut out);
        let line = std::str::from_utf8(&out).unwrap().trim_end();
        assert!(decode_record(&line[..line.len() - 3]).is_none());
    }

    #[test]
    fn unknown_tags_still_frame() {
        let mut out = Vec::new();
        encode_record(Tag::Unknown(b'X'), "[]", &mut out);
        let line = std::str::from_utf8(&out).unwrap().trim_end();
        let (tag, payload) = decode_record(line).unwrap();
        assert_eq!(tag, Tag::Unknown(b'X'));
        assert_eq!(payload, "[]");
    }

    #[test]
    fn magic_line_round_trips_and_rejects_others() {
        assert_eq!(parse_magic(&magic_line()), Some(FORMAT_VERSION));
        assert_eq!(parse_magic("RES-STORE 99"), Some(99));
        assert_eq!(parse_magic("NOT-A-STORE 1"), None);
        assert_eq!(parse_magic(""), None);
    }
}
