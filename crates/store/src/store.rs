//! The store proper: open/validate, absorb, append, commit, compact.

use std::collections::{BTreeMap, BTreeSet};
use std::io;
use std::path::{Path, PathBuf};

use mvm_isa::Program;
use mvm_json::{json_enum, json_struct};
use mvm_symbolic::{CanonFp, PortableCache, PortableResult, SolverSession, VerdictRecord};
use res_obs::Recorder;

use crate::format::{
    decode_record, encode_record, fnv64, magic_line, parse_magic, Header, Tag, FORMAT_VERSION,
};

/// Fingerprint of a program for the store header: FNV-1a 64 over its
/// canonical JSON serialization. Any change to the program — even a
/// constant — changes the fingerprint, so a store built against an
/// older build is refused rather than half-trusted.
pub fn program_fingerprint(program: &Program) -> u64 {
    fnv64(mvm_json::to_string(program).as_bytes())
}

/// Default [`SolverStore::set_auto_compact`] threshold: compact when
/// more than half the on-disk entry records are supersedure garbage.
pub const DEFAULT_AUTO_COMPACT_RATIO: f64 = 0.5;

/// When a [`SolverStore::commit`] triggers an automatic compaction.
///
/// Dimensions are checked in declaration order; the first one exceeded
/// fires (and is named in the `compact.auto` trace mark). All three are
/// independent and optional:
///
/// * **supersedure** — the classic garbage trigger: the fraction of
///   on-disk entry records shadowed by a later record for the same
///   fingerprint.
/// * **size** — an absolute byte ceiling. Because entries themselves
///   are never dropped, this only fires when compaction can actually
///   reclaim something (supersedure garbage or stale stats records);
///   otherwise a large-but-dense store would recompact on every commit
///   for no gain.
/// * **age** — every commit appends one `S` (stats) record and leaves
///   the previous ones in place, so the count of *stale* stats records
///   is a durable proxy for "commits since last compaction" that needs
///   no timestamps and no format change. A long-running daemon uses
///   this to bound how ragged its hot stores get.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompactionPolicy {
    /// Compact when `superseded / entry_records` strictly exceeds this
    /// fraction. `None` disables the supersedure trigger.
    pub superseded_ratio: Option<f64>,
    /// Compact when the committed file exceeds this many bytes *and*
    /// there is something reclaimable. `None` disables.
    pub max_bytes: Option<u64>,
    /// Compact when more than this many stale stats records have
    /// accumulated (i.e. after `max_stale_stats + 1` commits without a
    /// compaction). `None` disables.
    pub max_stale_stats: Option<u64>,
}

impl Default for CompactionPolicy {
    /// The historic behaviour: supersedure ratio
    /// [`DEFAULT_AUTO_COMPACT_RATIO`], no size or age trigger.
    fn default() -> Self {
        CompactionPolicy {
            superseded_ratio: Some(DEFAULT_AUTO_COMPACT_RATIO),
            max_bytes: None,
            max_stale_stats: None,
        }
    }
}

impl CompactionPolicy {
    /// A policy with every trigger disabled (manual compaction only).
    pub fn disabled() -> Self {
        CompactionPolicy {
            superseded_ratio: None,
            max_bytes: None,
            max_stale_stats: None,
        }
    }
}

/// What [`SolverStore::open`] found on disk. Every outcome other than
/// [`Loaded`](LoadOutcome::Loaded) is a *cold start*: the store opens
/// with zero entries and the engine searches exactly as it would with
/// no store at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadOutcome {
    /// A valid store was read (possibly with a skipped torn tail).
    Loaded,
    /// No file at the path; one is created on the first commit.
    Missing,
    /// The file exists but is empty; rewritten on the first commit.
    Empty,
    /// The magic line names a format version this build does not
    /// speak; the file is rewritten fresh on the first commit.
    VersionMismatch,
    /// The magic line or header record is unreadable; rewritten fresh
    /// on the first commit.
    CorruptHeader,
    /// The header is valid but belongs to a *different program*. The
    /// store opens cold **and read-only**: commits are no-ops, so one
    /// program's corpus run can never clobber another program's cache.
    FingerprintMismatch,
}

json_enum!(LoadOutcome {
    Loaded,
    Missing,
    Empty,
    VersionMismatch,
    CorruptHeader,
    FingerprintMismatch
});

/// Everything the reader observed while opening a store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadReport {
    /// How the on-disk bytes were classified.
    pub outcome: LoadOutcome,
    /// Distinct entries loaded (after supersedure).
    pub entries_loaded: usize,
    /// On-disk entry records shadowed by a later record for the same
    /// fingerprint ([`SolverStore::compact`] reclaims them).
    pub superseded: usize,
    /// Subtree-verdict certificates loaded (after `(scope, path)`
    /// dedup).
    pub verdicts_loaded: usize,
    /// Trailing records dropped as torn or corrupted.
    pub records_skipped: usize,
    /// Bytes read from disk.
    pub bytes: u64,
}

impl LoadReport {
    fn cold(outcome: LoadOutcome, bytes: u64) -> Self {
        LoadReport {
            outcome,
            entries_loaded: 0,
            superseded: 0,
            verdicts_loaded: 0,
            records_skipped: 0,
            bytes,
        }
    }
}

/// The persisted observability block: one `S` record per commit,
/// last one wins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Distinct live entries at the last commit.
    pub entries: u64,
    /// File size in bytes at the last commit, excluding the trailing
    /// stats record itself.
    pub bytes: u64,
    /// Cumulative absorbed hits this store has served across every run
    /// that committed through it (reported via
    /// [`SolverStore::note_hits`]).
    pub absorbed_hits: u64,
    /// Commits performed over the store's lifetime.
    pub commits: u64,
    /// Compaction passes performed.
    pub compactions: u64,
}

json_struct!(StoreStats {
    entries,
    bytes,
    absorbed_hits,
    commits,
    compactions
});

/// What a [`SolverStore::commit`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CommitReport {
    /// Entry records appended by this commit.
    pub appended: usize,
    /// File size after the commit (excluding the stats record).
    pub bytes: u64,
    /// `true` when the store is read-only (fingerprint mismatch) and
    /// nothing was written.
    pub skipped_read_only: bool,
}

/// What a [`SolverStore::compact`] reclaimed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CompactReport {
    /// Superseded entry records dropped.
    pub dropped: usize,
    /// File size before compaction.
    pub bytes_before: u64,
    /// File size after compaction (excluding the stats record).
    pub bytes_after: u64,
    /// `true` when the store is read-only and nothing was rewritten.
    pub skipped_read_only: bool,
}

#[derive(Debug, Clone, PartialEq)]
struct EntryRecord {
    fp: CanonFp,
    result: PortableResult,
}

json_struct!(EntryRecord { fp, result });

/// A persistent, append-only store of renaming-equivariant solver
/// results for one program. See the crate docs for the format and the
/// determinism argument.
///
/// Opening never fails: every problem with the on-disk bytes degrades
/// to a cold start recorded in the [`LoadReport`]. Writing is atomic
/// (tmp file + rename) and append-only; the single expected writer is
/// one engine process at a time, but concurrent *readers* always see
/// either the old or the new complete file.
#[derive(Debug)]
pub struct SolverStore {
    path: PathBuf,
    header: Header,
    entries: BTreeMap<CanonFp, PortableResult>,
    /// Entries merged since the last commit, in merge order.
    pending: Vec<(CanonFp, PortableResult)>,
    /// All live subtree-verdict certificates, in load-then-merge order.
    verdicts: Vec<VerdictRecord>,
    /// `(scope, path)` keys already held, for first-wins dedup.
    verdict_keys: BTreeSet<(u64, Vec<u32>)>,
    /// Verdicts merged since the last commit, in merge order.
    pending_verdicts: Vec<VerdictRecord>,
    stats: StoreStats,
    report: LoadReport,
    /// The validated byte prefix of the on-disk file; commits append
    /// to it, dropping any torn tail.
    base: Vec<u8>,
    /// Entry records represented in `base` (for compaction accounting).
    base_entry_records: usize,
    /// Stats (`S`) records represented in `base` — one per commit since
    /// the last compaction; all but the final one are stale. The count
    /// is the [`CompactionPolicy`] age signal.
    stats_records: usize,
    read_only: bool,
    hits_dirty: bool,
    /// Auto-compaction policy checked after every commit (see
    /// [`set_compaction_policy`](Self::set_compaction_policy)).
    policy: CompactionPolicy,
    /// Passive observer: open/degraded/commit/compact marks. The caller
    /// hands in an already-scoped recorder (the engine uses
    /// `rec.scoped("store")`), so event names here stay bare. Never
    /// read back by the store.
    recorder: Recorder,
}

impl SolverStore {
    /// Opens (or plans to create) the store at `path` for the program
    /// with fingerprint `program_fp`.
    pub fn open(path: impl Into<PathBuf>, program_fp: u64) -> SolverStore {
        Self::open_with(path, program_fp, Recorder::disabled())
    }

    /// [`open`](Self::open) with a tracing recorder attached. Pass an
    /// already-scoped handle (e.g. `rec.scoped("store")`); the store
    /// emits bare mark names like `open`, `degraded`, `commit`, and
    /// `compact`.
    pub fn open_with(path: impl Into<PathBuf>, program_fp: u64, recorder: Recorder) -> SolverStore {
        let path = path.into();
        let mut store = SolverStore {
            path,
            header: Header::new(program_fp),
            entries: BTreeMap::new(),
            pending: Vec::new(),
            verdicts: Vec::new(),
            verdict_keys: BTreeSet::new(),
            pending_verdicts: Vec::new(),
            stats: StoreStats::default(),
            report: LoadReport::cold(LoadOutcome::Missing, 0),
            base: Vec::new(),
            base_entry_records: 0,
            stats_records: 0,
            read_only: false,
            hits_dirty: false,
            policy: CompactionPolicy::default(),
            recorder,
        };
        store.load(program_fp);
        let report = store.report;
        store.recorder.event_with("open", || {
            vec![
                ("outcome".into(), format!("{:?}", report.outcome)),
                ("entries".into(), report.entries_loaded.to_string()),
                ("superseded".into(), report.superseded.to_string()),
                ("skipped".into(), report.records_skipped.to_string()),
                ("bytes".into(), report.bytes.to_string()),
            ]
        });
        // A degradation is any defect that cost us warm-start entries:
        // every outcome other than a clean load or a simply-absent
        // file, plus any torn/corrupt tail records on an otherwise
        // valid store.
        let degraded = !matches!(report.outcome, LoadOutcome::Loaded | LoadOutcome::Missing)
            || report.records_skipped > 0;
        if degraded {
            store.recorder.event_with("degraded", || {
                vec![
                    ("outcome".into(), format!("{:?}", report.outcome)),
                    ("skipped".into(), report.records_skipped.to_string()),
                ]
            });
        }
        store
    }

    /// Opens a store for inspection without knowing its program: the
    /// header's own fingerprint is trusted, so a valid file always
    /// loads its entries (and never trips the fingerprint-mismatch
    /// guard). Used by the `store-inspect` CLI; engine code must use
    /// [`open`](Self::open) so stores stay bound to their program.
    pub fn open_for_inspection(path: impl Into<PathBuf>) -> SolverStore {
        let path = path.into();
        let fp = Self::peek_fingerprint(&path).unwrap_or(0);
        Self::open(path, fp)
    }

    /// Best-effort read of the program fingerprint in the header of the
    /// file at `path` (`None` when the file is missing, unreadable, or
    /// not a store).
    pub fn peek_fingerprint(path: &Path) -> Option<u64> {
        let raw = std::fs::read(path).ok()?;
        let text = std::str::from_utf8(&raw).ok()?;
        let magic_end = text.find('\n')?;
        parse_magic(&text[..magic_end])?;
        let (line, _) = Self::next_line(text, magic_end + 1)?;
        let (tag, payload) = decode_record(line)?;
        if tag != Tag::Header {
            return None;
        }
        let header: Header = mvm_json::from_str(payload).ok()?;
        Some(header.program_fp)
    }

    fn load(&mut self, program_fp: u64) {
        let raw = match std::fs::read(&self.path) {
            Ok(raw) => raw,
            Err(_) => return, // Missing: the default cold report stands.
        };
        let bytes = raw.len() as u64;
        if raw.is_empty() {
            self.report = LoadReport::cold(LoadOutcome::Empty, 0);
            return;
        }
        let Ok(text) = std::str::from_utf8(&raw) else {
            self.report = LoadReport::cold(LoadOutcome::CorruptHeader, bytes);
            return;
        };
        // Magic line.
        let Some(magic_end) = text.find('\n') else {
            self.report = LoadReport::cold(LoadOutcome::CorruptHeader, bytes);
            return;
        };
        match parse_magic(&text[..magic_end]) {
            Some(v) if v == FORMAT_VERSION => {}
            Some(_) => {
                self.report = LoadReport::cold(LoadOutcome::VersionMismatch, bytes);
                return;
            }
            None => {
                self.report = LoadReport::cold(LoadOutcome::CorruptHeader, bytes);
                return;
            }
        }
        // Header record.
        let mut off = magic_end + 1;
        let header: Header = match Self::next_line(text, off)
            .and_then(|(line, _)| decode_record(line))
            .filter(|(tag, _)| *tag == Tag::Header)
            .and_then(|(_, payload)| mvm_json::from_str(payload).ok())
        {
            Some(h) => h,
            None => {
                self.report = LoadReport::cold(LoadOutcome::CorruptHeader, bytes);
                return;
            }
        };
        off = Self::next_line(text, off).map(|(_, end)| end).unwrap();
        if header.format_version != FORMAT_VERSION {
            self.report = LoadReport::cold(LoadOutcome::VersionMismatch, bytes);
            return;
        }
        if header.program_fp != program_fp {
            // Another program's cache: refuse to read AND to write.
            self.report = LoadReport::cold(LoadOutcome::FingerprintMismatch, bytes);
            self.read_only = true;
            return;
        }
        self.header = header;
        // Body records, stopping at the first torn or undecodable one.
        let mut superseded = 0usize;
        while let Some((line, end)) = Self::next_line(text, off) {
            let parsed = decode_record(line).and_then(|(tag, payload)| match tag {
                Tag::Entry => {
                    let rec: EntryRecord = mvm_json::from_str(payload).ok()?;
                    Some(Some(rec))
                }
                Tag::Stats => {
                    self.stats = mvm_json::from_str(payload).ok()?;
                    self.stats_records += 1;
                    Some(None)
                }
                Tag::Verdict => {
                    let rec: VerdictRecord = mvm_json::from_str(payload).ok()?;
                    if self.verdict_keys.insert((rec.scope, rec.path.clone())) {
                        self.verdicts.push(rec);
                    }
                    Some(None)
                }
                // Stray headers and future record kinds are preserved
                // but carry no entries for this build.
                Tag::Header | Tag::Unknown(_) => Some(None),
            });
            match parsed {
                Some(Some(rec)) => {
                    // Append-only supersedure: the later record wins.
                    if self.entries.insert(rec.fp, rec.result).is_some() {
                        superseded += 1;
                    }
                    self.base_entry_records += 1;
                }
                Some(None) => {}
                None => break,
            }
            off = end;
        }
        let records_skipped = text[off..].lines().count();
        self.base = raw[..off].to_vec();
        self.report = LoadReport {
            outcome: LoadOutcome::Loaded,
            entries_loaded: self.entries.len(),
            superseded,
            verdicts_loaded: self.verdicts.len(),
            records_skipped,
            bytes,
        };
    }

    /// The next newline-*terminated* line starting at byte `off`:
    /// `(line without newline, offset past the newline)`. A trailing
    /// fragment with no newline is a torn record and is not returned.
    fn next_line(text: &str, off: usize) -> Option<(&str, usize)> {
        let rest = text.get(off..)?;
        let nl = rest.find('\n')?;
        Some((&rest[..nl], off + nl + 1))
    }

    /// The path the store reads and commits to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// What the reader observed at open time.
    pub fn load_report(&self) -> &LoadReport {
        &self.report
    }

    /// The store header (as loaded, or as it will be written).
    pub fn header(&self) -> &Header {
        &self.header
    }

    /// The persisted observability counters.
    pub fn stats(&self) -> &StoreStats {
        &self.stats
    }

    /// Distinct live entries (loaded plus merged-but-uncommitted).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `true` when the store refuses writes (fingerprint mismatch).
    pub fn read_only(&self) -> bool {
        self.read_only
    }

    /// Sets just the supersedure-ratio trigger of the compaction
    /// policy, leaving the size and age triggers untouched. `None`
    /// disables it; the default is [`DEFAULT_AUTO_COMPACT_RATIO`].
    pub fn set_auto_compact(&mut self, threshold: Option<f64>) {
        self.policy.superseded_ratio = threshold;
    }

    /// Sets the full auto-compaction policy checked after every commit.
    /// When any trigger fires, the commit is followed by a
    /// [`compact`](Self::compact), marked `compact.auto` in the trace
    /// with the firing dimension named.
    pub fn set_compaction_policy(&mut self, policy: CompactionPolicy) {
        self.policy = policy;
    }

    /// The active auto-compaction policy.
    pub fn compaction_policy(&self) -> &CompactionPolicy {
        &self.policy
    }

    /// Stale stats records accumulated since the last compaction (one
    /// per commit; the final one is live). The [`CompactionPolicy`] age
    /// signal, exposed for inspection tools.
    pub fn stale_stats_records(&self) -> u64 {
        self.stats_records.saturating_sub(1) as u64
    }

    /// All live entries as a portable cache, in deterministic
    /// (fingerprint) order.
    pub fn to_portable(&self) -> PortableCache {
        PortableCache {
            entries: self
                .entries
                .iter()
                .map(|(fp, r)| (*fp, r.clone()))
                .collect(),
            // Verdicts travel on their own channel
            // ([`verdicts_for`](Self::verdicts_for)); the portable view
            // exists for solver-cache absorption, which ignores them.
            verdicts: Vec::new(),
        }
    }

    /// Absorbs every entry into `session`'s cross-session cache with
    /// store provenance, so the hits they serve are reported as
    /// cross-run ([`mvm_symbolic::SessionStats::store_hits`]).
    pub fn absorb_into(&self, session: &SolverSession) {
        if !self.entries.is_empty() {
            session.absorb_from_store(&self.to_portable());
        }
    }

    /// All live subtree-verdict certificates, in load-then-merge order.
    pub fn verdicts(&self) -> &[VerdictRecord] {
        &self.verdicts
    }

    /// The live certificates valid for `scope`, in load-then-merge
    /// order.
    pub fn verdicts_for(&self, scope: u64) -> impl Iterator<Item = &VerdictRecord> {
        self.verdicts.iter().filter(move |r| r.scope == scope)
    }

    /// Merges subtree-verdict certificates, keeping only `(scope,
    /// path)` keys the store does not already hold (certificates for
    /// the same key are exact replicas by construction, so first wins).
    /// Returns how many were new; they are appended on the next
    /// [`commit`](Self::commit).
    pub fn merge_verdicts(&mut self, records: &[VerdictRecord]) -> usize {
        let mut added = 0;
        for r in records {
            if !self.verdict_keys.insert((r.scope, r.path.clone())) {
                continue;
            }
            self.verdicts.push(r.clone());
            self.pending_verdicts.push(r.clone());
            added += 1;
        }
        added
    }

    /// Merges a session's portable export, keeping only fingerprints
    /// the store does not already hold. Returns how many entries were
    /// new; they are appended on the next [`commit`](Self::commit).
    pub fn merge(&mut self, export: &PortableCache) -> usize {
        let mut added = 0;
        for (fp, p) in &export.entries {
            if self.entries.contains_key(fp) {
                continue;
            }
            self.entries.insert(*fp, p.clone());
            self.pending.push((*fp, p.clone()));
            added += 1;
        }
        added
    }

    /// Records absorbed hits served from this store's entries; folded
    /// into the persisted [`StoreStats`] at the next commit.
    pub fn note_hits(&mut self, n: u64) {
        if n > 0 {
            self.stats.absorbed_hits += n;
            self.hits_dirty = true;
        }
    }

    /// Persists pending entries (and updated stats) by appending to the
    /// validated prefix and atomically replacing the file. A no-op when
    /// there is nothing new, and always a no-op on a read-only store.
    pub fn commit(&mut self) -> io::Result<CommitReport> {
        if self.read_only {
            return Ok(CommitReport {
                skipped_read_only: true,
                bytes: self.stats.bytes,
                ..CommitReport::default()
            });
        }
        if self.pending.is_empty() && self.pending_verdicts.is_empty() && !self.hits_dirty {
            return Ok(CommitReport {
                bytes: self.stats.bytes,
                ..CommitReport::default()
            });
        }
        let mut bytes = if self.base.is_empty() {
            self.fresh_prefix()
        } else {
            self.base.clone()
        };
        let appended = self.pending.len();
        let appended_verdicts = self.pending_verdicts.len();
        for (fp, result) in &self.pending {
            let rec = EntryRecord {
                fp: *fp,
                result: result.clone(),
            };
            encode_record(Tag::Entry, &mvm_json::to_string(&rec), &mut bytes);
        }
        for r in &self.pending_verdicts {
            encode_record(Tag::Verdict, &mvm_json::to_string(r), &mut bytes);
        }
        self.base_entry_records += appended;
        self.stats.entries = self.entries.len() as u64;
        self.stats.bytes = bytes.len() as u64;
        self.stats.commits += 1;
        encode_record(Tag::Stats, &mvm_json::to_string(&self.stats), &mut bytes);
        self.write_atomic(&bytes)?;
        self.base = bytes;
        self.stats_records += 1;
        self.pending.clear();
        self.pending_verdicts.clear();
        self.hits_dirty = false;
        self.report.outcome = LoadOutcome::Loaded;
        let stats = self.stats;
        self.recorder.event_with("commit", || {
            vec![
                ("appended".into(), appended.to_string()),
                ("verdicts".into(), appended_verdicts.to_string()),
                ("entries".into(), stats.entries.to_string()),
                ("bytes".into(), stats.bytes.to_string()),
            ]
        });
        // Append-only commits leave reclaimable records behind —
        // superseded entries and stale stats blocks. When the policy's
        // first exceeded trigger fires, reclaim them right away instead
        // of waiting for an operator `compact`.
        let total = self.base_entry_records;
        let garbage = total.saturating_sub(self.entries.len());
        let stale_stats = self.stale_stats_records();
        let reclaimable = garbage as u64 + stale_stats;
        let reason = if self
            .policy
            .superseded_ratio
            .is_some_and(|t| total > 0 && (garbage as f64) / (total as f64) > t)
        {
            Some("superseded_ratio")
        } else if self
            .policy
            .max_bytes
            .is_some_and(|cap| self.stats.bytes > cap && reclaimable > 0)
        {
            Some("max_bytes")
        } else if self
            .policy
            .max_stale_stats
            .is_some_and(|cap| stale_stats > cap)
        {
            Some("max_stale_stats")
        } else {
            None
        };
        if let Some(reason) = reason {
            self.recorder.event_with("compact.auto", || {
                vec![
                    ("reason".into(), reason.to_string()),
                    ("superseded".into(), garbage.to_string()),
                    ("records".into(), total.to_string()),
                    ("stale_stats".into(), stale_stats.to_string()),
                ]
            });
            self.compact()?;
        }
        Ok(CommitReport {
            appended,
            bytes: self.stats.bytes,
            skipped_read_only: false,
        })
    }

    /// Rewrites the store from scratch with one record per live
    /// fingerprint, dropping superseded entries and stale stats blocks.
    pub fn compact(&mut self) -> io::Result<CompactReport> {
        if self.read_only {
            return Ok(CompactReport {
                skipped_read_only: true,
                ..CompactReport::default()
            });
        }
        let bytes_before = self.base.len() as u64;
        let dropped =
            (self.base_entry_records + self.pending.len()).saturating_sub(self.entries.len());
        let mut bytes = self.fresh_prefix();
        for (fp, result) in &self.entries {
            let rec = EntryRecord {
                fp: *fp,
                result: result.clone(),
            };
            encode_record(Tag::Entry, &mvm_json::to_string(&rec), &mut bytes);
        }
        for r in &self.verdicts {
            encode_record(Tag::Verdict, &mvm_json::to_string(r), &mut bytes);
        }
        self.stats.entries = self.entries.len() as u64;
        self.stats.bytes = bytes.len() as u64;
        self.stats.compactions += 1;
        encode_record(Tag::Stats, &mvm_json::to_string(&self.stats), &mut bytes);
        self.write_atomic(&bytes)?;
        self.base = bytes;
        self.base_entry_records = self.entries.len();
        self.stats_records = 1;
        self.pending.clear();
        self.pending_verdicts.clear();
        self.hits_dirty = false;
        self.report.outcome = LoadOutcome::Loaded;
        let bytes_after = self.stats.bytes;
        self.recorder.event_with("compact", || {
            vec![
                ("dropped".into(), dropped.to_string()),
                ("bytes_before".into(), bytes_before.to_string()),
                ("bytes_after".into(), bytes_after.to_string()),
            ]
        });
        Ok(CompactReport {
            dropped,
            bytes_before,
            bytes_after: self.stats.bytes,
            skipped_read_only: false,
        })
    }

    fn fresh_prefix(&self) -> Vec<u8> {
        let mut b = format!("{}\n", magic_line()).into_bytes();
        encode_record(Tag::Header, &mvm_json::to_string(&self.header), &mut b);
        b
    }

    fn write_atomic(&self, bytes: &[u8]) -> io::Result<()> {
        if let Some(parent) = self.path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut tmp_name = self.path.as_os_str().to_os_string();
        tmp_name.push(".tmp");
        let tmp = PathBuf::from(tmp_name);
        {
            use std::io::Write as _;
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(bytes)?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, &self.path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvm_symbolic::{PortableVerdict, UnknownReason};

    fn entry(fp: u128, rank_val: u64) -> (CanonFp, PortableResult) {
        (
            CanonFp(fp),
            PortableResult {
                verdict: PortableVerdict::Sat(vec![(0, rank_val)]),
                assignments: rank_val,
            },
        )
    }

    fn cache(entries: Vec<(CanonFp, PortableResult)>) -> PortableCache {
        PortableCache {
            entries,
            verdicts: Vec::new(),
        }
    }

    fn tmp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("res-store-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn round_trips_entries_across_opens() {
        let path = tmp_path("roundtrip.resstore");
        let _ = std::fs::remove_file(&path);

        let mut s = SolverStore::open(&path, 7);
        assert_eq!(s.load_report().outcome, LoadOutcome::Missing);
        assert_eq!(s.merge(&cache(vec![entry(1, 10), entry(2, 20)])), 2);
        let report = s.commit().unwrap();
        assert_eq!(report.appended, 2);

        let s2 = SolverStore::open(&path, 7);
        assert_eq!(s2.load_report().outcome, LoadOutcome::Loaded);
        assert_eq!(s2.len(), 2);
        assert_eq!(s2.to_portable().entries, s.to_portable().entries);
        assert_eq!(s2.stats().entries, 2);
        assert_eq!(s2.stats().commits, 1);
    }

    #[test]
    fn appends_accumulate_and_merge_dedups() {
        let path = tmp_path("append.resstore");
        let _ = std::fs::remove_file(&path);

        let mut s = SolverStore::open(&path, 7);
        s.merge(&cache(vec![entry(1, 10)]));
        s.commit().unwrap();

        let mut s2 = SolverStore::open(&path, 7);
        // Re-merging a known fingerprint appends nothing.
        assert_eq!(s2.merge(&cache(vec![entry(1, 10), entry(2, 20)])), 1);
        assert_eq!(s2.commit().unwrap().appended, 1);

        let s3 = SolverStore::open(&path, 7);
        assert_eq!(s3.len(), 2);
        assert_eq!(s3.stats().commits, 2);
    }

    #[test]
    fn superseded_entries_load_last_and_compact_away() {
        let path = tmp_path("compact.resstore");
        let _ = std::fs::remove_file(&path);

        let mut s = SolverStore::open(&path, 7);
        s.merge(&cache(vec![entry(1, 10), entry(2, 20)]));
        s.commit().unwrap();
        // Simulate an append-only supersedure (e.g. two processes
        // racing an append): a second record for fp 1.
        s.pending.push(entry(1, 99));
        s.commit().unwrap();

        let mut s2 = SolverStore::open(&path, 7);
        assert_eq!(s2.len(), 2);
        assert_eq!(s2.load_report().superseded, 1);
        // The later record won.
        let p = s2.to_portable();
        let r1 = &p
            .entries
            .iter()
            .find(|(fp, _)| *fp == CanonFp(1))
            .unwrap()
            .1;
        assert_eq!(r1.assignments, 99);

        let before = std::fs::metadata(&path).unwrap().len();
        let report = s2.compact().unwrap();
        assert_eq!(report.dropped, 1);
        let after = std::fs::metadata(&path).unwrap().len();
        assert!(after < before, "compaction must shrink the file");

        let s3 = SolverStore::open(&path, 7);
        assert_eq!(s3.len(), 2);
        assert_eq!(s3.load_report().superseded, 0);
        assert_eq!(s3.stats().compactions, 1);
    }

    #[test]
    fn fingerprint_mismatch_is_cold_and_read_only() {
        let path = tmp_path("fpmismatch.resstore");
        let _ = std::fs::remove_file(&path);

        let mut theirs = SolverStore::open(&path, 1111);
        theirs.merge(&cache(vec![entry(1, 10)]));
        theirs.commit().unwrap();
        let original = std::fs::read(&path).unwrap();

        let mut ours = SolverStore::open(&path, 2222);
        assert_eq!(ours.load_report().outcome, LoadOutcome::FingerprintMismatch);
        assert!(ours.is_empty(), "no entries may leak across programs");
        assert!(ours.read_only());
        ours.merge(&cache(vec![entry(9, 90)]));
        ours.note_hits(3);
        assert!(ours.commit().unwrap().skipped_read_only);
        assert!(ours.compact().unwrap().skipped_read_only);
        assert_eq!(
            std::fs::read(&path).unwrap(),
            original,
            "a mismatched store must never be clobbered"
        );
    }

    #[test]
    fn version_mismatch_is_cold_and_rewritten_on_commit() {
        let path = tmp_path("version.resstore");
        std::fs::write(&path, "RES-STORE 99\njunk that is not a record\n").unwrap();

        let mut s = SolverStore::open(&path, 7);
        assert_eq!(s.load_report().outcome, LoadOutcome::VersionMismatch);
        assert!(s.is_empty());
        s.merge(&cache(vec![entry(1, 10)]));
        s.commit().unwrap();

        let s2 = SolverStore::open(&path, 7);
        assert_eq!(s2.load_report().outcome, LoadOutcome::Loaded);
        assert_eq!(s2.len(), 1);
    }

    #[test]
    fn empty_and_garbage_files_are_cold() {
        let empty = tmp_path("empty.resstore");
        std::fs::write(&empty, "").unwrap();
        let s = SolverStore::open(&empty, 7);
        assert_eq!(s.load_report().outcome, LoadOutcome::Empty);

        let garbage = tmp_path("garbage.resstore");
        std::fs::write(&garbage, "not a store at all\nmore junk\n").unwrap();
        let s = SolverStore::open(&garbage, 7);
        assert_eq!(s.load_report().outcome, LoadOutcome::CorruptHeader);
        assert!(s.is_empty());

        let binary = tmp_path("binary.resstore");
        std::fs::write(&binary, [0xffu8, 0xfe, 0x00, 0x01]).unwrap();
        let s = SolverStore::open(&binary, 7);
        assert_eq!(s.load_report().outcome, LoadOutcome::CorruptHeader);
    }

    #[test]
    fn torn_tail_is_skipped_not_fatal() {
        let path = tmp_path("torn.resstore");
        let _ = std::fs::remove_file(&path);

        let mut s = SolverStore::open(&path, 7);
        s.merge(&cache(vec![entry(1, 10), entry(2, 20)]));
        s.commit().unwrap();

        // Tear the file mid-way through the last record.
        let raw = std::fs::read(&path).unwrap();
        std::fs::write(&path, &raw[..raw.len() - 9]).unwrap();

        let s2 = SolverStore::open(&path, 7);
        assert_eq!(s2.load_report().outcome, LoadOutcome::Loaded);
        assert!(s2.len() >= 1, "records before the tear survive");
        assert!(s2.load_report().records_skipped >= 1);

        // A commit over the torn store drops the tail and re-validates.
        let mut s2 = s2;
        s2.merge(&cache(vec![entry(3, 30)]));
        s2.commit().unwrap();
        let s3 = SolverStore::open(&path, 7);
        assert_eq!(s3.load_report().records_skipped, 0);
        assert!(s3.len() >= 2);
    }

    #[test]
    fn corrupted_checksum_drops_the_tail() {
        let path = tmp_path("badcrc.resstore");
        let _ = std::fs::remove_file(&path);

        let mut s = SolverStore::open(&path, 7);
        s.merge(&cache(vec![entry(1, 10), entry(2, 20)]));
        s.commit().unwrap();

        // Flip a byte inside the *second* entry record's payload.
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        let mut tampered: Vec<String> = lines.iter().map(|l| l.to_string()).collect();
        let victim = 3; // magic, header, entry0, entry1, stats
        tampered[victim] = tampered[victim].replace("\"assignments\":20", "\"assignments\":21");
        std::fs::write(&path, tampered.join("\n") + "\n").unwrap();

        let s2 = SolverStore::open(&path, 7);
        assert_eq!(s2.load_report().outcome, LoadOutcome::Loaded);
        assert_eq!(s2.len(), 1, "only the record before the corruption");
        assert!(s2.load_report().records_skipped >= 1);
    }

    #[test]
    fn hit_counters_persist_across_commits() {
        let path = tmp_path("hits.resstore");
        let _ = std::fs::remove_file(&path);

        let mut s = SolverStore::open(&path, 7);
        s.merge(&cache(vec![entry(1, 10)]));
        s.commit().unwrap();

        let mut s2 = SolverStore::open(&path, 7);
        s2.note_hits(5);
        s2.commit().unwrap();
        let mut s3 = SolverStore::open(&path, 7);
        assert_eq!(s3.stats().absorbed_hits, 5);
        s3.note_hits(2);
        s3.commit().unwrap();
        assert_eq!(SolverStore::open(&path, 7).stats().absorbed_hits, 7);
    }

    fn verdict(scope: u64, worker: u32, path: Vec<u32>) -> VerdictRecord {
        use mvm_symbolic::{SubtreeStats, VerdictKind};
        VerdictRecord {
            scope,
            worker,
            path,
            kind: VerdictKind::Exhausted,
            stats: SubtreeStats {
                nodes: 4,
                hypotheses: 8,
                ..SubtreeStats::default()
            },
        }
    }

    #[test]
    fn verdict_records_round_trip_and_dedup() {
        let path = tmp_path("verdicts.resstore");
        let _ = std::fs::remove_file(&path);

        let mut s = SolverStore::open(&path, 7);
        s.merge(&cache(vec![entry(1, 10)]));
        assert_eq!(
            s.merge_verdicts(&[
                verdict(0xaa, 0, vec![0]),
                verdict(0xaa, 1, vec![1, 2]),
                verdict(0xbb, 2, vec![0]),
            ]),
            3
        );
        // Same (scope, path) again: a replica, not a new certificate.
        assert_eq!(s.merge_verdicts(&[verdict(0xaa, 3, vec![0])]), 0);
        s.commit().unwrap();

        let s2 = SolverStore::open(&path, 7);
        assert_eq!(s2.load_report().verdicts_loaded, 3);
        assert_eq!(s2.verdicts().len(), 3);
        let in_scope: Vec<_> = s2.verdicts_for(0xaa).collect();
        assert_eq!(in_scope.len(), 2);
        assert_eq!(in_scope[0].worker, 0, "first certificate won");
        assert_eq!(s2.verdicts_for(0xcc).count(), 0);

        // Compaction preserves certificates.
        let mut s2 = s2;
        s2.compact().unwrap();
        let s3 = SolverStore::open(&path, 7);
        assert_eq!(s3.load_report().verdicts_loaded, 3);
    }

    #[test]
    fn verdict_free_commits_write_no_v_records() {
        let path = tmp_path("noverdicts.resstore");
        let _ = std::fs::remove_file(&path);
        let mut s = SolverStore::open(&path, 7);
        s.merge(&cache(vec![entry(1, 10)]));
        s.commit().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(
            !text.lines().any(|l| l.starts_with("V ")),
            "a verdict-free store must stay byte-compatible with v1 readers' fixtures"
        );
    }

    #[test]
    fn commit_auto_compacts_past_the_supersedure_threshold() {
        let path = tmp_path("autocompact.resstore");
        let _ = std::fs::remove_file(&path);

        let mut s = SolverStore::open(&path, 7);
        s.merge(&cache(vec![entry(1, 10)]));
        s.commit().unwrap();
        // Two superseding re-appends for fp 1: 3 records, 1 live,
        // ratio 2/3 > 0.5.
        s.pending.push(entry(1, 20));
        s.pending.push(entry(1, 30));
        s.commit().unwrap();

        let s2 = SolverStore::open(&path, 7);
        assert_eq!(s2.stats().compactions, 1, "commit compacted itself");
        assert_eq!(s2.load_report().superseded, 0);
        assert_eq!(s2.len(), 1);

        // Below the threshold (or disabled) nothing happens.
        let mut s3 = SolverStore::open(&path, 7);
        s3.set_auto_compact(None);
        s3.pending.push(entry(1, 40));
        s3.pending.push(entry(1, 50));
        s3.pending.push(entry(1, 60));
        s3.commit().unwrap();
        assert_eq!(s3.stats().compactions, 1, "disabled: no new compaction");
    }

    #[test]
    fn stale_stats_age_trigger_compacts_on_commit() {
        let path = tmp_path("agepolicy.resstore");
        let _ = std::fs::remove_file(&path);

        let mut s = SolverStore::open(&path, 7);
        s.set_compaction_policy(CompactionPolicy {
            superseded_ratio: None,
            max_bytes: None,
            max_stale_stats: Some(2),
        });
        for (i, e) in [entry(1, 10), entry(2, 20), entry(3, 30)]
            .into_iter()
            .enumerate()
        {
            s.merge(&cache(vec![e]));
            s.commit().unwrap();
            assert_eq!(
                s.stale_stats_records(),
                i as u64,
                "one stale S per prior commit"
            );
        }
        assert_eq!(
            s.stats().compactions,
            0,
            "stale = 2 is within max_stale_stats = 2"
        );
        s.merge(&cache(vec![entry(4, 40)]));
        s.commit().unwrap();
        assert_eq!(
            s.stats().compactions,
            1,
            "stale = 3 > 2 fires the age trigger"
        );
        assert_eq!(s.stale_stats_records(), 0, "compaction resets the age");

        let s2 = SolverStore::open(&path, 7);
        assert_eq!(s2.len(), 4);
        assert_eq!(s2.stale_stats_records(), 0);
    }

    #[test]
    fn size_trigger_fires_only_when_something_is_reclaimable() {
        let path = tmp_path("sizepolicy.resstore");
        let _ = std::fs::remove_file(&path);

        let mut s = SolverStore::open(&path, 7);
        s.set_compaction_policy(CompactionPolicy {
            superseded_ratio: None,
            max_bytes: Some(1),
            max_stale_stats: None,
        });
        s.merge(&cache(vec![entry(1, 10)]));
        s.commit().unwrap();
        assert_eq!(
            s.stats().compactions,
            0,
            "over the byte cap but fully dense: compacting would reclaim nothing"
        );
        s.merge(&cache(vec![entry(2, 20)]));
        s.commit().unwrap();
        assert_eq!(
            s.stats().compactions,
            1,
            "a stale stats record makes the oversized store reclaimable"
        );
    }

    #[test]
    fn unknown_verdicts_round_trip_too() {
        let path = tmp_path("unknown.resstore");
        let _ = std::fs::remove_file(&path);

        let mut s = SolverStore::open(&path, 7);
        s.merge(&cache(vec![(
            CanonFp(5),
            PortableResult {
                verdict: PortableVerdict::Unknown(UnknownReason::Incomplete),
                assignments: 0,
            },
        )]));
        s.commit().unwrap();
        let s2 = SolverStore::open(&path, 7);
        assert_eq!(s2.to_portable().entries, s.to_portable().entries);
    }
}
