//! # res-store — persistent cross-run solver-result store
//!
//! The paper's corpus use cases (§3.1 bug-report triaging, §3.2
//! hardware-error filtering) run RES over many coredumps of the *same*
//! program, where most solver work repeats between dumps. Within one
//! process that repetition is absorbed by
//! [`SolverSession`](mvm_symbolic::SolverSession)'s memo and by the
//! α-canonical [`PortableCache`](mvm_symbolic::PortableCache) the
//! parallel workers exchange — but both evaporate when the process
//! exits. This crate makes the portable cache durable: a crash-safe,
//! append-only on-disk store of renaming-equivariant solver results
//! that any later run over the same program can absorb before
//! searching.
//!
//! ## Why absorbing a store cannot change results
//!
//! Only *renaming-equivariant* verdicts are ever exported (see
//! `mvm-symbolic::fingerprint`): replaying one through the rank maps
//! reproduces byte-for-byte what a fresh solve would have returned, and
//! the absorbing session charges the entry's original enumeration cost
//! to its accounting, so solver-budget cuts trigger at exactly the same
//! query. A warm run therefore synthesizes byte-identical suffixes to a
//! cold run; the store only changes where the solver time is spent.
//! `scripts/ci.sh` gates this cross-run determinism against the golden
//! suffix fixture.
//!
//! ## File format (version 1)
//!
//! A store is a UTF-8 text file of newline-terminated records:
//!
//! ```text
//! RES-STORE 1
//! H <len> <fnv64-hex> <header-json>
//! E <len> <fnv64-hex> <entry-json>
//! ...
//! S <len> <fnv64-hex> <stats-json>
//! ```
//!
//! * The magic line names the format and its version; any other first
//!   line refuses the whole file.
//! * Every record is length-prefixed (`len` = payload bytes) and
//!   checksummed (FNV-1a 64 of the payload), so a torn or corrupted
//!   tail is detected and *skipped* — earlier records stay usable, and
//!   a reader never fails hard on a damaged store (it degrades toward a
//!   cold start).
//! * The `H` header carries the format version and the fingerprint of
//!   the program whose results the store holds; a reader refuses (cold
//!   start, file left untouched) when the fingerprint does not match
//!   its own program.
//! * `E` entries map an α-canonical constraint fingerprint
//!   ([`CanonFp`](mvm_symbolic::CanonFp)) to a
//!   [`PortableResult`](mvm_symbolic::PortableResult). Appends never
//!   rewrite old entries; a re-appended fingerprint *supersedes* the
//!   earlier record and [`SolverStore::compact`] drops the dead ones.
//! * `S` stats records are the observability block ([`StoreStats`]);
//!   append-only like everything else, last one wins.
//! * `V` records are subtree-verdict certificates
//!   ([`mvm_symbolic::VerdictRecord`]): exhaustion/artifact verdicts
//!   keyed by canonical enumeration path and scoped to one
//!   (dump, search-configuration) fingerprint, which let a later
//!   replay over the same scope skip certified-exhausted subtrees
//!   outright (see `res-core`'s speculative yield). They ride the same
//!   framing as every other record; builds that predate them see an
//!   unknown uppercase tag and skip them, so no format-version bump was
//!   needed and old stores (with no `V` records) simply prune nothing.
//! * Records with an unknown tag but valid framing are skipped, so
//!   later format minor-extensions stay readable.
//!
//! Commits are atomic: the new content is written to a sibling
//! temporary file and `rename`d over the store, so a crash mid-commit
//! never corrupts previously-committed records. After a commit the
//! store also compacts itself per a [`CompactionPolicy`] — supersedure
//! ratio, byte ceiling, and/or stale-stats age
//! ([`SolverStore::set_compaction_policy`]).
//!
//! The record framing (`encode_record`/`decode_record`) is exported for
//! reuse: `res-serve` frames its wire requests/responses with the same
//! length-prefixed checksummed convention under reserved tags, so the
//! daemon's protocol inherits the store's torn/corrupt-detection for
//! free.

mod format;
mod store;

pub use format::{decode_record, encode_record, fnv64, Header, Tag, FORMAT_VERSION, MAGIC};
pub use store::{
    program_fingerprint, CommitReport, CompactReport, CompactionPolicy, LoadOutcome, LoadReport,
    SolverStore, StoreStats, DEFAULT_AUTO_COMPACT_RATIO,
};
