//! # Synthetic buggy workloads
//!
//! `res-workloads` provides the programs the evaluation runs on: one
//! generator per bug class (the three §4 concurrency bugs, the Figure 1
//! overflow, memory-safety bugs, semantic bugs, the §6 hash-chain
//! construct), each with a **prefix-length knob** — a configurable churn
//! loop executed before the buggy region. The knob is what makes
//! executions "arbitrarily long" (the title claim, experiment E3): the
//! bug's distance from the start of the execution grows without bound
//! while its distance from the failure stays fixed.
//!
//! [`corpus`] turns the generators into labeled failure corpora for the
//! triaging and hardware-error experiments.

//! [`gen`] scales the same idea to *distributions*: a seeded generator
//! (`res-gen`) emits hundreds of distinct labeled programs per class so
//! the triage/exploitability/hardware experiments report rate
//! distributions instead of point samples.

pub mod corpus;
pub mod gen;
pub mod progs;

pub use corpus::{generate_corpus, run_to_failure, CorpusSpec, FailureReport};
pub use gen::{
    collect_failures, corpus_specs, generate, hardware_variant, GenClass, GenFailure, GenSpec,
    GeneratedProgram, GroundTruth,
};
pub use progs::{build, build_fixed, BugKind, WorkloadParams};
