//! # Synthetic buggy workloads
//!
//! `res-workloads` provides the programs the evaluation runs on: one
//! generator per bug class (the three §4 concurrency bugs, the Figure 1
//! overflow, memory-safety bugs, semantic bugs, the §6 hash-chain
//! construct), each with a **prefix-length knob** — a configurable churn
//! loop executed before the buggy region. The knob is what makes
//! executions "arbitrarily long" (the title claim, experiment E3): the
//! bug's distance from the start of the execution grows without bound
//! while its distance from the failure stays fixed.
//!
//! [`corpus`] turns the generators into labeled failure corpora for the
//! triaging and hardware-error experiments.

pub mod corpus;
pub mod progs;

pub use corpus::{generate_corpus, run_to_failure, CorpusSpec, FailureReport};
pub use progs::{build, BugKind, WorkloadParams};
