//! `res-gen` — the seeded buggy-program generator.
//!
//! The handwritten programs in [`progs`](crate::progs) make the §3
//! claims *demonstrable*; this module makes them *statistical*. Given a
//! [`GenSpec`] it deterministically emits a well-formed MicroVM program
//! containing exactly one planted bug of a known [`GenClass`], plus the
//! labeled [`GroundTruth`] (class, root-cause site, and a schedule seed
//! under which the bug manifests). Corpus-scale experiments then run
//! E5/E6/E7 over hundreds of *distinct* generated programs instead of a
//! dozen fixed ones.
//!
//! # Determinism contract
//!
//! `generate` is a pure function of its `GenSpec`: same spec → byte-
//! identical assembly source, byte-identical assembled [`Program`], and
//! the same `schedule_hint` (pinned by `tests/gen_golden.rs`). All
//! randomness flows from one `mvm-prng` stream seeded by
//! `SplitMix64::mix(spec.seed, …)`; no ambient entropy (time, ASLR,
//! thread timing) is consulted. The surrounding *churn* — prefix-loop
//! length, scratch arithmetic, identifier names, constants — varies per
//! seed so that every generated program has a distinct fingerprint and
//! non-trivial code around the planted bug, while the bug template
//! itself stays small enough for the engine's default budgets.
//!
//! # Class taxonomy
//!
//! | class | manifests | fault class |
//! |---|---|---|
//! | `DataRace` | racy schedule | `assert-failed` (lost update) |
//! | `UseAfterFree` | always | `use-after-free` (1–3 input-selected deref paths) |
//! | `DoubleFree` | always | `double-free` |
//! | `Deadlock` | always | `deadlock` (join/lock cycle) |
//! | `LockInversion` | racy schedule | `deadlock` (ABBA) |
//! | `DivByZero` | always | `div-by-zero` |
//! | `AssertViolation` | always | `assert-failed` |
//! | `TaintedOverflow` | most input seeds | `heap-overflow`/`invalid-access` |
//! | `LocalOverflow` | always | `heap-overflow`/`invalid-access` |
//!
//! Hardware-corruption variants are produced post hoc from any
//! generated failure via [`hardware_variant`], which reuses the
//! `mvm-core` injectors at consequential sites (§3.2).

use mvm_core::{corrupt_consequential, Coredump, HwFlavor, InjectionReport, Minidump};
use mvm_isa::{asm::assemble, Program};
use mvm_prng::{SplitMix64, Xoshiro256StarStar};

use crate::corpus::run_to_failure;

/// The generator's bug classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GenClass {
    /// Unsynchronized counter increments; a final assertion over the
    /// expected total fails under a racy schedule.
    DataRace,
    /// Free then read through a published pointer; the deref path is
    /// selected by an (environment) input, so one bug manifests with
    /// several distinct call stacks — the §3.1 splitting phenomenon.
    UseAfterFree,
    /// The same block freed on two paths.
    DoubleFree,
    /// A join/lock cycle: the spawner holds the mutex its child needs
    /// and joins the child — deadlocks under every schedule.
    Deadlock,
    /// Two workers acquire two mutexes in opposite orders — deadlocks
    /// only under an interleaved schedule.
    LockInversion,
    /// A counter is drained to zero and then divided by.
    DivByZero,
    /// A parity invariant over a config cell is violated.
    AssertViolation,
    /// Heap store indexed by attacker-controlled (network) input.
    TaintedOverflow,
    /// Heap store indexed by a locally computed out-of-range value.
    LocalOverflow,
}

impl GenClass {
    /// Every class, for corpus sweeps.
    pub const ALL: [GenClass; 9] = [
        GenClass::DataRace,
        GenClass::UseAfterFree,
        GenClass::DoubleFree,
        GenClass::Deadlock,
        GenClass::LockInversion,
        GenClass::DivByZero,
        GenClass::AssertViolation,
        GenClass::TaintedOverflow,
        GenClass::LocalOverflow,
    ];

    /// A stable name for labels and reports.
    pub fn name(self) -> &'static str {
        match self {
            GenClass::DataRace => "data-race",
            GenClass::UseAfterFree => "use-after-free",
            GenClass::DoubleFree => "double-free",
            GenClass::Deadlock => "deadlock",
            GenClass::LockInversion => "lock-inversion",
            GenClass::DivByZero => "div-by-zero",
            GenClass::AssertViolation => "assert-violation",
            GenClass::TaintedOverflow => "tainted-overflow",
            GenClass::LocalOverflow => "local-overflow",
        }
    }

    /// `true` when the failing execution involves multiple threads.
    pub fn is_concurrent(self) -> bool {
        matches!(
            self,
            GenClass::DataRace | GenClass::Deadlock | GenClass::LockInversion
        )
    }

    /// The machine fault classes this bug is allowed to die with (the
    /// ground-truth check the property tests enforce). Overflow indexes
    /// can land in a redzone (`heap-overflow`) or past every mapping
    /// (`invalid-access`); every other class has exactly one outcome.
    pub fn expected_fault_classes(self) -> &'static [&'static str] {
        match self {
            GenClass::DataRace | GenClass::AssertViolation => &["assert-failed"],
            GenClass::UseAfterFree => &["use-after-free"],
            GenClass::DoubleFree => &["double-free"],
            GenClass::Deadlock | GenClass::LockInversion => &["deadlock"],
            GenClass::DivByZero => &["div-by-zero"],
            GenClass::TaintedOverflow | GenClass::LocalOverflow => {
                &["heap-overflow", "invalid-access"]
            }
        }
    }

    /// A per-class salt so the same numeric seed yields unrelated
    /// programs across classes.
    fn salt(self) -> u64 {
        match self {
            GenClass::DataRace => 0x7ace,
            GenClass::UseAfterFree => 0x0af0,
            GenClass::DoubleFree => 0xdbf0,
            GenClass::Deadlock => 0xdead,
            GenClass::LockInversion => 0x10c1,
            GenClass::DivByZero => 0xd1f0,
            GenClass::AssertViolation => 0xa55e,
            GenClass::TaintedOverflow => 0x7a1e,
            GenClass::LocalOverflow => 0x10ca,
        }
    }
}

/// What to generate. `generate` is a pure function of this value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GenSpec {
    /// Master seed: drives every random choice in the template.
    pub seed: u64,
    /// The planted bug class.
    pub class: GenClass,
    /// Churn scale: 0 = minimal prefix, larger = longer prefix loop and
    /// more scratch work (the "arbitrarily long" knob, like
    /// [`WorkloadParams::prefix_iters`](crate::WorkloadParams)).
    pub size: u32,
}

impl GenSpec {
    /// A spec with the default (small) size.
    pub fn new(class: GenClass, seed: u64) -> GenSpec {
        GenSpec {
            seed,
            class,
            size: 1,
        }
    }
}

/// The generator's label for the planted bug.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroundTruth {
    /// The planted class.
    pub class: GenClass,
    /// Root-cause site as `func:block` — the block containing the
    /// planted defect (for `UseAfterFree` the *free*, not the deref).
    pub site: String,
    /// A machine seed (for [`run_to_failure`]) under which the bug
    /// manifests with the expected fault class.
    pub schedule_hint: u64,
}

/// One generated program with its label.
#[derive(Debug, Clone)]
pub struct GeneratedProgram {
    /// The spec that produced it.
    pub spec: GenSpec,
    /// The assembly source (diagnostics; the program is its assembly).
    pub source: String,
    /// The assembled program.
    pub program: Program,
    /// The label.
    pub truth: GroundTruth,
}

/// One labeled failure of a generated program.
#[derive(Debug, Clone)]
pub struct GenFailure {
    /// The machine seed that produced this failure.
    pub seed: u64,
    /// The fault class the machine reported.
    pub fault_class: &'static str,
    /// The captured coredump.
    pub dump: Coredump,
    /// The WER-style minidump subset.
    pub minidump: Minidump,
}

/// How many schedule seeds to scan for a manifestation before rerolling
/// the template (concurrency bugs do not manifest under every
/// schedule; the deterministic classes hit the first seed).
const HINT_SCAN: u64 = 600;
/// Template rerolls before giving up (a reroll redraws every random
/// choice, so repeated failure indicates a template bug, not bad luck).
const MAX_REROLLS: u32 = 8;

/// Derives the `j`-th candidate machine seed for `spec`. Shared by hint
/// discovery and [`collect_failures`] so the hint is always the first
/// seed the scan visits.
fn machine_seed(spec: GenSpec, j: u64) -> u64 {
    SplitMix64::mix(spec.seed ^ spec.class.salt().rotate_left(32), j)
}

/// Generates the program for `spec`.
///
/// # Panics
///
/// Panics on internal template errors (a template that fails to
/// assemble or to manifest its bug within the reroll budget) — these
/// are generator bugs, deterministic in the spec, and caught by the
/// property tests over many specs.
pub fn generate(spec: GenSpec) -> GeneratedProgram {
    let mut rng = Xoshiro256StarStar::new(SplitMix64::mix(
        spec.seed ^ spec.class.salt(),
        0x9e57 + spec.size as u64,
    ));
    for _reroll in 0..MAX_REROLLS {
        let (source, site) = render_template(spec, &mut rng);
        let program = assemble(&source).unwrap_or_else(|e| {
            panic!(
                "generated {:?} program failed to assemble: {e}\n{source}",
                spec.class
            )
        });
        // Hint discovery: the first scanned seed whose failure carries
        // the expected fault class becomes the schedule hint.
        let expected = spec.class.expected_fault_classes();
        for j in 0..HINT_SCAN {
            let seed = machine_seed(spec, j);
            let Some(m) = run_to_failure(&program, seed) else {
                continue;
            };
            let dump = Coredump::capture(&m);
            if expected.contains(&dump.fault.class()) {
                return GeneratedProgram {
                    spec,
                    source,
                    program,
                    truth: GroundTruth {
                        class: spec.class,
                        site,
                        schedule_hint: seed,
                    },
                };
            }
        }
        // Reroll: the rng stream continues, so the next template is a
        // fresh (but still spec-deterministic) draw.
    }
    panic!("generator exhausted {MAX_REROLLS} rerolls without a manifestation for {spec:?}");
}

/// Collects the first `n` labeled failures of a generated program,
/// scanning the same deterministic seed sequence hint discovery used
/// (so `failures[0].seed == truth.schedule_hint`). Failures with an
/// unexpected fault class are skipped; the scan is bounded.
///
/// # Panics
///
/// Panics if fewer than `n` manifestations exist in the scan bound.
pub fn collect_failures(gp: &GeneratedProgram, n: usize) -> Vec<GenFailure> {
    let expected = gp.spec.class.expected_fault_classes();
    let mut out = Vec::with_capacity(n);
    let bound = HINT_SCAN + n as u64 * 200;
    for j in 0..bound {
        if out.len() >= n {
            break;
        }
        let seed = machine_seed(gp.spec, j);
        let Some(m) = run_to_failure(&gp.program, seed) else {
            continue;
        };
        let dump = Coredump::capture(&m);
        let class = dump.fault.class();
        if !expected.contains(&class) {
            continue;
        }
        let minidump = Minidump::from_coredump(&dump);
        out.push(GenFailure {
            seed,
            fault_class: class,
            dump,
            minidump,
        });
    }
    assert!(
        out.len() >= n,
        "only {} of {n} requested failures manifested for {:?}",
        out.len(),
        gp.spec
    );
    out
}

/// A §3.2 hardware-corruption variant of a generated failure: the dump
/// is corrupted post hoc at a consequential site, exactly how the
/// labeled-corpus hardware filter (E7) manufactures its positives.
pub fn hardware_variant(
    gp: &GeneratedProgram,
    failure: &GenFailure,
    flavor: HwFlavor,
) -> (Coredump, Option<InjectionReport>) {
    let mut dump = failure.dump.clone();
    let report = corrupt_consequential(&gp.program, &mut dump, failure.seed, flavor);
    (dump, report)
}

/// Round-robins `classes` over `programs` slots, deriving a distinct
/// per-program seed from `master_seed` — the corpus-scale experiments'
/// work list.
pub fn corpus_specs(
    classes: &[GenClass],
    programs: usize,
    master_seed: u64,
    size: u32,
) -> Vec<GenSpec> {
    assert!(!classes.is_empty(), "corpus needs at least one class");
    (0..programs)
        .map(|i| GenSpec {
            seed: SplitMix64::mix(master_seed, i as u64),
            class: classes[i % classes.len()],
            size,
        })
        .collect()
}

// ---------------------------------------------------------------------
// Template rendering.

/// Renders the randomized assembly for `spec`, returning the source and
/// the ground-truth site (`func:block`). Consumes draws from `rng`.
fn render_template(spec: GenSpec, rng: &mut Xoshiro256StarStar) -> (String, String) {
    let churn = Churn::draw(spec.size, rng);
    let (decls, body, site_block) = match spec.class {
        GenClass::DataRace => data_race(rng),
        GenClass::UseAfterFree => use_after_free(rng),
        GenClass::DoubleFree => double_free(rng),
        GenClass::Deadlock => deadlock(rng),
        GenClass::LockInversion => lock_inversion(rng),
        GenClass::DivByZero => div_by_zero(rng),
        GenClass::AssertViolation => assert_violation(rng),
        GenClass::TaintedOverflow => overflow(rng, true),
        GenClass::LocalOverflow => overflow(rng, false),
    };
    let source = format!(
        "{decls}{prefix}{body}            }}\n",
        prefix = churn.prefix()
    );
    (source, format!("main:{site_block}"))
}

/// A short random identifier suffix (hex), so generated programs have
/// distinct symbol tables (and therefore distinct fingerprints) even
/// when the same template shape is drawn.
fn tag(rng: &mut Xoshiro256StarStar) -> String {
    format!("{:04x}", rng.next_below(0x1_0000))
}

/// The randomized churn prefix: like `progs::prefix`, `main` runs a
/// scratch loop before entering the buggy region, but iteration count,
/// arithmetic, and names vary per draw.
struct Churn {
    scratch: String,
    iters: u64,
    ops: Vec<String>,
}

impl Churn {
    fn draw(size: u32, rng: &mut Xoshiro256StarStar) -> Churn {
        let scratch = format!("scr_{}", tag(rng));
        let lo = 2 + 4 * size as u64;
        let hi = 6 + 12 * size as u64;
        let iters = rng.next_in(lo, hi);
        let nops = rng.next_in(2, 4);
        // Only ops the suffix solver back-infers exactly (invertible
        // over u64): non-invertible ops like `or` compose into chains
        // the engine over-approximates, and the replay check would then
        // reject every candidate suffix that starts inside the loop.
        let ops = (0..nops)
            .map(|_| match rng.next_below(5) {
                0 => "add r23, r23, r20".to_string(),
                1 => format!("xor r23, r23, {}", rng.next_in(1, 255)),
                2 => format!("add r23, r23, {}", rng.next_in(1, 99)),
                3 => format!("sub r23, r23, {}", rng.next_in(1, 99)),
                _ => format!("mul r23, r23, {}", 2 * rng.next_in(1, 31) + 1),
            })
            .collect();
        Churn {
            scratch,
            iters,
            ops,
        }
    }

    fn prefix(&self) -> String {
        let ops: String = self
            .ops
            .iter()
            .map(|o| format!("                {o}\n"))
            .collect();
        format!(
            r#"            global {scratch} 8
            func main() {{
            entry:
                mov r20, {iters}
                addr r21, {scratch}
                jmp churn
            churn:
                eq r22, r20, 0
                br r22, bug_entry, churn_body
            churn_body:
                load r23, [r21]
{ops}                store r23, [r21]
                sub r20, r20, 1
                jmp churn
"#,
            scratch = self.scratch,
            iters = self.iters,
        )
    }
}

/// Lost-update data race: two workers increment a shared counter
/// without a lock; the final assertion expects the race-free total.
fn data_race(rng: &mut Xoshiro256StarStar) -> (String, String, &'static str) {
    let cnt = format!("cnt_{}", tag(rng));
    let exp = format!("exp_{}", tag(rng));
    let w = format!("bump_{}", tag(rng));
    let per = rng.next_in(6, 18);
    let decls = format!(
        r#"            global {cnt} 8
            global {exp} 8 = {total}
            func {w}(1) {{
            entry:
                mov r2, 0
                jmp loop
            loop:
                ltu r3, r2, {per}
                br r3, body, done
            body:
                load r6, [r0]
                add r6, r6, 1
                store r6, [r0]
                add r2, r2, 1
                jmp loop
            done:
                halt
            }}
"#,
        total = 2 * per,
    );
    let body = format!(
        r#"            bug_entry:
                addr r0, {cnt}
                spawn r1, {w}, r0
                spawn r2, {w}, r0
                join r1
                join r2
                jmp check
            check:
                load r3, [r0]
                addr r4, {exp}
                load r5, [r4]
                eq r6, r3, r5
                assert r6, "increments lost to a data race"
                halt
"#
    );
    (decls, body, "check")
}

/// Use-after-free with 1–3 input-selected deref helpers: the free (the
/// root cause) is one fixed site, the faulting deref is one of several
/// call stacks — WER splits, root-cause bucketing does not.
fn use_after_free(rng: &mut Xoshiro256StarStar) -> (String, String, &'static str) {
    let ptr = format!("ptr_{}", tag(rng));
    let helper = format!("deref_{}", tag(rng));
    let slots = rng.next_in(3, 4);
    let v = rng.next_in(1, 250);
    let paths = 1 + rng.next_below(3); // 1..=3 deref paths
    let mut decls = format!("            global {ptr} 8\n");
    for j in 0..paths {
        // Each path's helper body is *distinct* (different slot, extra
        // arithmetic) — identical duplicate functions would defeat the
        // engine's path discrimination, and real split-stack bugs
        // manifest through genuinely different code anyway.
        let off = 8 * (j % slots);
        let c = rng.next_in(1, 99);
        decls.push_str(&format!(
            r#"            func {helper}{j}(1) {{
            entry:
                load r1, [r0]
                load r2, [r1+{off}]
                add r2, r2, {c}
                ret r2
            }}
"#
        ));
    }
    let mut body = format!(
        r#"            bug_entry:
                alloc r1, {size}
                store {v}, [r1]
                addr r0, {ptr}
                store r1, [r0]
                free r1
                jmp pick
"#,
        size = 8 * slots,
    );
    match paths {
        1 => body.push_str(&format!(
            r#"            pick:
                call r7 = {helper}0(r0), done0
            done0:
                halt
"#
        )),
        2 => body.push_str(&format!(
            r#"            pick:
                input r3, env
                remu r4, r3, 2
                br r4, via0, via1
            via0:
                call r7 = {helper}0(r0), done0
            done0:
                halt
            via1:
                call r7 = {helper}1(r0), done1
            done1:
                halt
"#
        )),
        _ => body.push_str(&format!(
            r#"            pick:
                input r3, env
                remu r4, r3, 3
                eq r5, r4, 0
                br r5, via0, pick2
            pick2:
                eq r6, r4, 1
                br r6, via1, via2
            via0:
                call r7 = {helper}0(r0), done0
            done0:
                halt
            via1:
                call r7 = {helper}1(r0), done1
            done1:
                halt
            via2:
                call r7 = {helper}2(r0), done2
            done2:
                halt
"#
        )),
    }
    (decls, body, "bug_entry")
}

/// Double free with a little decoy work between the two frees.
fn double_free(rng: &mut Xoshiro256StarStar) -> (String, String, &'static str) {
    let size = 8 * rng.next_in(1, 4);
    let v = rng.next_in(1, 250);
    let c = rng.next_in(1, 99);
    let body = format!(
        r#"            bug_entry:
                alloc r0, {size}
                store {v}, [r0]
                free r0
                jmp again
            again:
                mov r2, {c}
                add r2, r2, 1
                free r0
                halt
"#
    );
    (String::new(), body, "again")
}

/// Join/lock cycle: main holds the mutex its child needs, then joins
/// the child. Every schedule ends with both threads blocked.
fn deadlock(rng: &mut Xoshiro256StarStar) -> (String, String, &'static str) {
    let m = format!("mtx_{}", tag(rng));
    let w = format!("grab_{}", tag(rng));
    let decls = format!(
        r#"            global {m} 8
            func {w}(1) {{
            entry:
                lock r0
                unlock r0
                halt
            }}
"#
    );
    let body = format!(
        r#"            bug_entry:
                addr r1, {m}
                lock r1
                spawn r2, {w}, r1
                join r2
                unlock r1
                halt
"#
    );
    (decls, body, "bug_entry")
}

/// ABBA lock inversion: main and a worker acquire two mutexes in
/// opposite orders; only an interleaved schedule deadlocks.
fn lock_inversion(rng: &mut Xoshiro256StarStar) -> (String, String, &'static str) {
    let a = format!("mtx_a_{}", tag(rng));
    let b = format!("mtx_b_{}", tag(rng));
    let w = format!("inv_{}", tag(rng));
    let decls = format!(
        r#"            global {a} 8
            global {b} 8
            func {w}(1) {{
            entry:
                addr r1, {b}
                lock r1
                addr r2, {a}
                lock r2
                unlock r2
                unlock r1
                halt
            }}
"#
    );
    let body = format!(
        r#"            bug_entry:
                addr r1, {a}
                lock r1
                spawn r3, {w}, 0
                addr r2, {b}
                lock r2
                unlock r2
                unlock r1
                join r3
                halt
"#
    );
    (decls, body, "bug_entry")
}

/// A counter drained to zero, then divided by.
fn div_by_zero(rng: &mut Xoshiro256StarStar) -> (String, String, &'static str) {
    let q = format!("quota_{}", tag(rng));
    let k = rng.next_in(1, 9);
    let n = rng.next_in(100, 5000);
    let decls = format!("            global {q} 8 = {k}\n");
    let body = format!(
        r#"            bug_entry:
                addr r0, {q}
                load r1, [r0]
                sub r1, r1, {k}
                store r1, [r0]
                jmp divide
            divide:
                load r2, [r0]
                divu r3, {n}, r2
                halt
"#
    );
    (decls, body, "divide")
}

/// A parity invariant the config value violates (the random arithmetic
/// between load and check preserves oddness).
fn assert_violation(rng: &mut Xoshiro256StarStar) -> (String, String, &'static str) {
    let cfg = format!("cfg_{}", tag(rng));
    let odd = 2 * rng.next_in(0, 100) + 1;
    let even = 2 * rng.next_in(1, 50);
    let decls = format!("            global {cfg} 8 = {odd}\n");
    let body = format!(
        r#"            bug_entry:
                addr r0, {cfg}
                load r1, [r0]
                add r1, r1, {even}
                jmp verify
            verify:
                remu r2, r1, 2
                eq r3, r2, 0
                assert r3, "config parity invariant violated"
                halt
"#
    );
    (decls, body, "verify")
}

/// Heap store with an out-of-range index — attacker-fed (`input net`,
/// `tainted`) or locally computed (a too-large constant in a global).
fn overflow(rng: &mut Xoshiro256StarStar, tainted: bool) -> (String, String, &'static str) {
    let slots = rng.next_in(2, 4);
    let size = 8 * slots;
    let v = rng.next_in(1, 250);
    if tainted {
        // Index = net input, scaled: almost every input value lands out
        // of bounds, so most input seeds manifest (like the handwritten
        // Figure-1 workload; in-bounds inputs are skipped by the seed
        // scan). No arithmetic the solver cannot invert sits between
        // the input and the faulting address.
        let body = format!(
            r#"            bug_entry:
                alloc r0, {size}
                input r1, net
                mul r3, r1, 8
                add r4, r0, r3
                store {v}, [r4]
                halt
"#
        );
        (String::new(), body, "bug_entry")
    } else {
        let lim = format!("lim_{}", tag(rng));
        let idx = slots + rng.next_below(2); // just past the payload
        let decls = format!("            global {lim} 8 = {idx}\n");
        let body = format!(
            r#"            bug_entry:
                alloc r0, {size}
                addr r1, {lim}
                load r2, [r1]
                mul r3, r2, 8
                add r4, r0, r3
                store {v}, [r4]
                halt
"#
        );
        (decls, body, "bug_entry")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_is_deterministic() {
        for class in GenClass::ALL {
            let spec = GenSpec::new(class, 7);
            let a = generate(spec);
            let b = generate(spec);
            assert_eq!(a.source, b.source, "{class:?}");
            assert_eq!(
                mvm_json::to_string(&a.program),
                mvm_json::to_string(&b.program),
                "{class:?}"
            );
            assert_eq!(a.truth, b.truth, "{class:?}");
        }
    }

    #[test]
    fn distinct_seeds_yield_distinct_programs() {
        let a = generate(GenSpec::new(GenClass::DivByZero, 1));
        let b = generate(GenSpec::new(GenClass::DivByZero, 2));
        assert_ne!(
            mvm_json::to_string(&a.program),
            mvm_json::to_string(&b.program)
        );
    }

    #[test]
    fn hint_manifests_with_expected_class() {
        for class in GenClass::ALL {
            let gp = generate(GenSpec::new(class, 42));
            let m = run_to_failure(&gp.program, gp.truth.schedule_hint)
                .unwrap_or_else(|| panic!("{class:?} hint did not fail"));
            let dump = Coredump::capture(&m);
            assert!(
                class.expected_fault_classes().contains(&dump.fault.class()),
                "{class:?} died with {}",
                dump.fault.class()
            );
        }
    }

    #[test]
    fn collect_failures_starts_at_the_hint() {
        let gp = generate(GenSpec::new(GenClass::UseAfterFree, 3));
        let fails = collect_failures(&gp, 3);
        assert_eq!(fails.len(), 3);
        assert_eq!(fails[0].seed, gp.truth.schedule_hint);
    }

    #[test]
    fn hardware_variant_changes_the_dump() {
        let gp = generate(GenSpec::new(GenClass::DivByZero, 5));
        let f = &collect_failures(&gp, 1)[0];
        let (hw_dump, report) = hardware_variant(&gp, f, HwFlavor::RegCorrupt);
        assert!(report.is_some());
        assert_ne!(mvm_json::to_string(&hw_dump), mvm_json::to_string(&f.dump));
    }

    #[test]
    fn corpus_specs_round_robin_and_decorrelate() {
        let specs = corpus_specs(&[GenClass::DivByZero, GenClass::DoubleFree], 6, 9, 0);
        assert_eq!(specs.len(), 6);
        assert_eq!(specs[0].class, GenClass::DivByZero);
        assert_eq!(specs[1].class, GenClass::DoubleFree);
        let seeds: std::collections::HashSet<u64> = specs.iter().map(|s| s.seed).collect();
        assert_eq!(seeds.len(), 6);
    }
}
