//! Bug-program generators.
//!
//! Programs are written in MicroVM assembly with a shared *prefix*
//! harness: `main` first runs `prefix_iters` iterations of a churn loop
//! (arithmetic plus stores to a scratch global — real work that a
//! forward-synthesis tool must traverse), then enters the buggy region.

use mvm_isa::{asm::assemble, Program};

/// The bug classes the evaluation covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BugKind {
    /// §4: unsynchronized counter increments lose updates; an assertion
    /// over the counter fails.
    DataRace,
    /// §4: a check/act pair of one thread is split by another thread's
    /// write.
    AtomicityViolation,
    /// §4: a consumer uses a shared pointer before the producer
    /// publishes it (order violation).
    OrderViolation,
    /// Figure 1: buffer overflow whose index depends on which
    /// predecessor executed.
    Figure1,
    /// Heap overflow with an attacker-controlled (network) index.
    HeapOverflowTainted,
    /// Heap overflow with a locally computed index (not exploitable).
    HeapOverflowLocal,
    /// Use-after-free: free then read.
    UseAfterFree,
    /// Double free.
    DoubleFree,
    /// A failed semantic assertion (no concurrency involved).
    SemanticAssert,
    /// Two threads acquire two mutexes in opposite orders.
    Deadlock,
    /// Division by a value that reaches zero.
    DivByZero,
    /// §6: the crash value flows through a hard-to-invert hash chain;
    /// the inputs are still in memory, so re-execution recovers them.
    HashChain,
    /// A racy writer nulls a shared pointer; one of several consumers
    /// (input-selected) dereferences it — same root cause, many call
    /// stacks (the §3.1 triaging phenomenon).
    RaceNullDeref,
    /// A use-after-free that manifests at the *same* deref helper as
    /// [`BugKind::RaceNullDeref`] — different root cause, same call
    /// stack (the other half of the §3.1 phenomenon).
    UafSameStack,
}

impl BugKind {
    /// All kinds, for corpus sweeps.
    pub const ALL: [BugKind; 14] = [
        BugKind::DataRace,
        BugKind::AtomicityViolation,
        BugKind::OrderViolation,
        BugKind::Figure1,
        BugKind::HeapOverflowTainted,
        BugKind::HeapOverflowLocal,
        BugKind::UseAfterFree,
        BugKind::DoubleFree,
        BugKind::SemanticAssert,
        BugKind::Deadlock,
        BugKind::DivByZero,
        BugKind::HashChain,
        BugKind::RaceNullDeref,
        BugKind::UafSameStack,
    ];

    /// The three synthetic concurrency bugs of the paper's §4
    /// evaluation.
    pub const HOTOS_EVAL: [BugKind; 3] = [
        BugKind::DataRace,
        BugKind::AtomicityViolation,
        BugKind::OrderViolation,
    ];

    /// A stable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            BugKind::DataRace => "data-race",
            BugKind::AtomicityViolation => "atomicity-violation",
            BugKind::OrderViolation => "order-violation",
            BugKind::Figure1 => "figure1-overflow",
            BugKind::HeapOverflowTainted => "heap-overflow-tainted",
            BugKind::HeapOverflowLocal => "heap-overflow-local",
            BugKind::UseAfterFree => "use-after-free",
            BugKind::DoubleFree => "double-free",
            BugKind::SemanticAssert => "semantic-assert",
            BugKind::Deadlock => "deadlock",
            BugKind::DivByZero => "div-by-zero",
            BugKind::HashChain => "hash-chain",
            BugKind::RaceNullDeref => "race-null-deref",
            BugKind::UafSameStack => "uaf-same-stack",
        }
    }

    /// `true` when the failing execution involves multiple threads.
    pub fn is_concurrent(self) -> bool {
        matches!(
            self,
            BugKind::DataRace
                | BugKind::AtomicityViolation
                | BugKind::OrderViolation
                | BugKind::Deadlock
                | BugKind::RaceNullDeref
        )
    }
}

/// Workload knobs.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadParams {
    /// Churn-loop iterations before the buggy region — the
    /// "arbitrarily long" knob (each iteration is ~7 instructions).
    pub prefix_iters: u64,
    /// Hash rounds for [`BugKind::HashChain`].
    pub hash_rounds: u64,
}

impl Default for WorkloadParams {
    fn default() -> Self {
        WorkloadParams {
            prefix_iters: 10,
            hash_rounds: 4,
        }
    }
}

/// The shared churn prefix: `r20` iterations of store/arith work on a
/// scratch global, then jump to `bug_entry`.
fn prefix(iters: u64) -> String {
    format!(
        r#"
        global scratch 8
        func main() {{
        entry:
            mov r20, {iters}
            addr r21, scratch
            jmp churn
        churn:
            eq r22, r20, 0
            br r22, bug_entry, churn_body
        churn_body:
            load r23, [r21]
            add r23, r23, r20
            xor r23, r23, 17
            store r23, [r21]
            sub r20, r20, 1
            jmp churn
        "#
    )
}

/// Builds the program for a bug kind.
///
/// # Panics
///
/// Panics only on internal template errors (the templates are tested).
pub fn build(kind: BugKind, params: WorkloadParams) -> Program {
    let pre = prefix(params.prefix_iters);
    let src = match kind {
        BugKind::DataRace => format!(
            r#"
            global counter 8
            global expect 8 = 40
            func worker(1) {{
            entry:
                mov r2, 0
                jmp loop
            loop:
                ltu r3, r2, 20
                br r3, body, done
            body:
                load r6, [r0]
                add r6, r6, 1
                store r6, [r0]
                add r2, r2, 1
                jmp loop
            done:
                halt
            }}
            {pre}
            bug_entry:
                addr r0, counter
                spawn r1, worker, r0
                spawn r2, worker, r0
                join r1
                join r2
                jmp check
            check:
                load r3, [r0]
                addr r4, expect
                load r5, [r4]
                eq r6, r3, r5
                assert r6, "increments lost to a data race"
                halt
            }}
            "#
        ),
        BugKind::AtomicityViolation => format!(
            r#"
            global balance 8 = 100
            func withdraw(1) {{
            entry:
                load r2, [r0]
                ltu r3, 50, r2
                br r3, do_withdraw, done
            do_withdraw:
                load r4, [r0]
                sub r4, r4, 60
                store r4, [r0]
                jmp done
            done:
                halt
            }}
            {pre}
            bug_entry:
                addr r0, balance
                spawn r1, withdraw, r0
                spawn r2, withdraw, r0
                join r1
                join r2
                jmp check
            check:
                load r3, [r0]
                leu r4, r3, 100
                assert r4, "balance underflowed: check/act split"
                halt
            }}
            "#
        ),
        BugKind::OrderViolation => format!(
            r#"
            global shared 8
            global init_flag 8
            func producer(1) {{
            entry:
                store 4096, [r0]
                addr r2, init_flag
                store 1, [r2]
                halt
            }}
            {pre}
            bug_entry:
                addr r0, shared
                spawn r1, producer, r0
                jmp consume
            consume:
                load r2, [r0]
                divu r3, 4096, r2
                join r1
                halt
            }}
            "#
        ),
        BugKind::Figure1 => format!(
            r#"
            global buffer 40
            global x 8
            global y 8 = 40
            global sel 8 = 1
            {pre}
            bug_entry:
                addr r0, sel
                load r1, [r0]
                addr r2, x
                br r1, pred1, pred2
            pred1:
                store 1, [r2]
                jmp write
            pred2:
                store 2, [r2]
                jmp write
            write:
                addr r3, y
                load r4, [r3]
                mul r5, r4, 8
                addr r6, buffer
                add r6, r6, r5
                store 1, [r6]
                halt
            }}
            "#
        ),
        BugKind::HeapOverflowTainted => format!(
            r#"
            {pre}
            bug_entry:
                alloc r0, 32
                input r1, net
                mul r2, r1, 8
                add r3, r0, r2
                store 255, [r3]
                halt
            }}
            "#
        ),
        BugKind::HeapOverflowLocal => format!(
            r#"
            global limit 8 = 6
            {pre}
            bug_entry:
                alloc r0, 32
                addr r1, limit
                load r2, [r1]
                mul r3, r2, 8
                add r4, r0, r3
                store 255, [r4]
                halt
            }}
            "#
        ),
        BugKind::UseAfterFree => format!(
            r#"
            {pre}
            bug_entry:
                alloc r0, 24
                store 11, [r0]
                store 22, [r0+8]
                free r0
                jmp reuse
            reuse:
                load r1, [r0+8]
                halt
            }}
            "#
        ),
        BugKind::DoubleFree => format!(
            r#"
            {pre}
            bug_entry:
                alloc r0, 16
                store 3, [r0]
                free r0
                jmp cleanup
            cleanup:
                free r0
                halt
            }}
            "#
        ),
        BugKind::SemanticAssert => format!(
            r#"
            global config 8 = 7
            {pre}
            bug_entry:
                addr r0, config
                load r1, [r0]
                remu r2, r1, 2
                eq r3, r2, 0
                assert r3, "config must be even"
                halt
            }}
            "#
        ),
        BugKind::Deadlock => format!(
            r#"
            global m1 8
            global m2 8
            func worker(1) {{
            entry:
                addr r1, m2
                lock r1
                addr r2, m1
                lock r2
                unlock r2
                unlock r1
                halt
            }}
            {pre}
            bug_entry:
                addr r1, m1
                lock r1
                spawn r3, worker, 0
                addr r2, m2
                lock r2
                unlock r2
                unlock r1
                join r3
                halt
            }}
            "#
        ),
        BugKind::DivByZero => format!(
            r#"
            global quota 8 = 3
            {pre}
            bug_entry:
                addr r0, quota
                load r1, [r0]
                sub r1, r1, 3
                store r1, [r0]
                jmp divide
            divide:
                load r2, [r0]
                divu r3, 1000, r2
                halt
            }}
            "#
        ),
        BugKind::HashChain => format!(
            r#"
            global seed_cell 8 = 12345
            global digest 8
            func hash(2) {{
            entry:
                mov r2, 0
                jmp round
            round:
                ltu r3, r2, {rounds}
                br r3, mix, done
            mix:
                mul r0, r0, 2654435761
                xor r0, r0, r1
                shl r4, r0, 13
                xor r0, r0, r4
                shr r4, r0, 7
                xor r0, r0, r4
                add r2, r2, 1
                jmp round
            done:
                ret r0
            }}
            {pre}
            bug_entry:
                addr r0, seed_cell
                load r1, [r0]
                call r2 = hash(r1, 99), store_digest
            store_digest:
                addr r3, digest
                store r2, [r3]
                jmp check
            check:
                load r4, [r3]
                eq r5, r4, 0
                assert r5, "digest must be zero"
                halt
            }}
            "#,
            rounds = params.hash_rounds,
        ),
        BugKind::RaceNullDeref => format!(
            r#"
            global ptr 8
            global box_mem 8
            func use_ptr(1) {{
            entry:
                load r1, [r0]
                load r2, [r1]
                ret r2
            }}
            func nuller(1) {{
            entry:
                store 0, [r0]
                halt
            }}
            {pre}
            bug_entry:
                addr r0, ptr
                addr r1, box_mem
                store 77, [r1]
                store r1, [r0]
                spawn r2, nuller, r0
                input r3, env
                remu r4, r3, 2
                br r4, via_a, via_b
            via_a:
                call r5 = use_ptr(r0), after_a
            after_a:
                halt
            via_b:
                nop
                call r6 = use_ptr(r0), after_b
            after_b:
                halt
            }}
            "#
        ),
        BugKind::UafSameStack => format!(
            r#"
            global ptr 8
            global box_mem 8
            func use_ptr(1) {{
            entry:
                load r1, [r0]
                load r2, [r1]
                ret r2
            }}
            func filler(1) {{
            entry:
                halt
            }}
            {pre}
            bug_entry:
                alloc r1, 16
                store 55, [r1]
                addr r0, ptr
                store r1, [r0]
                free r1
                jmp touch
            touch:
                call r5 = use_ptr(r0), after
            after:
                halt
            }}
            "#
        ),
    };
    assemble(&src).unwrap_or_else(|e| panic!("workload {kind:?} failed to assemble: {e}"))
}

/// Builds the *repaired* variant of a bug program, when the template
/// has a canonical one-line fix: the same source with the defect
/// corrected. The trace `verify` workflow ("did the fix work?") replays
/// a failure recorded against [`build`]'s program under the fixed
/// binary and expects a divergence — the recorded failure must no
/// longer happen. Returns `None` for kinds without a canonical fix.
pub fn build_fixed(kind: BugKind, params: WorkloadParams) -> Option<Program> {
    let pre = prefix(params.prefix_iters);
    let src = match kind {
        // The quota arithmetic no longer reaches zero (`sub 3` →
        // `sub 2`), so the stored divisor is 1 and the division
        // succeeds. Diverges at the quota *store* — a Write mismatch
        // inside the recorded window.
        BugKind::DivByZero => format!(
            r#"
            global quota 8 = 3
            {pre}
            bug_entry:
                addr r0, quota
                load r1, [r0]
                sub r1, r1, 2
                store r1, [r0]
                jmp divide
            divide:
                load r2, [r0]
                divu r3, 1000, r2
                halt
            }}
            "#
        ),
        // The parity check is neutralized (`remu 2` → `remu 1` is
        // always 0), so the assertion holds. No memory write differs —
        // the divergence is the recorded Assert fault not occurring.
        BugKind::SemanticAssert => format!(
            r#"
            global config 8 = 7
            {pre}
            bug_entry:
                addr r0, config
                load r1, [r0]
                remu r2, r1, 1
                eq r3, r2, 0
                assert r3, "config must be even"
                halt
            }}
            "#
        ),
        _ => return None,
    };
    Some(
        assemble(&src)
            .unwrap_or_else(|e| panic!("fixed workload {kind:?} failed to assemble: {e}")),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_workloads_assemble() {
        for kind in BugKind::ALL {
            let p = build(kind, WorkloadParams::default());
            assert!(p.code_size() > 0, "{kind:?}");
        }
    }

    #[test]
    fn prefix_scales_execution_length() {
        // The prefix knob is what makes executions arbitrarily long.
        let short = build(
            BugKind::DivByZero,
            WorkloadParams {
                prefix_iters: 5,
                ..WorkloadParams::default()
            },
        );
        // Code size is identical — only *execution* length grows.
        let long = build(
            BugKind::DivByZero,
            WorkloadParams {
                prefix_iters: 50_000,
                ..WorkloadParams::default()
            },
        );
        assert_eq!(short.code_size(), long.code_size());
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = BugKind::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), BugKind::ALL.len());
    }
}
