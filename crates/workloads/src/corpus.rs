//! Labeled failure corpora.
//!
//! A corpus is what a Windows-Error-Reporting-style backend receives: a
//! stream of crash reports (coredump or minidump), each secretly caused
//! by one of a set of known bugs. Because the corpus generator *knows*
//! which bug produced each report, triaging accuracy (experiment E5) and
//! hardware-filter precision (E7) are measurable.

use mvm_core::{Coredump, Minidump};
use mvm_isa::Program;
use mvm_machine::{
    InputSource,
    Machine,
    MachineConfig,
    Outcome,
    SchedPolicy,
    TraceLevel, //
};

use crate::progs::{build, BugKind, WorkloadParams};

/// One labeled failure.
#[derive(Debug, Clone)]
pub struct FailureReport {
    /// The ground-truth bug.
    pub kind: BugKind,
    /// The program that failed (shared across reports of the same kind).
    pub program: Program,
    /// The full coredump.
    pub dump: Coredump,
    /// The WER-style minidump subset.
    pub minidump: Minidump,
    /// Scheduler/input seed that produced this failure.
    pub seed: u64,
}

/// Corpus generation parameters.
#[derive(Debug, Clone)]
pub struct CorpusSpec {
    /// Bug kinds to include.
    pub kinds: Vec<BugKind>,
    /// Failures to collect per kind.
    pub per_kind: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Workload knobs.
    pub params: WorkloadParams,
    /// Seeds tried per requested failure before giving up (concurrency
    /// bugs do not manifest under every schedule).
    pub max_attempts_per_failure: u64,
}

impl Default for CorpusSpec {
    fn default() -> Self {
        CorpusSpec {
            kinds: BugKind::ALL.to_vec(),
            per_kind: 4,
            seed: 0xc0ffee,
            params: WorkloadParams::default(),
            max_attempts_per_failure: 200,
        }
    }
}

/// Runs a program under a seeded random schedule and seeded inputs until
/// it faults, returning the machine if it does.
pub fn run_to_failure(program: &Program, seed: u64) -> Option<Machine> {
    let mut m = Machine::new(
        program.clone(),
        MachineConfig {
            sched: SchedPolicy::Random {
                seed,
                switch_per_mille: 400,
            },
            input: InputSource::Seeded {
                seed: seed ^ 0x5eed,
            },
            trace: TraceLevel::Off,
            max_steps: 2_000_000,
            ..MachineConfig::default()
        },
    );
    match m.run() {
        Outcome::Faulted { .. } => Some(m),
        _ => None,
    }
}

/// Generates a labeled corpus.
pub fn generate_corpus(spec: &CorpusSpec) -> Vec<FailureReport> {
    let mut out = Vec::new();
    for (ki, &kind) in spec.kinds.iter().enumerate() {
        let program = build(kind, spec.params);
        let mut collected = 0usize;
        let mut attempt = 0u64;
        while collected < spec.per_kind && attempt < spec.max_attempts_per_failure {
            let seed = spec
                .seed
                .wrapping_add(ki as u64 * 10_007)
                .wrapping_add(attempt * 7919);
            attempt += 1;
            let Some(m) = run_to_failure(&program, seed) else {
                continue;
            };
            let dump = Coredump::capture(&m);
            let minidump = Minidump::from_coredump(&dump);
            out.push(FailureReport {
                kind,
                program: program.clone(),
                dump,
                minidump,
                seed,
            });
            collected += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_bugs_always_fail() {
        for kind in [
            BugKind::DivByZero,
            BugKind::SemanticAssert,
            BugKind::UseAfterFree,
            BugKind::DoubleFree,
            BugKind::HashChain,
            BugKind::Figure1,
            BugKind::HeapOverflowLocal,
            BugKind::UafSameStack,
        ] {
            let p = build(kind, WorkloadParams::default());
            assert!(
                run_to_failure(&p, 1).is_some(),
                "{kind:?} should fail deterministically"
            );
        }
    }

    #[test]
    fn concurrency_bugs_fail_under_some_schedule() {
        for kind in [
            BugKind::DataRace,
            BugKind::AtomicityViolation,
            BugKind::OrderViolation,
            BugKind::Deadlock,
            BugKind::RaceNullDeref,
        ] {
            let p = build(kind, WorkloadParams::default());
            let found = (0..300).any(|s| run_to_failure(&p, s).is_some());
            assert!(found, "{kind:?} never failed in 300 schedules");
        }
    }

    #[test]
    fn corpus_collects_labeled_reports() {
        let spec = CorpusSpec {
            kinds: vec![BugKind::DivByZero, BugKind::UseAfterFree],
            per_kind: 3,
            ..CorpusSpec::default()
        };
        let corpus = generate_corpus(&spec);
        assert_eq!(corpus.len(), 6);
        assert!(corpus.iter().all(|r| r.dump.threads.iter().len() >= 1));
        assert_eq!(
            corpus
                .iter()
                .filter(|r| r.kind == BugKind::DivByZero)
                .count(),
            3
        );
    }

    #[test]
    fn race_null_deref_produces_multiple_stacks() {
        // The same root cause must manifest with at least two distinct
        // stack signatures across schedules/inputs — the §3.1 triaging
        // phenomenon.
        let p = build(BugKind::RaceNullDeref, WorkloadParams::default());
        let mut sigs = std::collections::HashSet::new();
        for s in 0..400 {
            if let Some(m) = run_to_failure(&p, s) {
                let d = Coredump::capture(&m);
                sigs.insert(d.stack_signature(2));
                if sigs.len() >= 2 {
                    break;
                }
            }
        }
        assert!(sigs.len() >= 2, "only {} distinct stacks", sigs.len());
    }

    #[test]
    fn engineered_stack_collision_across_bugs() {
        // RaceNullDeref and UafSameStack fault at the same helper with
        // aligned frame locations: naive top-frame bucketing cannot
        // separate them.
        let race = build(BugKind::RaceNullDeref, WorkloadParams::default());
        let uaf = build(BugKind::UafSameStack, WorkloadParams::default());
        let race_dump = (0..400)
            .find_map(|s| run_to_failure(&race, s))
            .map(|m| Coredump::capture(&m))
            .expect("race failure");
        let uaf_dump = run_to_failure(&uaf, 1)
            .map(|m| Coredump::capture(&m))
            .expect("uaf failure");
        assert_eq!(
            race_dump.stack_signature(1),
            uaf_dump.stack_signature(1),
            "innermost frames must collide"
        );
    }
}
