//! The live metrics registry: lock-free fixed-bucket histograms with
//! quantile extraction.
//!
//! The [`Recorder`](crate::Recorder) answers *post-mortem* questions —
//! its metric totals reach the journal only when someone flushes them.
//! A serving daemon needs the complementary *live* view: latency
//! distributions that can be snapshotted mid-flight by a stats
//! endpoint without stalling the workers that are recording into them.
//!
//! A [`Registry`] is a named set of [`Histogram`]s. Each histogram is a
//! fixed array of power-of-two buckets backed by atomics, so:
//!
//! * **recording is wait-free** — one `fetch_add` per observation, no
//!   lock, no allocation;
//! * **snapshots never block recorders** — a snapshot just loads the
//!   bucket counters; writers keep writing;
//! * **memory is bounded** — [`BUCKETS`] counters per histogram, no
//!   per-observation state, regardless of how long the daemon runs;
//! * **quantiles are deterministic** — p50/p95/p99 are derived from the
//!   bucket counts with integer math only ([`quantile_from_buckets`]),
//!   so two snapshots of equal counts render identically.
//!
//! Like the recorder, a **disabled** registry ([`Registry::disabled`],
//! the default) hands out inert handles: every `record` call returns
//! immediately and allocates nothing (proven by
//! `tests/obs_determinism.rs` with an allocation counter).
//!
//! ```
//! use res_obs::Registry;
//!
//! let reg = Registry::new();
//! let rtt = reg.histogram("serve.rtt.triage_us");
//! rtt.record(120);
//! rtt.record(450);
//! let snap = &reg.snapshot()[0];
//! assert_eq!(snap.count, 2);
//! assert!(snap.p50 <= snap.p95 && snap.p95 <= snap.p99);
//! ```

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use mvm_json::json_struct;

use crate::recorder::Recorder;

/// Buckets per histogram: bucket 0 holds the value `0`, bucket `i ≥ 1`
/// holds values in `[2^(i-1), 2^i - 1]` — 65 buckets cover all of
/// `u64`, which for microsecond latencies spans 1µs to half a million
/// years in factor-of-two resolution.
pub const BUCKETS: usize = 65;

/// The bucket index a value lands in (`0` for 0, else
/// `64 - leading_zeros`).
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// The largest value bucket `i` can hold (`0`, `1`, `3`, `7`, … —
/// `2^i - 1`, saturating at `u64::MAX`).
#[inline]
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// The `pct`-th percentile of a bucketed distribution, as the upper
/// bound of the bucket where the cumulative count crosses
/// `ceil(count * pct / 100)`, clamped to the observed `max`. Integer
/// math only — deterministic for equal counts. Returns 0 for an empty
/// distribution.
pub fn quantile_from_buckets(buckets: &[u64], pct: u64, max: u64) -> u64 {
    let count: u64 = buckets.iter().sum();
    if count == 0 {
        return 0;
    }
    let target = (count * pct).div_ceil(100).max(1);
    let mut cum = 0u64;
    for (i, &b) in buckets.iter().enumerate() {
        cum += b;
        if cum >= target {
            return bucket_upper_bound(i).min(max);
        }
    }
    max
}

struct HistoCore {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    /// `u64::MAX` until the first observation.
    min: AtomicU64,
    max: AtomicU64,
}

impl HistoCore {
    fn new() -> HistoCore {
        HistoCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    fn snapshot(&self, name: &str) -> HistoSnapshot {
        // Read the buckets first: `count` is *derived* from what was
        // read, so a snapshot is always self-consistent (count equals
        // the sum of its own buckets) even while writers are recording.
        let mut buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count: u64 = buckets.iter().sum();
        while buckets.last() == Some(&0) {
            buckets.pop();
        }
        let min = self.min.load(Ordering::Relaxed);
        let max = self.max.load(Ordering::Relaxed);
        let (min, max) = if count == 0 { (0, 0) } else { (min, max) };
        HistoSnapshot {
            name: name.to_string(),
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if min == u64::MAX { 0 } else { min },
            max,
            p50: quantile_from_buckets(&buckets, 50, max),
            p95: quantile_from_buckets(&buckets, 95, max),
            p99: quantile_from_buckets(&buckets, 99, max),
            buckets,
        }
    }
}

/// A recording handle to one registered histogram. Cheap to clone;
/// inert (and allocation-free) when obtained from a disabled registry.
#[derive(Clone, Default)]
pub struct Histogram {
    core: Option<Arc<HistoCore>>,
}

impl Histogram {
    /// Records one observation. Wait-free: three relaxed atomic RMWs,
    /// no lock, no allocation; a no-op on a disabled registry.
    #[inline]
    pub fn record(&self, value: u64) {
        let Some(core) = &self.core else { return };
        core.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        core.sum.fetch_add(value, Ordering::Relaxed);
        core.min.fetch_min(value, Ordering::Relaxed);
        core.max.fetch_max(value, Ordering::Relaxed);
    }

    /// `true` when observations are being recorded.
    pub fn enabled(&self) -> bool {
        self.core.is_some()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("enabled", &self.enabled())
            .finish()
    }
}

/// A shared, thread-safe set of named histograms. Registration takes a
/// short lock; recording through the returned [`Histogram`] handles
/// never does.
#[derive(Clone, Default)]
pub struct Registry {
    inner: Option<Arc<Mutex<BTreeMap<String, Arc<HistoCore>>>>>,
}

impl Registry {
    /// An enabled, empty registry.
    pub fn new() -> Registry {
        Registry {
            inner: Some(Arc::new(Mutex::new(BTreeMap::new()))),
        }
    }

    /// The inert registry: every handle it hands out is a no-op and
    /// every call is allocation-free.
    pub fn disabled() -> Registry {
        Registry::default()
    }

    /// `true` when this registry retains observations.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The recording handle for `name`, registering the histogram on
    /// first use. Register once at startup and reuse the handle on the
    /// hot path — the lookup locks the name table.
    pub fn histogram(&self, name: &str) -> Histogram {
        let Some(inner) = &self.inner else {
            return Histogram::default();
        };
        let mut map = inner.lock().expect("registry lock");
        let core = map
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(HistoCore::new()));
        Histogram {
            core: Some(Arc::clone(core)),
        }
    }

    /// A consistent snapshot of every histogram, sorted by name.
    /// Recorders are never blocked: the name table is locked only long
    /// enough to clone the `Arc`s, and the counters are read with
    /// plain atomic loads.
    pub fn snapshot(&self) -> Vec<HistoSnapshot> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        let cores: Vec<(String, Arc<HistoCore>)> = {
            let map = inner.lock().expect("registry lock");
            map.iter()
                .map(|(name, core)| (name.clone(), Arc::clone(core)))
                .collect()
        };
        cores
            .iter()
            .map(|(name, core)| core.snapshot(name))
            .collect()
    }

    /// Journals the current snapshot through `rec` as bucketed
    /// [`EventKind::Histo`](crate::EventKind::Histo) events, so a
    /// daemon's latency distributions survive into its JSONL journal
    /// (and `render` can print their quantiles post-mortem).
    pub fn flush_to(&self, rec: &Recorder) {
        for snap in self.snapshot() {
            rec.emit_histo(
                &snap.name,
                snap.count,
                snap.sum,
                snap.min,
                snap.max,
                Some(snap.buckets.clone()),
            );
        }
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("enabled", &self.enabled())
            .finish()
    }
}

/// One histogram's state at snapshot time, wire-serializable (this is
/// what a daemon's stats endpoint returns). All values are exact
/// integers; the quantiles are bucket upper bounds clamped to the
/// observed max ([`quantile_from_buckets`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistoSnapshot {
    /// Dot-scoped histogram name (e.g. `serve.rtt.triage_us`).
    pub name: String,
    /// Observations recorded (always equals the sum of `buckets`).
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation (0 when empty).
    pub max: u64,
    /// 50th percentile.
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Power-of-two bucket counts ([`bucket_index`]), trailing zero
    /// buckets trimmed.
    pub buckets: Vec<u64>,
}

json_struct!(HistoSnapshot {
    name,
    count,
    sum,
    min,
    max,
    p50,
    p95,
    p99,
    buckets
});

impl HistoSnapshot {
    /// This snapshot with every timing-derived field zeroed (sum, min,
    /// max, quantiles, bucket distribution), keeping only the fields
    /// that are deterministic for a fixed request sequence — the
    /// determinism currency of `tests/obs_determinism.rs`.
    pub fn normalized(&self) -> HistoSnapshot {
        HistoSnapshot {
            name: self.name.clone(),
            count: self.count,
            sum: 0,
            min: 0,
            max: 0,
            p50: 0,
            p95: 0,
            p99: 0,
            buckets: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_scheme_is_total_and_ordered() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        for i in 0..BUCKETS {
            assert_eq!(bucket_index(bucket_upper_bound(i)), i.max(0));
            assert!(i == 0 || bucket_upper_bound(i) > bucket_upper_bound(i - 1));
        }
    }

    #[test]
    fn quantiles_are_monotone_and_clamped() {
        let reg = Registry::new();
        let h = reg.histogram("h");
        for v in [1u64, 2, 3, 100, 1000, 1001, 1002, 90_000] {
            h.record(v);
        }
        let snap = &reg.snapshot()[0];
        assert_eq!(snap.count, 8);
        assert_eq!(snap.count, snap.buckets.iter().sum::<u64>());
        assert_eq!(snap.min, 1);
        assert_eq!(snap.max, 90_000);
        assert!(snap.p50 <= snap.p95);
        assert!(snap.p95 <= snap.p99);
        assert!(snap.p99 <= snap.max, "quantiles clamp to the observed max");
        assert!(snap.p50 >= 3, "p50 of 8 values is at or above the 4th");
    }

    #[test]
    fn empty_histogram_snapshots_to_zeros() {
        let reg = Registry::new();
        let _ = reg.histogram("empty");
        let snap = &reg.snapshot()[0];
        assert_eq!(
            (snap.count, snap.sum, snap.min, snap.max, snap.p50),
            (0, 0, 0, 0, 0)
        );
        assert!(snap.buckets.is_empty(), "trailing zeros are trimmed");
    }

    #[test]
    fn disabled_registry_hands_out_inert_handles() {
        let reg = Registry::disabled();
        assert!(!reg.enabled());
        let h = reg.histogram("h");
        assert!(!h.enabled());
        h.record(7);
        assert!(reg.snapshot().is_empty());
    }

    #[test]
    fn handles_share_state_across_clones_and_threads() {
        let reg = Registry::new();
        let h = reg.histogram("shared");
        std::thread::scope(|s| {
            for _ in 0..4 {
                let h = h.clone();
                s.spawn(move || {
                    for v in 0..100u64 {
                        h.record(v);
                    }
                });
            }
        });
        let snap = &reg.snapshot()[0];
        assert_eq!(snap.count, 400);
        assert_eq!(snap.count, snap.buckets.iter().sum::<u64>());
        // Re-registering the same name returns the same histogram.
        reg.histogram("shared").record(5);
        assert_eq!(reg.snapshot()[0].count, 401);
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let reg = Registry::new();
        let h = reg.histogram("rt");
        h.record(12);
        h.record(99);
        let snap = reg.snapshot().remove(0);
        let text = mvm_json::to_string(&snap);
        let back: HistoSnapshot = mvm_json::from_str(&text).expect("snapshot parses");
        assert_eq!(back, snap);
    }

    #[test]
    fn normalized_drops_every_timing_field() {
        let reg = Registry::new();
        let h = reg.histogram("n");
        h.record(1234);
        let norm = reg.snapshot()[0].normalized();
        assert_eq!(norm.count, 1);
        assert_eq!(
            (norm.sum, norm.min, norm.max, norm.p50, norm.p95),
            (0, 0, 0, 0, 0)
        );
        assert!(norm.buckets.is_empty());
    }

    #[test]
    fn flush_to_journals_bucketed_histo_events() {
        let rec = Recorder::memory();
        let reg = Registry::new();
        reg.histogram("serve.rtt.triage_us").record(250);
        reg.flush_to(&rec);
        let events = rec.snapshot();
        let found = events.iter().any(|e| {
            matches!(
                &e.kind,
                crate::EventKind::Histo { name, count, buckets: Some(b), .. }
                    if name == "serve.rtt.triage_us" && *count == 1 && b.iter().sum::<u64>() == 1
            )
        });
        assert!(found, "registry flush must emit a bucketed Histo event");
    }
}
