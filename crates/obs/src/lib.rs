//! # res-obs — hermetic structured tracing and metrics
//!
//! The RES engine runs a budgeted backward search whose interesting
//! failures are *temporal*: a budget cut fires, a phase dominates wall
//! time, a store defect silently degrades a warm run to cold. The stat
//! structs ([`KernelStats`](../res_core/kernel/struct.KernelStats.html)
//! and friends) say *how much* happened; this crate records *when*, as
//! a replayable execution timeline.
//!
//! Three primitives, one handle:
//!
//! * **Spans** — hierarchical, monotonically timed intervals
//!   ([`Recorder::span`], [`Span::child`]). Each span emits a
//!   [`EventKind::Span`] on open and an [`EventKind::End`] (with its
//!   duration) on drop.
//! * **Metrics** — named [`counters`](Recorder::counter),
//!   [`gauges`](Recorder::gauge), and
//!   [`histograms`](Recorder::observe), accumulated in memory and
//!   flushed as cumulative-total events by [`Recorder::finish`]
//!   (append-only; the last total for a name wins, like the store's
//!   stats records).
//! * **Marks** — discrete occurrences with string fields
//!   ([`Recorder::event_with`]): a budget cut, a store defect, an
//!   absorb with its provenance.
//!
//! Everything lands in an append-only **JSONL journal** — one
//! [`Event`] per line, serialized with `mvm-json` (no registry
//! dependencies, per the workspace's hermetic-build policy) — or in an
//! in-memory sink for tests. [`read_journal`] parses a journal back;
//! [`render::render`] pretty-prints the span tree, top counters, and
//! marks so a cut run can be explained from its journal alone.
//!
//! ## The passivity invariant
//!
//! The recorder is **strictly passive**: nothing in the search ever
//! reads recorder state, and wall-clock timestamps exist *only* inside
//! journal events — never in any value that feeds hypothesis
//! generation, solver queries, or budget accounting. Enabling tracing
//! therefore cannot perturb the search; `tests/obs_determinism.rs` and
//! the `scripts/ci.sh` traced gate prove the golden suffix fixture is
//! byte-identical with tracing on and off at any worker count.
//!
//! A **disabled** recorder ([`Recorder::disabled`], the default) is a
//! handle around `None`: every call returns immediately and allocates
//! nothing, so always-on instrumentation costs near-zero on the hot
//! path (also asserted by `tests/obs_determinism.rs`, with an
//! allocation counter rather than timing).
//!
//! ```
//! use res_obs::{Recorder, render};
//!
//! let rec = Recorder::memory();
//! {
//!     let run = rec.span("synthesize");
//!     let _replay = run.child("replay");
//!     rec.counter("kernel.nodes_expanded", 3);
//!     rec.event_with("kernel.cut", || vec![("reason".into(), "Nodes".into())]);
//! }
//! rec.finish();
//! let events = rec.snapshot();
//! assert!(render::render(&events).contains("synthesize"));
//! assert_eq!(render::counter_totals(&events)["kernel.nodes_expanded"], 3);
//! ```

//!
//! ## Live telemetry
//!
//! Long-lived daemons need the complementary *live* view: latency
//! distributions a stats endpoint can snapshot mid-flight. The
//! [`registry`] module provides a [`Registry`] of wait-free bucketed
//! [`Histogram`]s with integer p50/p95/p99 extraction, and [`query`]
//! turns a parsed journal back into per-request span trees, glob-
//! filtered counters, and percentile summaries (the library behind
//! `res-cli journal`).

mod event;
pub mod query;
mod recorder;
pub mod registry;
pub mod render;

pub use event::{Event, EventKind};
pub use recorder::{read_journal, read_journal_full, Journal, Recorder, Span, JOURNAL_VERSION};
pub use registry::{HistoSnapshot, Histogram, Registry};
