//! The journal's wire format: one [`Event`] per JSONL line.

use mvm_json::{json_enum, json_struct};

/// One journal record. `seq` is a per-recorder monotone sequence number
/// (assigned under the sink lock, so it also orders the journal file)
/// and `t_us` is microseconds since the recorder was created — a
/// monotonic clock, never wall-clock time, and never visible to the
/// search itself (the passivity invariant).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Monotone per-recorder sequence number.
    pub seq: u64,
    /// Microseconds since the recorder's origin instant.
    pub t_us: u64,
    /// What happened.
    pub kind: EventKind,
}

json_struct!(Event { seq, t_us, kind });

/// The event taxonomy. Counters, gauges, and histograms are flushed as
/// *cumulative totals* (append-only, last record for a name wins);
/// spans and marks are streamed as they happen.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// A span opened. `parent` links the hierarchy; `None` is a root.
    Span {
        /// Recorder-unique span id.
        id: u64,
        /// Enclosing span, if any.
        parent: Option<u64>,
        /// Span name (e.g. `synthesize`, `replay`, `worker0`).
        name: String,
    },
    /// A span closed.
    End {
        /// The id from the matching [`EventKind::Span`].
        id: u64,
        /// Span duration in microseconds.
        dur_us: u64,
    },
    /// Cumulative counter total at flush time.
    Count {
        /// Dot-scoped counter name (e.g. `kernel.nodes_expanded`).
        name: String,
        /// Total accumulated so far.
        total: u64,
    },
    /// Last-written gauge value at flush time.
    Gauge {
        /// Dot-scoped gauge name.
        name: String,
        /// The value.
        value: u64,
    },
    /// Histogram summary at flush time.
    Histo {
        /// Dot-scoped histogram name.
        name: String,
        /// Observations recorded.
        count: u64,
        /// Sum of observed values.
        sum: u64,
        /// Smallest observation.
        min: u64,
        /// Largest observation.
        max: u64,
        /// Power-of-two bucket counts (see
        /// [`registry::bucket_index`](crate::registry::bucket_index)),
        /// trailing zeros trimmed. `None` in journals written before
        /// distributions were recorded (the summary fields still hold).
        buckets: Option<Vec<u64>>,
    },
    /// A discrete occurrence with free-form string fields.
    Mark {
        /// Dot-scoped event name (e.g. `kernel.cut`, `store.open`).
        name: String,
        /// `(key, value)` pairs, in emission order.
        fields: Vec<(String, String)>,
    },
}

json_enum!(EventKind {
    Span {
        id: u64,
        parent: Option<u64>,
        name: String
    },
    End { id: u64, dur_us: u64 },
    Count { name: String, total: u64 },
    Gauge { name: String, value: u64 },
    Histo {
        name: String,
        count: u64,
        sum: u64,
        min: u64,
        max: u64,
        buckets: Option<Vec<u64>>
    },
    Mark {
        name: String,
        fields: Vec<(String, String)>
    },
});

impl EventKind {
    /// The metric or span name this event carries, if any.
    pub fn name(&self) -> Option<&str> {
        match self {
            EventKind::Span { name, .. }
            | EventKind::Count { name, .. }
            | EventKind::Gauge { name, .. }
            | EventKind::Histo { name, .. }
            | EventKind::Mark { name, .. } => Some(name),
            EventKind::End { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(e: &Event) {
        let text = mvm_json::to_string(e);
        assert!(!text.contains('\n'), "journal lines must be single-line");
        let back: Event = mvm_json::from_str(&text).expect("event must parse");
        assert_eq!(&back, e);
    }

    #[test]
    fn every_kind_round_trips() {
        let kinds = vec![
            EventKind::Span {
                id: 1,
                parent: None,
                name: "synthesize".into(),
            },
            EventKind::Span {
                id: 2,
                parent: Some(1),
                name: "replay".into(),
            },
            EventKind::End { id: 2, dur_us: 412 },
            EventKind::Count {
                name: "kernel.nodes_expanded".into(),
                total: 4000,
            },
            EventKind::Gauge {
                name: "workers".into(),
                value: 4,
            },
            EventKind::Histo {
                name: "suffix.len".into(),
                count: 3,
                sum: 12,
                min: 2,
                max: 6,
                buckets: None,
            },
            EventKind::Histo {
                name: "serve.rtt.triage_us".into(),
                count: 2,
                sum: 30,
                min: 10,
                max: 20,
                buckets: Some(vec![0, 0, 0, 0, 1, 1]),
            },
            EventKind::Mark {
                name: "kernel.cut".into(),
                fields: vec![("reason".into(), "Nodes".into())],
            },
        ];
        for (i, kind) in kinds.into_iter().enumerate() {
            round_trip(&Event {
                seq: i as u64,
                t_us: 17 * i as u64,
                kind,
            });
        }
    }

    #[test]
    fn histo_without_buckets_key_parses_as_none() {
        // Journals written before bucketed histograms existed omit the
        // key entirely; they must keep parsing.
        let line =
            r#"{"seq":0,"t_us":5,"kind":{"Histo":{"name":"h","count":1,"sum":9,"min":9,"max":9}}}"#;
        let e: Event = mvm_json::from_str(line).expect("legacy histo parses");
        assert!(matches!(&e.kind, EventKind::Histo { buckets: None, .. }));
    }

    #[test]
    fn name_accessor_covers_named_kinds() {
        let m = EventKind::Mark {
            name: "store.open".into(),
            fields: vec![],
        };
        assert_eq!(m.name(), Some("store.open"));
        assert_eq!(EventKind::End { id: 1, dur_us: 0 }.name(), None);
    }
}
