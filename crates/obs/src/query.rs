//! Journal queries: filter and aggregate a parsed journal without jq.
//!
//! A daemon journal interleaves thousands of spans, marks, and metric
//! flushes from many requests. This module answers the operator
//! questions directly: *which counters match this glob*, *show me the
//! subtrees under this span prefix*, *reconstruct request `c3.2`'s
//! span tree*, *summarize the latency distributions*. It is the
//! library behind `res-cli journal`.
//!
//! Request reconstruction leans on one convention: the serving layer
//! marks each request with a `*.req.meta` event whose fields carry
//! `req` (the request id), `span` (the root span id), and `endpoint`.
//! Everything under that root span — admission, queue wait, worker
//! phases, reply serialization — is then reachable as an ordinary span
//! subtree, which is what makes the journal *reconcilable* per
//! request.

use std::collections::BTreeSet;

use crate::event::{Event, EventKind};
use crate::registry::{quantile_from_buckets, HistoSnapshot};
use crate::render::{fmt_us, span_forest};

/// Matches `name` against a glob `pattern` where `*` matches any run
/// of characters (including none) and every other byte matches itself.
/// The empty pattern matches only the empty name.
pub fn glob_match(pattern: &str, name: &str) -> bool {
    fn inner(p: &[u8], n: &[u8]) -> bool {
        match p.split_first() {
            None => n.is_empty(),
            Some((b'*', rest)) => (0..=n.len()).any(|skip| inner(rest, &n[skip..])),
            Some((c, rest)) => n
                .split_first()
                .is_some_and(|(d, tail)| c == d && inner(rest, tail)),
        }
    }
    inner(pattern.as_bytes(), name.as_bytes())
}

/// The final counter totals whose names match the glob `pattern`, in
/// name order.
pub fn counters_matching(events: &[Event], pattern: &str) -> Vec<(String, u64)> {
    crate::render::counter_totals(events)
        .into_iter()
        .filter(|(name, _)| glob_match(pattern, name))
        .collect()
}

/// One reconstructed daemon request, assembled from its `*.req.meta`
/// mark and the span forest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestEntry {
    /// The request id (e.g. `c3.2`: connection 3, request 2).
    pub req_id: String,
    /// Wire endpoint name (e.g. `triage`, `bucket_batch`, `stats`).
    pub endpoint: String,
    /// Root span id from the meta mark (`None` when the mark named a
    /// span that never opened in these events — a reconciliation
    /// failure).
    pub span_id: Option<u64>,
    /// Spans in the request's subtree (including the root).
    pub spans: usize,
    /// `true` when every span in the subtree recorded its `End`.
    pub closed: bool,
    /// The root span's duration, when closed.
    pub dur_us: Option<u64>,
}

impl RequestEntry {
    /// A request *reconciles* when its meta mark resolves to a real
    /// span, that subtree carries phase children, and every span in it
    /// closed — i.e. the journal tells the request's complete story.
    pub fn reconciled(&self) -> bool {
        self.span_id.is_some() && self.spans >= 2 && self.closed
    }
}

/// Every request in the journal, in mark order. Requests are
/// discovered through marks named `<scope>.req.meta` carrying `req`,
/// `span`, and `endpoint` fields (the `res-serve` convention).
pub fn requests(events: &[Event]) -> Vec<RequestEntry> {
    let (nodes, _roots) = span_forest(events);
    let mut entries = Vec::new();
    for e in events {
        let EventKind::Mark { name, fields } = &e.kind else {
            continue;
        };
        if !name.ends_with(".req.meta") {
            continue;
        }
        let field = |key: &str| {
            fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v.clone())
                .unwrap_or_default()
        };
        let req_id = field("req");
        let endpoint = field("endpoint");
        let span_id: Option<u64> = field("span").parse().ok();
        let root = span_id.and_then(|id| nodes.iter().position(|n| n.id == id));
        let (spans, closed, dur_us) = match root {
            None => (0, false, None),
            Some(root) => {
                let mut count = 0usize;
                let mut closed = true;
                let mut stack = vec![root];
                while let Some(idx) = stack.pop() {
                    count += 1;
                    closed &= nodes[idx].dur_us.is_some();
                    stack.extend(&nodes[idx].children);
                }
                (count, closed, nodes[root].dur_us)
            }
        };
        entries.push(RequestEntry {
            req_id,
            endpoint,
            span_id: root.map(|idx| nodes[idx].id),
            spans,
            closed,
            dur_us,
        });
    }
    entries
}

/// The events belonging to span subtrees selected by `root_matches`
/// (applied to each span's name): the `Span`/`End` pairs of every span
/// at or below a matching root, in journal order. Metric and mark
/// events are not included — they are not parented to spans.
pub fn subtree_events(events: &[Event], root_matches: impl Fn(&str) -> bool) -> Vec<Event> {
    let mut keep: BTreeSet<u64> = BTreeSet::new();
    // Parent links arrive before children (spans open in order), so
    // one forward pass closes the subtree membership set.
    for e in events {
        if let EventKind::Span { id, parent, name } = &e.kind {
            let inherited = parent.is_some_and(|p| keep.contains(&p));
            if inherited || root_matches(name) {
                keep.insert(*id);
            }
        }
    }
    events
        .iter()
        .filter(|e| match &e.kind {
            EventKind::Span { id, .. } | EventKind::End { id, .. } => keep.contains(id),
            _ => false,
        })
        .cloned()
        .collect()
}

/// The rendered span trees of every subtree whose root name starts
/// with `prefix` (e.g. `serve.req` for all request trees, `replay`
/// for the replay phase).
pub fn render_span_prefix(events: &[Event], prefix: &str) -> String {
    crate::render::span_tree(&subtree_events(events, |name| name.starts_with(prefix)))
}

/// The rendered span tree of one request, found by id via its
/// `*.req.meta` mark. `None` when the journal has no such request.
pub fn render_request(events: &[Event], req_id: &str) -> Option<String> {
    let entry = requests(events).into_iter().find(|r| r.req_id == req_id)?;
    let root = entry.span_id?;
    let tree = crate::render::span_tree(&subtree_events_under(events, root));
    let mut out = format!(
        "request {} endpoint={} spans={} {}\n",
        entry.req_id,
        entry.endpoint,
        entry.spans,
        match entry.dur_us {
            Some(d) => fmt_us(d),
            None => "open".to_string(),
        }
    );
    out.push_str(&tree);
    Some(out)
}

fn subtree_events_under(events: &[Event], root: u64) -> Vec<Event> {
    let mut keep: BTreeSet<u64> = BTreeSet::new();
    keep.insert(root);
    for e in events {
        if let EventKind::Span { id, parent, .. } = &e.kind {
            if parent.is_some_and(|p| keep.contains(&p)) {
                keep.insert(*id);
            }
        }
    }
    events
        .iter()
        .filter(|e| match &e.kind {
            EventKind::Span { id, .. } | EventKind::End { id, .. } => keep.contains(id),
            _ => false,
        })
        .cloned()
        .collect()
}

/// Percentile summaries of every histogram in the journal (last flush
/// per name wins), sorted by name. Histograms journaled without bucket
/// distributions get quantiles clamped to their `max` — honest but
/// coarse.
pub fn histo_summaries(events: &[Event]) -> Vec<HistoSnapshot> {
    let mut last: std::collections::BTreeMap<String, HistoSnapshot> =
        std::collections::BTreeMap::new();
    for e in events {
        if let EventKind::Histo {
            name,
            count,
            sum,
            min,
            max,
            buckets,
        } = &e.kind
        {
            let buckets = buckets.clone().unwrap_or_default();
            last.insert(
                name.clone(),
                HistoSnapshot {
                    name: name.clone(),
                    count: *count,
                    sum: *sum,
                    min: *min,
                    max: *max,
                    p50: quantile_from_buckets(&buckets, 50, *max),
                    p95: quantile_from_buckets(&buckets, 95, *max),
                    p99: quantile_from_buckets(&buckets, 99, *max),
                    buckets,
                },
            );
        }
    }
    last.into_values().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;

    #[test]
    fn glob_matches_literals_and_stars() {
        assert!(glob_match("serve.*", "serve.queue.depth"));
        assert!(glob_match("*.depth", "serve.queue.depth"));
        assert!(glob_match("serve.*.hit.*", "serve.hot.hit.00ff"));
        assert!(glob_match("exact", "exact"));
        assert!(!glob_match("exact", "exact.more"));
        assert!(!glob_match("serve.*", "store.open"));
        assert!(glob_match("*", ""));
        assert!(!glob_match("", "x"));
    }

    #[test]
    fn counters_matching_filters_by_glob() {
        let rec = Recorder::memory();
        rec.counter("serve.admitted", 5);
        rec.counter("serve.rejected.queue", 2);
        rec.counter("kernel.nodes", 100);
        rec.finish();
        let got = counters_matching(&rec.snapshot(), "serve.*");
        assert_eq!(
            got,
            vec![
                ("serve.admitted".to_string(), 5),
                ("serve.rejected.queue".to_string(), 2)
            ]
        );
    }

    fn fake_request(rec: &Recorder, req_id: &str, endpoint: &str, close: bool) {
        let root = rec.span("serve.req");
        rec.event_with("serve.req.meta", || {
            vec![
                ("req".into(), req_id.into()),
                ("span".into(), root.id().unwrap().to_string()),
                ("endpoint".into(), endpoint.into()),
            ]
        });
        let work = root.child("work");
        drop(work);
        if !close {
            std::mem::forget(root);
        }
    }

    #[test]
    fn requests_reconstructs_subtrees() {
        let rec = Recorder::memory();
        fake_request(&rec, "c1.0", "triage", true);
        fake_request(&rec, "c1.1", "stats", true);
        let entries = requests(&rec.snapshot());
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].req_id, "c1.0");
        assert_eq!(entries[0].endpoint, "triage");
        assert_eq!(entries[0].spans, 2, "root + work child");
        assert!(entries[0].reconciled());
        assert!(entries[1].reconciled());
    }

    #[test]
    fn unclosed_request_does_not_reconcile() {
        let rec = Recorder::memory();
        fake_request(&rec, "c9.0", "triage", false);
        let entries = requests(&rec.snapshot());
        assert_eq!(entries.len(), 1);
        assert!(!entries[0].closed);
        assert!(!entries[0].reconciled());
    }

    #[test]
    fn render_request_shows_one_tree() {
        let rec = Recorder::memory();
        fake_request(&rec, "c1.0", "triage", true);
        fake_request(&rec, "c1.1", "bucket_batch", true);
        let events = rec.snapshot();
        let text = render_request(&events, "c1.1").expect("request exists");
        assert!(text.contains("c1.1"), "{text}");
        assert!(text.contains("bucket_batch"), "{text}");
        assert_eq!(
            text.lines().count(),
            3,
            "header + two spans, not the other request's tree: {text}"
        );
        assert!(render_request(&events, "c404.0").is_none());
    }

    #[test]
    fn span_prefix_filter_keeps_whole_subtrees() {
        let rec = Recorder::memory();
        {
            let outer = rec.span("serve.req");
            let _inner = outer.child("work");
        }
        {
            let _other = rec.span("replay");
        }
        let out = render_span_prefix(&rec.snapshot(), "serve.req");
        assert!(out.contains("serve.req"), "{out}");
        assert!(out.contains("work"), "children ride along: {out}");
        assert!(!out.contains("replay"), "{out}");
    }

    #[test]
    fn histo_summaries_compute_quantiles() {
        let rec = Recorder::memory();
        for v in 1..=100u64 {
            rec.observe("lat_us", v);
        }
        rec.finish();
        let summaries = histo_summaries(&rec.snapshot());
        assert_eq!(summaries.len(), 1);
        let s = &summaries[0];
        assert_eq!((s.name.as_str(), s.count), ("lat_us", 100));
        assert!(s.p50 <= s.p95 && s.p95 <= s.p99 && s.p99 <= s.max);
    }
}
