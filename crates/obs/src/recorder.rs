//! The recorder: the one handle the instrumented layers hold.

use std::collections::BTreeMap;
use std::io::{BufWriter, Write as _};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use mvm_json::{FromJson as _, Json, ToJson as _};

use crate::event::{Event, EventKind};
use crate::registry::{bucket_index, BUCKETS};

/// The journal schema version this crate writes. Every JSONL line
/// carries a leading `"v"` key so readers can tell apart (and skip)
/// lines written by a future incompatible writer instead of failing the
/// whole file; see [`read_journal_full`].
pub const JOURNAL_VERSION: u64 = 1;

/// A cheaply clonable, thread-safe tracing handle.
///
/// A recorder is either **enabled** (wrapping a shared sink: a JSONL
/// journal file or an in-memory event buffer) or **disabled** (the
/// default): a `None` that makes every call an allocation-free no-op.
/// Clones share the sink, the clock, and the metric totals, so one
/// recorder can be handed to the solver session, the store, the kernel
/// loop, and N worker threads at once.
///
/// [`scoped`](Recorder::scoped) derives a handle that prefixes every
/// metric name (`rec.scoped("replay")` turns `nodes_expanded` into
/// `replay.nodes_expanded`), which is how per-phase and per-worker
/// counters stay reconcilable against the engine's stat structs.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<Inner>>,
    /// Metric-name prefix, including its trailing `.` (empty for the
    /// root handle). Only ever non-empty on enabled recorders.
    prefix: String,
}

#[derive(Debug)]
struct Inner {
    origin: Instant,
    next_span: AtomicU64,
    sink: Mutex<SinkState>,
    metrics: Mutex<Metrics>,
}

#[derive(Debug)]
struct SinkState {
    seq: u64,
    out: SinkOut,
}

#[derive(Debug)]
enum SinkOut {
    Memory(Vec<Event>),
    File(BufWriter<std::fs::File>),
}

#[derive(Debug, Default)]
struct Metrics {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, u64>,
    histos: BTreeMap<String, HistoAcc>,
}

#[derive(Debug, Clone)]
struct HistoAcc {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: [u64; BUCKETS],
}

impl HistoAcc {
    fn trimmed_buckets(&self) -> Vec<u64> {
        let mut buckets = self.buckets.to_vec();
        while buckets.last() == Some(&0) {
            buckets.pop();
        }
        buckets
    }
}

impl Recorder {
    /// The no-op recorder: disabled, allocation-free on every call.
    pub fn disabled() -> Recorder {
        Recorder::default()
    }

    /// A recorder whose events accumulate in memory (retrieve them with
    /// [`snapshot`](Recorder::snapshot)). Used by tests and by callers
    /// that render a report without touching the filesystem.
    pub fn memory() -> Recorder {
        Recorder::with_sink(SinkOut::Memory(Vec::new()))
    }

    /// A recorder journaling to a JSONL file at `path` (parent
    /// directories are created; an existing file is truncated — each
    /// journal describes one recorder's lifetime). An I/O failure
    /// degrades to a disabled recorder with a warning on stderr, so
    /// tracing can never take the search down with it.
    pub fn journal(path: impl AsRef<Path>) -> Recorder {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                let _ = std::fs::create_dir_all(parent);
            }
        }
        match std::fs::File::create(path) {
            Ok(f) => Recorder::with_sink(SinkOut::File(BufWriter::new(f))),
            Err(e) => {
                eprintln!(
                    "res-obs: cannot open journal {}: {e}; tracing disabled",
                    path.display()
                );
                Recorder::disabled()
            }
        }
    }

    fn with_sink(out: SinkOut) -> Recorder {
        Recorder {
            inner: Some(Arc::new(Inner {
                origin: Instant::now(),
                next_span: AtomicU64::new(1),
                sink: Mutex::new(SinkState { seq: 0, out }),
                metrics: Mutex::new(Metrics::default()),
            })),
            prefix: String::new(),
        }
    }

    /// `true` when events are being recorded.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// A handle sharing this recorder's sink whose metric names gain
    /// the `seg.` prefix (nesting concatenates: scoping `w0` under
    /// `speculate` yields `speculate.w0.`). Span and mark names are
    /// prefixed the same way. On a disabled recorder this is free.
    pub fn scoped(&self, seg: &str) -> Recorder {
        match &self.inner {
            None => Recorder::disabled(),
            Some(inner) => Recorder {
                inner: Some(Arc::clone(inner)),
                prefix: format!("{}{}.", self.prefix, seg),
            },
        }
    }

    fn key(&self, name: &str) -> String {
        if self.prefix.is_empty() {
            name.to_string()
        } else {
            format!("{}{}", self.prefix, name)
        }
    }

    /// Adds `delta` to the named counter. Totals are flushed by
    /// [`finish`](Recorder::finish), not per call, so hot loops cost
    /// one map update per event and the journal stays compact.
    pub fn counter(&self, name: &str, delta: u64) {
        let Some(inner) = &self.inner else { return };
        *inner
            .metrics
            .lock()
            .expect("metrics lock")
            .counters
            .entry(self.key(name))
            .or_insert(0) += delta;
    }

    /// Sets the named gauge (last write wins).
    pub fn gauge(&self, name: &str, value: u64) {
        let Some(inner) = &self.inner else { return };
        inner
            .metrics
            .lock()
            .expect("metrics lock")
            .gauges
            .insert(self.key(name), value);
    }

    /// Records one observation in the named histogram (count/sum/min/
    /// max summary plus a power-of-two bucket distribution, so
    /// [`render`](crate::render) can print quantiles post-mortem).
    pub fn observe(&self, name: &str, value: u64) {
        let Some(inner) = &self.inner else { return };
        let mut metrics = inner.metrics.lock().expect("metrics lock");
        let h = metrics.histos.entry(self.key(name)).or_insert(HistoAcc {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; BUCKETS],
        });
        h.count += 1;
        h.sum += value;
        h.min = h.min.min(value);
        h.max = h.max.max(value);
        h.buckets[bucket_index(value)] += 1;
    }

    /// Emits a discrete [`EventKind::Mark`]. The field closure runs
    /// only when the recorder is enabled, so callers can format freely
    /// without paying on the disabled path.
    pub fn event_with(&self, name: &str, fields: impl FnOnce() -> Vec<(String, String)>) {
        let Some(inner) = &self.inner else { return };
        inner.emit(EventKind::Mark {
            name: self.key(name),
            fields: fields(),
        });
    }

    /// Opens a root span (no parent).
    pub fn span(&self, name: &str) -> Span {
        self.span_under(name, None)
    }

    /// Opens a span under an explicit parent id — for hierarchies that
    /// cross threads, where a [`Span`] guard cannot be shared but its
    /// [`id`](Span::id) can.
    pub fn span_under(&self, name: &str, parent: Option<u64>) -> Span {
        let Some(inner) = &self.inner else {
            return Span { inner: None };
        };
        let id = inner.next_span.fetch_add(1, Ordering::Relaxed);
        inner.emit(EventKind::Span {
            id,
            parent,
            name: self.key(name),
        });
        Span {
            inner: Some(SpanInner {
                rec: Arc::clone(inner),
                prefix: self.prefix.clone(),
                id,
                started: Instant::now(),
            }),
        }
    }

    /// Flushes the accumulated metric totals (as cumulative
    /// [`EventKind::Count`]/[`Gauge`](EventKind::Gauge)/
    /// [`Histo`](EventKind::Histo) events, in sorted name order) and
    /// the journal file. Call at the end of a run; calling again later
    /// appends a newer snapshot — the last total for a name wins.
    pub fn finish(&self) {
        let Some(inner) = &self.inner else { return };
        let metrics = inner.metrics.lock().expect("metrics lock");
        let counts: Vec<EventKind> = metrics
            .counters
            .iter()
            .map(|(name, &total)| EventKind::Count {
                name: name.clone(),
                total,
            })
            .chain(
                metrics
                    .gauges
                    .iter()
                    .map(|(name, &value)| EventKind::Gauge {
                        name: name.clone(),
                        value,
                    }),
            )
            .chain(metrics.histos.iter().map(|(name, h)| EventKind::Histo {
                name: name.clone(),
                count: h.count,
                sum: h.sum,
                min: h.min,
                max: h.max,
                buckets: Some(h.trimmed_buckets()),
            }))
            .collect();
        drop(metrics);
        for kind in counts {
            inner.emit(kind);
        }
        let mut sink = inner.sink.lock().expect("sink lock");
        if let SinkOut::File(f) = &mut sink.out {
            let _ = f.flush();
        }
    }

    /// Emits the current value of every gauge under this handle's
    /// prefix as [`EventKind::Gauge`] events *now*, without flushing
    /// counters or histograms. A long-lived daemon calls this per
    /// request completion so the journal records a **time series** of
    /// queue depth / hot-set size instead of a single final total;
    /// [`finish`](Recorder::finish) at shutdown still writes the last
    /// word. Events are buffered like any other emission — no fsync
    /// per call.
    pub fn flush_gauges(&self) {
        let Some(inner) = &self.inner else { return };
        let gauges: Vec<(String, u64)> = {
            let metrics = inner.metrics.lock().expect("metrics lock");
            metrics
                .gauges
                .iter()
                .filter(|(name, _)| name.starts_with(&self.prefix))
                .map(|(name, &value)| (name.clone(), value))
                .collect()
        };
        for (name, value) in gauges {
            inner.emit(EventKind::Gauge { name, value });
        }
    }

    /// Emits a fully-formed histogram snapshot event (used by
    /// [`Registry::flush_to`](crate::registry::Registry::flush_to) to
    /// journal live-registry distributions alongside recorder metrics).
    pub(crate) fn emit_histo(
        &self,
        name: &str,
        count: u64,
        sum: u64,
        min: u64,
        max: u64,
        buckets: Option<Vec<u64>>,
    ) {
        let Some(inner) = &self.inner else { return };
        inner.emit(EventKind::Histo {
            name: self.key(name),
            count,
            sum,
            min,
            max,
            buckets,
        });
    }

    /// The events recorded so far by a [`memory`](Recorder::memory)
    /// recorder (empty for journal-file and disabled recorders).
    pub fn snapshot(&self) -> Vec<Event> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        match &inner.sink.lock().expect("sink lock").out {
            SinkOut::Memory(events) => events.clone(),
            SinkOut::File(_) => Vec::new(),
        }
    }
}

impl Inner {
    fn emit(&self, kind: EventKind) {
        let t_us = self.origin.elapsed().as_micros() as u64;
        let mut sink = self.sink.lock().expect("sink lock");
        let seq = sink.seq;
        sink.seq += 1;
        let event = Event { seq, t_us, kind };
        match &mut sink.out {
            SinkOut::Memory(events) => events.push(event),
            SinkOut::File(f) => {
                // Tag every line with the schema version, leading key
                // first, so a reader can dispatch before parsing the
                // event body.
                let mut obj = match event.to_json() {
                    Json::Obj(fields) => fields,
                    other => vec![("event".to_string(), other)],
                };
                obj.insert(0, ("v".to_string(), Json::U64(JOURNAL_VERSION)));
                let _ = writeln!(f, "{}", Json::Obj(obj).to_string_compact());
            }
        }
    }
}

/// An open span. Dropping it emits the matching [`EventKind::End`]
/// with the measured duration. Obtain children with
/// [`child`](Span::child); pass [`id`](Span::id) across threads to
/// parent spans the guard itself cannot reach.
#[derive(Debug)]
pub struct Span {
    inner: Option<SpanInner>,
}

#[derive(Debug)]
struct SpanInner {
    rec: Arc<Inner>,
    prefix: String,
    id: u64,
    started: Instant,
}

impl Span {
    /// This span's journal id (`None` on a disabled recorder).
    pub fn id(&self) -> Option<u64> {
        self.inner.as_ref().map(|s| s.id)
    }

    /// Opens a child span.
    pub fn child(&self, name: &str) -> Span {
        let Some(s) = &self.inner else {
            return Span { inner: None };
        };
        let id = s.rec.next_span.fetch_add(1, Ordering::Relaxed);
        let full = if s.prefix.is_empty() {
            name.to_string()
        } else {
            format!("{}{}", s.prefix, name)
        };
        s.rec.emit(EventKind::Span {
            id,
            parent: Some(s.id),
            name: full,
        });
        Span {
            inner: Some(SpanInner {
                rec: Arc::clone(&s.rec),
                prefix: s.prefix.clone(),
                id,
                started: Instant::now(),
            }),
        }
    }

    /// Closes the span now (equivalent to dropping it).
    pub fn end(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(s) = &self.inner {
            s.rec.emit(EventKind::End {
                id: s.id,
                dur_us: s.started.elapsed().as_micros() as u64,
            });
        }
    }
}

/// A parsed journal: the events this reader understood plus a report
/// of the lines it skipped because a future writer stamped them with an
/// unknown schema version.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Journal {
    /// The version-1 events, in file order.
    pub events: Vec<Event>,
    /// `(line_number, version)` for every skipped unknown-version line
    /// (line numbers are 1-based).
    pub skipped: Vec<(usize, u64)>,
}

/// Parses a JSONL journal file, tolerating unknown schema versions.
///
/// Blank lines are skipped. A line whose `"v"` tag names a version this
/// reader does not understand is recorded in
/// [`Journal::skipped`] instead of failing the whole file — a journal
/// is append-only and long-lived, and one foreign line must not make
/// the rest unreadable. Lines with no `"v"` tag are treated as version
/// 1 (journals written before the tag existed). A line that is not
/// valid JSON at all, or that claims version 1 but does not parse as an
/// [`Event`], is still a hard error naming its line number.
pub fn read_journal_full(path: impl AsRef<Path>) -> Result<Journal, String> {
    let path = path.as_ref();
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("reading {}: {e}", path.display()))?;
    let mut journal = Journal::default();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let value = mvm_json::parse(line)
            .map_err(|e| format!("{}:{}: {}", path.display(), i + 1, e.message))?;
        let version = value
            .get("v")
            .and_then(Json::as_u64)
            .unwrap_or(JOURNAL_VERSION);
        if version != JOURNAL_VERSION {
            journal.skipped.push((i + 1, version));
            continue;
        }
        let event = Event::from_json(&value)
            .map_err(|e| format!("{}:{}: {}", path.display(), i + 1, e.message))?;
        journal.events.push(event);
    }
    Ok(journal)
}

/// Parses a JSONL journal file back into events. Unknown-version lines
/// are silently skipped; use [`read_journal_full`] to see the skip
/// report.
pub fn read_journal(path: impl AsRef<Path>) -> Result<Vec<Event>, String> {
    read_journal_full(path).map(|j| j.events)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_inert() {
        let rec = Recorder::disabled();
        assert!(!rec.enabled());
        rec.counter("c", 1);
        rec.gauge("g", 2);
        rec.observe("h", 3);
        rec.event_with("m", || vec![("k".into(), "v".into())]);
        let span = rec.span("s");
        assert_eq!(span.id(), None);
        let child = span.child("t");
        assert_eq!(child.id(), None);
        rec.finish();
        assert!(rec.snapshot().is_empty());
        assert!(!rec.scoped("x").enabled());
    }

    #[test]
    fn spans_nest_and_close_in_order() {
        let rec = Recorder::memory();
        let outer = rec.span("outer");
        let outer_id = outer.id().unwrap();
        {
            let inner = outer.child("inner");
            assert_ne!(inner.id(), outer.id());
        }
        drop(outer);
        let events = rec.snapshot();
        assert_eq!(events.len(), 4, "two opens + two closes");
        match &events[1].kind {
            EventKind::Span { parent, name, .. } => {
                assert_eq!(*parent, Some(outer_id));
                assert_eq!(name, "inner");
            }
            other => panic!("expected inner span open, got {other:?}"),
        }
        // The inner span closes before the outer one.
        assert!(matches!(events[2].kind, EventKind::End { .. }));
        assert!(matches!(events[3].kind, EventKind::End { id, .. } if id == outer_id));
        // Sequence numbers are dense and ordered.
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.seq, i as u64);
        }
    }

    #[test]
    fn scoped_prefixes_compose() {
        let rec = Recorder::memory();
        let phase = rec.scoped("replay");
        let worker = phase.scoped("w0");
        phase.counter("nodes", 2);
        worker.counter("nodes", 5);
        rec.counter("nodes", 1);
        rec.finish();
        let totals = crate::render::counter_totals(&rec.snapshot());
        assert_eq!(totals["nodes"], 1);
        assert_eq!(totals["replay.nodes"], 2);
        assert_eq!(totals["replay.w0.nodes"], 5);
    }

    #[test]
    fn metrics_flush_as_cumulative_totals() {
        let rec = Recorder::memory();
        rec.counter("a", 1);
        rec.counter("a", 2);
        rec.gauge("g", 9);
        rec.gauge("g", 4);
        rec.observe("h", 10);
        rec.observe("h", 2);
        rec.finish();
        rec.counter("a", 1);
        rec.finish();
        let events = rec.snapshot();
        let totals = crate::render::counter_totals(&events);
        assert_eq!(totals["a"], 4, "second flush supersedes the first");
        let gauge = events.iter().rev().find_map(|e| match &e.kind {
            EventKind::Gauge { name, value } if name == "g" => Some(*value),
            _ => None,
        });
        assert_eq!(gauge, Some(4), "gauge keeps the last write");
        let histo = events.iter().find_map(|e| match &e.kind {
            EventKind::Histo {
                name,
                count,
                sum,
                min,
                max,
                ..
            } if name == "h" => Some((*count, *sum, *min, *max)),
            _ => None,
        });
        assert_eq!(histo, Some((2, 12, 2, 10)));
    }

    #[test]
    fn journal_file_round_trips() {
        let dir = std::env::temp_dir().join(format!("res-obs-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("journal.jsonl");
        let rec = Recorder::journal(&path);
        assert!(rec.enabled());
        {
            let _run = rec.span("run");
            rec.counter("kernel.nodes_expanded", 7);
        }
        rec.finish();
        let events = read_journal(&path).expect("journal must parse");
        assert!(events.len() >= 3);
        assert_eq!(
            crate::render::counter_totals(&events)["kernel.nodes_expanded"],
            7
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn journal_lines_carry_the_schema_tag() {
        let dir = std::env::temp_dir().join(format!("res-obs-vtag-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("journal.jsonl");
        let rec = Recorder::journal(&path);
        rec.counter("c", 1);
        rec.finish();
        let text = std::fs::read_to_string(&path).unwrap();
        for line in text.lines().filter(|l| !l.trim().is_empty()) {
            assert!(
                line.starts_with("{\"v\":1,"),
                "every line leads with the version tag: {line}"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_version_lines_are_skipped_and_reported() {
        let dir = std::env::temp_dir().join(format!("res-obs-vskip-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("journal.jsonl");
        let rec = Recorder::journal(&path);
        rec.counter("kept", 3);
        rec.finish();
        drop(rec);
        // A future writer appends a line this reader cannot understand.
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        writeln!(f, "{}", r#"{"v":2,"seq":99,"payload":"from the future"}"#).unwrap();
        writeln!(
            f,
            "{}",
            r#"{"v":1,"seq":9,"t_us":1,"kind":{"Gauge":{"name":"late","value":7}}}"#
        )
        .unwrap();
        drop(f);
        let journal = read_journal_full(&path).expect("tolerant read succeeds");
        assert_eq!(journal.skipped.len(), 1);
        assert_eq!(journal.skipped[0].1, 2, "reports the foreign version");
        assert!(
            journal
                .events
                .iter()
                .any(|e| matches!(&e.kind, EventKind::Gauge { name, .. } if name == "late")),
            "v1 lines after the foreign line still parse"
        );
        assert_eq!(
            read_journal(&path).unwrap().len(),
            journal.events.len(),
            "read_journal delegates to the tolerant reader"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn flush_gauges_writes_a_time_series() {
        let rec = Recorder::memory();
        let serve = rec.scoped("serve");
        serve.gauge("queue.depth", 1);
        serve.flush_gauges();
        serve.gauge("queue.depth", 4);
        serve.flush_gauges();
        rec.gauge("other", 9);
        serve.flush_gauges();
        let depths: Vec<u64> = rec
            .snapshot()
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::Gauge { name, value } if name == "serve.queue.depth" => Some(*value),
                _ => None,
            })
            .collect();
        assert_eq!(depths, vec![1, 4, 4], "one sample per flush, in order");
        assert!(
            !rec.snapshot()
                .iter()
                .any(|e| matches!(&e.kind, EventKind::Gauge { name, .. } if name == "other")),
            "a scoped flush only covers gauges under its prefix"
        );
    }

    #[test]
    fn observe_accumulates_buckets() {
        let rec = Recorder::memory();
        rec.observe("h", 0);
        rec.observe("h", 1);
        rec.observe("h", 1000);
        rec.finish();
        let buckets = rec.snapshot().iter().find_map(|e| match &e.kind {
            EventKind::Histo { name, buckets, .. } if name == "h" => buckets.clone(),
            _ => None,
        });
        let buckets = buckets.expect("finish emits bucketed histos");
        assert_eq!(buckets.iter().sum::<u64>(), 3);
        assert_eq!(buckets[0], 1, "zero lands in bucket 0");
        assert_eq!(buckets[1], 1);
        assert_eq!(buckets[crate::registry::bucket_index(1000)], 1);
    }

    #[test]
    fn unwritable_journal_degrades_to_disabled() {
        let rec = Recorder::journal("/dev/null/not-a-dir/journal.jsonl");
        assert!(!rec.enabled(), "bad path must degrade, not panic");
    }

    #[test]
    fn recorder_is_shareable_across_threads() {
        let rec = Recorder::memory();
        let parent = rec.span("speculate");
        let parent_id = parent.id();
        std::thread::scope(|scope| {
            for w in 0..4 {
                let rec = rec.clone();
                scope.spawn(move || {
                    let _span = rec.span_under(&format!("worker{w}"), parent_id);
                    rec.scoped("solver").counter("queries", 1);
                });
            }
        });
        drop(parent);
        rec.finish();
        let events = rec.snapshot();
        let workers = events
            .iter()
            .filter(|e| matches!(&e.kind, EventKind::Span { parent, .. } if *parent == parent_id))
            .count();
        assert_eq!(workers, 4);
        assert_eq!(
            crate::render::counter_totals(&events)["solver.queries"],
            4,
            "clones share one counter map"
        );
    }
}
