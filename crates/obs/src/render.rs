//! Pretty-printing a journal: span tree, top counters, marks.
//!
//! The goal is that a cut run can be explained from its journal alone:
//! `render` shows where the time went (the span hierarchy with
//! durations), what the totals were (counters/gauges/histograms), and
//! what discrete things happened (marks, e.g. `kernel.cut` or
//! `store.degraded`).

use std::collections::BTreeMap;

use crate::event::{Event, EventKind};

/// The final cumulative counter totals in a journal, by name. Later
/// flushes supersede earlier ones (events are scanned in order, last
/// total wins), mirroring the append-only journal semantics.
pub fn counter_totals(events: &[Event]) -> BTreeMap<String, u64> {
    let mut totals = BTreeMap::new();
    for e in events {
        if let EventKind::Count { name, total } = &e.kind {
            totals.insert(name.clone(), *total);
        }
    }
    totals
}

/// Final gauge values by name (last write wins).
pub fn gauge_values(events: &[Event]) -> BTreeMap<String, u64> {
    let mut values = BTreeMap::new();
    for e in events {
        if let EventKind::Gauge { name, value } = &e.kind {
            values.insert(name.clone(), *value);
        }
    }
    values
}

#[derive(Debug, Clone)]
pub(crate) struct SpanNode {
    pub(crate) id: u64,
    pub(crate) name: String,
    pub(crate) start_us: u64,
    pub(crate) dur_us: Option<u64>,
    pub(crate) children: Vec<usize>,
}

/// The span forest of a journal: every span as a node (in start
/// order), plus the indices of the roots. A span whose parent id was
/// never opened in these events is treated as a root, so a filtered
/// event slice still builds a forest. Shared with
/// [`query`](crate::query), which walks subtrees instead of rendering.
pub(crate) fn span_forest(events: &[Event]) -> (Vec<SpanNode>, Vec<usize>) {
    let mut nodes: Vec<SpanNode> = Vec::new();
    let mut index_of: BTreeMap<u64, usize> = BTreeMap::new();
    let mut roots: Vec<usize> = Vec::new();
    for e in events {
        match &e.kind {
            EventKind::Span { id, parent, name } => {
                let idx = nodes.len();
                nodes.push(SpanNode {
                    id: *id,
                    name: name.clone(),
                    start_us: e.t_us,
                    dur_us: None,
                    children: Vec::new(),
                });
                index_of.insert(*id, idx);
                match parent.and_then(|p| index_of.get(&p).copied()) {
                    Some(p) => nodes[p].children.push(idx),
                    None => roots.push(idx),
                }
            }
            EventKind::End { id, dur_us } => {
                if let Some(&idx) = index_of.get(id) {
                    nodes[idx].dur_us = Some(*dur_us);
                }
            }
            _ => {}
        }
    }
    (nodes, roots)
}

/// Renders the span hierarchy as an indented tree with durations, in
/// start order. Spans with no recorded `End` (the run died or the
/// journal was truncated) print as `open`.
pub fn span_tree(events: &[Event]) -> String {
    let (nodes, roots) = span_forest(events);
    let mut out = String::new();
    for &root in &roots {
        render_span(&nodes, root, 0, &mut out);
    }
    out
}

fn render_span(nodes: &[SpanNode], idx: usize, depth: usize, out: &mut String) {
    let n = &nodes[idx];
    for _ in 0..depth {
        out.push_str("  ");
    }
    match n.dur_us {
        Some(d) => out.push_str(&format!(
            "{} [{}] +{} {}\n",
            n.name,
            n.id,
            fmt_us(n.start_us),
            fmt_us(d)
        )),
        None => out.push_str(&format!(
            "{} [{}] +{} open\n",
            n.name,
            n.id,
            fmt_us(n.start_us)
        )),
    }
    for &c in &n.children {
        render_span(nodes, c, depth + 1, out);
    }
}

pub(crate) fn fmt_us(us: u64) -> String {
    if us >= 1_000_000 {
        format!("{}.{:03}s", us / 1_000_000, (us % 1_000_000) / 1_000)
    } else if us >= 1_000 {
        format!("{}.{:03}ms", us / 1_000, us % 1_000)
    } else {
        format!("{us}us")
    }
}

/// The `limit` largest counters by total, descending (ties broken by
/// name so output is deterministic).
pub fn top_counters(events: &[Event], limit: usize) -> Vec<(String, u64)> {
    let mut totals: Vec<(String, u64)> = counter_totals(events).into_iter().collect();
    totals.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    totals.truncate(limit);
    totals
}

/// Full human-readable report: span tree, top counters, gauges,
/// histograms, and marks.
pub fn render(events: &[Event]) -> String {
    let mut out = String::new();
    out.push_str("spans:\n");
    let tree = span_tree(events);
    if tree.is_empty() {
        out.push_str("  (none)\n");
    } else {
        for line in tree.lines() {
            out.push_str("  ");
            out.push_str(line);
            out.push('\n');
        }
    }

    let counters = top_counters(events, 20);
    if !counters.is_empty() {
        out.push_str("counters:\n");
        for (name, total) in counters {
            out.push_str(&format!("  {name:<40} {total}\n"));
        }
    }

    let gauges = gauge_values(events);
    if !gauges.is_empty() {
        out.push_str("gauges:\n");
        for (name, value) in gauges {
            out.push_str(&format!("  {name:<40} {value}\n"));
        }
    }

    let mut histos: BTreeMap<String, (u64, u64, u64, u64, Option<Vec<u64>>)> = BTreeMap::new();
    for e in events {
        if let EventKind::Histo {
            name,
            count,
            sum,
            min,
            max,
            buckets,
        } = &e.kind
        {
            histos.insert(name.clone(), (*count, *sum, *min, *max, buckets.clone()));
        }
    }
    if !histos.is_empty() {
        out.push_str("histograms:\n");
        for (name, (count, sum, min, max, buckets)) in histos {
            let mean = if count == 0 { 0 } else { sum / count };
            out.push_str(&format!(
                "  {name:<40} n={count} mean={mean} min={min} max={max}"
            ));
            // Quantiles are only honest when the distribution was
            // recorded; pre-bucket journals fall back to the summary.
            if let Some(buckets) = buckets.filter(|b| !b.is_empty()) {
                let q = |pct| crate::registry::quantile_from_buckets(&buckets, pct, max);
                out.push_str(&format!(" p50={} p95={} p99={}", q(50), q(95), q(99)));
            }
            out.push('\n');
        }
    }

    let marks: Vec<&Event> = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Mark { .. }))
        .collect();
    if !marks.is_empty() {
        out.push_str("marks:\n");
        for e in marks {
            if let EventKind::Mark { name, fields } = &e.kind {
                out.push_str(&format!("  +{} {name}", fmt_us(e.t_us)));
                for (k, v) in fields {
                    out.push_str(&format!(" {k}={v}"));
                }
                out.push('\n');
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;

    #[test]
    fn tree_shows_nesting_and_durations() {
        let rec = Recorder::memory();
        {
            let run = rec.span("synthesize");
            let _absorb = run.child("absorb");
            let _replay = run.child("replay");
        }
        let tree = span_tree(&rec.snapshot());
        let lines: Vec<&str> = tree.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("synthesize"));
        assert!(lines[1].starts_with("  absorb"));
        assert!(lines[2].starts_with("  replay"));
        assert!(!tree.contains("open"), "all spans closed: {tree}");
    }

    #[test]
    fn unclosed_spans_render_as_open() {
        let rec = Recorder::memory();
        let run = rec.span("synthesize");
        let tree = span_tree(&rec.snapshot());
        assert!(tree.contains("open"), "{tree}");
        drop(run);
    }

    #[test]
    fn top_counters_sorts_desc_then_by_name() {
        let rec = Recorder::memory();
        rec.counter("b", 5);
        rec.counter("a", 5);
        rec.counter("c", 9);
        rec.finish();
        let top = top_counters(&rec.snapshot(), 2);
        assert_eq!(top, vec![("c".to_string(), 9), ("a".to_string(), 5)]);
    }

    #[test]
    fn render_includes_all_sections() {
        let rec = Recorder::memory();
        {
            let _run = rec.span("run");
            rec.counter("kernel.nodes_expanded", 41);
            rec.gauge("workers", 4);
            rec.observe("suffix.len", 6);
            rec.event_with("store.open", || vec![("outcome".into(), "Loaded".into())]);
        }
        rec.finish();
        let report = render(&rec.snapshot());
        for needle in [
            "spans:",
            "run",
            "counters:",
            "kernel.nodes_expanded",
            "gauges:",
            "workers",
            "histograms:",
            "suffix.len",
            "marks:",
            "store.open outcome=Loaded",
        ] {
            assert!(report.contains(needle), "missing {needle:?} in:\n{report}");
        }
    }

    #[test]
    fn histogram_section_prints_quantiles_when_buckets_present() {
        let rec = Recorder::memory();
        for v in [10u64, 20, 30, 400, 5000] {
            rec.observe("rtt_us", v);
        }
        rec.finish();
        let report = render(&rec.snapshot());
        assert!(report.contains("p50="), "{report}");
        assert!(report.contains("p95="), "{report}");
        assert!(report.contains("p99="), "{report}");
        // A bucketless histogram event renders the summary only.
        let legacy = vec![crate::Event {
            seq: 0,
            t_us: 0,
            kind: EventKind::Histo {
                name: "old".into(),
                count: 1,
                sum: 5,
                min: 5,
                max: 5,
                buckets: None,
            },
        }];
        let report = render(&legacy);
        assert!(report.contains("old"), "{report}");
        assert!(!report.contains("p50="), "{report}");
    }

    #[test]
    fn fmt_us_scales() {
        assert_eq!(fmt_us(12), "12us");
        assert_eq!(fmt_us(4_230), "4.230ms");
        assert_eq!(fmt_us(7_004_230), "7.004s");
    }
}
