//! Coredump comparison.
//!
//! Replay verification (paper §2.1 requirement 5: "execution E
//! deterministically leads to C") needs a precise notion of "the replay
//! reached a state compatible with the coredump". [`diff_dumps`]
//! reports every observable divergence between two dumps.

use mvm_json::json_struct;

use mvm_isa::Loc;
use mvm_machine::ThreadId;

use crate::dump::Coredump;

/// Differences between two coredumps.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DumpDiff {
    /// Byte addresses whose contents differ (capped).
    pub memory_bytes: Vec<u64>,
    /// Threads present in one dump but not the other.
    pub thread_set: Vec<ThreadId>,
    /// Threads whose program counters differ: `(tid, pc_a, pc_b)`.
    pub pcs: Vec<(ThreadId, Loc, Loc)>,
    /// Threads whose innermost-frame registers differ: `(tid, reg)`.
    pub registers: Vec<(ThreadId, u8)>,
    /// `true` if the fault descriptors differ.
    pub fault_differs: bool,
}

json_struct!(DumpDiff {
    memory_bytes,
    thread_set,
    pcs,
    registers,
    fault_differs,
});

impl DumpDiff {
    /// Returns `true` when the dumps are observably identical.
    pub fn is_empty(&self) -> bool {
        self.memory_bytes.is_empty()
            && self.thread_set.is_empty()
            && self.pcs.is_empty()
            && self.registers.is_empty()
            && !self.fault_differs
    }
}

/// Compares two dumps, reporting up to `mem_limit` differing memory
/// bytes.
pub fn diff_dumps(a: &Coredump, b: &Coredump, mem_limit: usize) -> DumpDiff {
    let mut d = DumpDiff {
        memory_bytes: a.memory.diff(&b.memory, mem_limit),
        fault_differs: a.fault != b.fault,
        ..DumpDiff::default()
    };
    let tids_a: Vec<ThreadId> = a.threads.iter().map(|t| t.tid).collect();
    let tids_b: Vec<ThreadId> = b.threads.iter().map(|t| t.tid).collect();
    for &t in &tids_a {
        if !tids_b.contains(&t) {
            d.thread_set.push(t);
        }
    }
    for &t in &tids_b {
        if !tids_a.contains(&t) {
            d.thread_set.push(t);
        }
    }
    for ta in &a.threads {
        let Some(tb) = b.thread(ta.tid) else { continue };
        if ta.pc() != tb.pc() {
            d.pcs.push((ta.tid, ta.pc(), tb.pc()));
        }
        let ra = &ta.top().regs;
        let rb = &tb.top().regs;
        for i in 0..ra.len().min(rb.len()) {
            if ra[i] != rb[i] {
                d.registers.push((ta.tid, i as u8));
            }
        }
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inject;
    use mvm_isa::asm::assemble;
    use mvm_machine::{Machine, MachineConfig};

    fn dump() -> Coredump {
        let p = assemble(
            "global g 8 = 5\nfunc main() {\nentry:\n  addr r0, g\n  assert 0, \"x\"\n  halt\n}",
        )
        .unwrap();
        let mut m = Machine::new(p, MachineConfig::default());
        m.run();
        Coredump::capture(&m)
    }

    #[test]
    fn identical_dumps_have_empty_diff() {
        let d = dump();
        assert!(diff_dumps(&d, &d.clone(), 100).is_empty());
    }

    #[test]
    fn memory_corruption_detected() {
        let a = dump();
        let mut b = a.clone();
        inject::flip_memory_bit_at(&mut b, mvm_isa::layout::GLOBAL_BASE, 1);
        let d = diff_dumps(&a, &b, 100);
        assert_eq!(d.memory_bytes, vec![mvm_isa::layout::GLOBAL_BASE]);
        assert!(!d.is_empty());
    }

    #[test]
    fn register_corruption_detected() {
        let a = dump();
        let mut b = a.clone();
        inject::corrupt_register(&mut b, 3);
        let d = diff_dumps(&a, &b, 100);
        assert_eq!(d.registers.len(), 1);
    }

    #[test]
    fn missing_thread_detected() {
        let a = dump();
        let mut b = a.clone();
        let mut extra = a.threads[0].clone();
        extra.tid = 42;
        b.threads.push(extra);
        let d = diff_dumps(&a, &b, 100);
        assert_eq!(d.thread_set, vec![42]);
    }
}
