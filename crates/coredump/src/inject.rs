//! Post-hoc hardware-fault injection into coredumps.
//!
//! Paper §3.2: hardware errors (multi-bit DRAM failures, CPU
//! miscomputation, rogue DMA) produce coredumps that *no feasible
//! software execution explains*. To evaluate the RES hardware-error
//! verdict we need labeled examples of such dumps; these injectors
//! manufacture them by corrupting an otherwise-genuine software-bug dump
//! after capture — exactly how a flipped DRAM bit would present.

use mvm_json::json_enum;
use mvm_prng::XorShift64Star;

use mvm_isa::{Inst, Operand, Program, Reg};

use crate::dump::Coredump;

/// What an injector did, for ground-truth labels in experiments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InjectionReport {
    /// A memory bit was flipped.
    MemoryBitFlip {
        /// Corrupted address.
        addr: u64,
        /// Which bit (0..8) of the byte.
        bit: u8,
        /// Byte value before the flip.
        before: u8,
        /// Byte value after.
        after: u8,
    },
    /// A register in a thread frame was corrupted (proxy for a CPU
    /// datapath error whose wrong result was spilled or still live).
    RegisterCorrupt {
        /// Thread whose frame was corrupted.
        tid: u64,
        /// Frame index (0 = outermost).
        frame: usize,
        /// The register.
        reg: u8,
        /// Value before.
        before: u64,
        /// Value after.
        after: u64,
    },
}

json_enum!(InjectionReport {
    MemoryBitFlip { addr: u64, bit: u8, before: u8, after: u8 },
    RegisterCorrupt { tid: u64, frame: usize, reg: u8, before: u64, after: u64 },
});

/// Deterministic xorshift for seedable injection-site selection.
fn xorshift(state: &mut u64) -> u64 {
    XorShift64Star::step(state)
}

/// Flips one bit of a mapped memory byte, chosen by `seed`.
///
/// Returns `None` if the dump has no mapped memory. Zero bytes are
/// preferred targets only in the sense that any mapped byte qualifies;
/// the flip is made visibly (before ≠ after) by construction.
pub fn flip_memory_bit(dump: &mut Coredump, seed: u64) -> Option<InjectionReport> {
    let pages: Vec<u64> = dump.memory.iter_pages().map(|(b, _)| b).collect();
    if pages.is_empty() {
        return None;
    }
    let mut s = seed;
    let page = pages[(xorshift(&mut s) % pages.len() as u64) as usize];
    let offset = xorshift(&mut s) % 4096;
    let bit = (xorshift(&mut s) % 8) as u8;
    let addr = page + offset;
    let before = dump.memory.read_byte(addr).unwrap_or(0);
    let after = before ^ (1 << bit);
    dump.memory.write_byte(addr, after);
    Some(InjectionReport::MemoryBitFlip {
        addr,
        bit,
        before,
        after,
    })
}

/// Flips one bit of the byte at a *specific* address.
pub fn flip_memory_bit_at(dump: &mut Coredump, addr: u64, bit: u8) -> InjectionReport {
    let before = dump.memory.read_byte(addr).unwrap_or(0);
    let after = before ^ (1 << (bit % 8));
    dump.memory.write_byte(addr, after);
    InjectionReport::MemoryBitFlip {
        addr,
        bit: bit % 8,
        before,
        after,
    }
}

/// Corrupts a register of the faulting thread's innermost frame, chosen
/// by `seed` (a CPU-error proxy: the bad ALU result is still live).
pub fn corrupt_register(dump: &mut Coredump, seed: u64) -> InjectionReport {
    let mut s = seed;
    let reg = (xorshift(&mut s) % Reg::COUNT as u64) as u8;
    let delta = xorshift(&mut s) | 1;
    let tid = dump.faulting_tid;
    let t = dump
        .threads
        .iter_mut()
        .find(|t| t.tid == tid)
        .expect("dump lacks faulting thread");
    let frame_idx = t.frames.len() - 1;
    let before = t.frames[frame_idx].reg(Reg(reg));
    let after = before ^ delta;
    t.frames[frame_idx].set_reg(Reg(reg), after);
    InjectionReport::RegisterCorrupt {
        tid,
        frame: frame_idx,
        reg,
        before,
        after,
    }
}

/// Corrupts a specific register (counting frames from the top of the
/// faulting thread's stack) by XOR-ing `xor` into it.
///
/// # Panics
///
/// Panics if the dump lacks the faulting thread or the frame index is
/// out of range.
pub fn corrupt_register_at(
    dump: &mut Coredump,
    frame_from_top: usize,
    reg: Reg,
    xor: u64,
) -> InjectionReport {
    let tid = dump.faulting_tid;
    let t = dump
        .threads
        .iter_mut()
        .find(|t| t.tid == tid)
        .expect("dump lacks faulting thread");
    let frame_idx = t.frames.len() - 1 - frame_from_top;
    let before = t.frames[frame_idx].reg(reg);
    let after = before ^ (xor | 1);
    t.frames[frame_idx].set_reg(reg, after);
    InjectionReport::RegisterCorrupt {
        tid,
        frame: frame_idx,
        reg: reg.0,
        before,
        after,
    }
}

/// Which hardware failure a post-hoc corruption imitates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HwFlavor {
    /// A flipped DRAM bit: one bit of a mapped memory byte.
    BitFlip,
    /// A CPU datapath error: a live register's value is wrong.
    RegCorrupt,
}

impl HwFlavor {
    /// Stable name for labels and reports.
    pub fn name(self) -> &'static str {
        match self {
            HwFlavor::BitFlip => "bit-flip",
            HwFlavor::RegCorrupt => "reg-corrupt",
        }
    }
}

/// Sites whose corruption is *consequential* — the §3.2 examples all
/// corrupt state involved in the failure (the miscomputed addition's
/// result, the value the program just wrote). Returns registers defined
/// and global addresses stored by the faulting block's already-executed
/// portion.
pub fn consequential_sites(program: &Program, dump: &Coredump) -> (Vec<Reg>, Vec<u64>) {
    let pc = dump.fault_pc();
    let scan = |func: mvm_isa::FuncId, block: mvm_isa::BlockId, upto: usize| {
        let blk = program.func(func).block(block);
        let mut regs = Vec::new();
        let mut mems = Vec::new();
        let mut referenced_globals = Vec::new();
        // Track statically resolvable register contents (global
        // addresses; alloc results via the dump's heap table).
        let mut addr_regs: std::collections::HashMap<Reg, u64> = std::collections::HashMap::new();
        for inst in blk.insts.iter().take(upto) {
            match inst {
                Inst::AddrOf { dst, global } => {
                    let a = program.global(*global).addr;
                    addr_regs.insert(*dst, a);
                    referenced_globals.push(a);
                }
                Inst::Alloc { dst, .. } => {
                    if let Some(meta) = dump.heap_allocs.last() {
                        addr_regs.insert(*dst, meta.base);
                    }
                }
                _ => {}
            }
            if let Some(d) = inst.def_reg() {
                if !regs.contains(&d) {
                    regs.push(d);
                }
            }
            if let Inst::Store {
                addr: Operand::Reg(a),
                offset,
                ..
            } = inst
            {
                if let Some(base) = addr_regs.get(a) {
                    mems.push(base.wrapping_add(*offset as u64));
                }
            }
        }
        (regs, mems, referenced_globals)
    };
    let (regs, mems, referenced) = scan(pc.func, pc.block, pc.inst as usize);
    // Preference chain for registers: the partial range's own defs (the
    // most recently computed values — §3.2's "miscomputed addition"),
    // then the unique predecessor's defs.
    let mut out_regs = regs;
    let mut out_mems = mems;
    let mut out_referenced = referenced;
    if out_regs.is_empty() || out_mems.is_empty() {
        let cfg = mvm_isa::cfg::Cfg::build(program.func(pc.func));
        let preds = cfg.preds(pc.block);
        if preds.len() == 1 {
            let blen = program.func(pc.func).block(preds[0]).insts.len();
            let (pregs, pmems, preferenced) = scan(pc.func, preds[0], blen);
            if out_regs.is_empty() {
                out_regs = pregs;
            }
            if out_mems.is_empty() {
                out_mems = pmems;
            }
            out_referenced.extend(preferenced);
        }
    }
    // Memory fallback: a global the failing code names whose word is
    // non-zero (so some execution wrote or depends on it).
    if out_mems.is_empty() {
        let blk = program.func(pc.func).block(pc.block);
        for inst in &blk.insts {
            if let Inst::AddrOf { global, .. } = inst {
                out_referenced.push(program.global(*global).addr);
            }
        }
        for a in out_referenced {
            if dump.memory.read(a, mvm_isa::Width::W8) != 0 {
                out_mems.push(a);
                break;
            }
        }
    }
    (out_regs, out_mems)
}

/// Corrupts `dump` at a consequential site (preferring state the
/// failing code actually computed), falling back to a random site when
/// no consequential one is resolvable. Deterministic in `seed`.
pub fn corrupt_consequential(
    program: &Program,
    dump: &mut Coredump,
    seed: u64,
    flavor: HwFlavor,
) -> Option<InjectionReport> {
    let (regs, mems) = consequential_sites(program, dump);
    match flavor {
        HwFlavor::BitFlip => match mems.first() {
            Some(&addr) => Some(flip_memory_bit_at(dump, addr, (seed % 8) as u8)),
            None => flip_memory_bit(dump, seed ^ 0xf11b),
        },
        HwFlavor::RegCorrupt => match regs.last() {
            Some(&reg) => Some(corrupt_register_at(dump, 0, reg, seed | 0x10)),
            None => Some(corrupt_register(dump, seed ^ 0xc0de)),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvm_isa::asm::assemble;
    use mvm_machine::{Machine, MachineConfig};

    fn dump() -> Coredump {
        let p = assemble(
            "global g 8 = 5\nfunc main() {\nentry:\n  addr r0, g\n  load r1, [r0]\n  assert 0, \"x\"\n  halt\n}",
        )
        .unwrap();
        let mut m = Machine::new(p, MachineConfig::default());
        m.run();
        Coredump::capture(&m)
    }

    #[test]
    fn bit_flip_changes_exactly_one_bit() {
        let mut d = dump();
        let orig = d.clone();
        let r = flip_memory_bit(&mut d, 1234).unwrap();
        let InjectionReport::MemoryBitFlip {
            addr,
            before,
            after,
            ..
        } = r
        else {
            panic!("wrong report kind")
        };
        assert_eq!((before ^ after).count_ones(), 1);
        assert_eq!(d.memory.read_byte(addr).unwrap_or(0), after);
        assert_eq!(orig.memory.diff(&d.memory, 10), vec![addr]);
    }

    #[test]
    fn bit_flip_is_seed_deterministic() {
        let mut a = dump();
        let mut b = dump();
        assert_eq!(flip_memory_bit(&mut a, 7), flip_memory_bit(&mut b, 7));
        assert_eq!(a, b);
    }

    #[test]
    fn targeted_flip_hits_requested_address() {
        let mut d = dump();
        let g_addr = mvm_isa::layout::GLOBAL_BASE;
        let r = flip_memory_bit_at(&mut d, g_addr, 0);
        let InjectionReport::MemoryBitFlip { before, after, .. } = r else {
            panic!("wrong report kind")
        };
        assert_eq!(before, 5);
        assert_eq!(after, 4);
        assert_eq!(d.memory.read_byte(g_addr), Some(4));
    }

    #[test]
    fn register_corruption_changes_value() {
        let mut d = dump();
        let r = corrupt_register(&mut d, 99);
        let InjectionReport::RegisterCorrupt {
            tid,
            frame,
            reg,
            before,
            after,
        } = r
        else {
            panic!("wrong report kind")
        };
        assert_ne!(before, after);
        let t = d.thread(tid).unwrap();
        assert_eq!(t.frames[frame].reg(Reg(reg)), after);
    }
}
