//! # Coredumps for the MicroVM
//!
//! `mvm-core` defines the coredump format that reverse execution
//! synthesis consumes: a post-failure snapshot of memory, thread
//! contexts, allocator metadata, the fault descriptor, and the free
//! "breadcrumbs" (LBR ring, error log) of paper §2.4.
//!
//! The crate also provides:
//!
//! * [`Minidump`] — the stack-and-registers-only subset that forward
//!   execution synthesis used (paper §1: "RES interprets the entire
//!   coredump, not just a minidump, which makes RES strictly more
//!   powerful"),
//! * [`inject`] — post-hoc hardware-fault injectors (memory bit flips,
//!   register corruption) that manufacture the inconsistent dumps of the
//!   paper's §3.2 hardware-error use case, and
//! * [`diff`] — dump comparison, used to verify that replaying a
//!   synthesized suffix reproduces the original failure state.

pub mod diff;
pub mod dump;
pub mod inject;
pub mod minidump;

pub use diff::{diff_dumps, DumpDiff};
pub use dump::{Coredump, StackSignature};
pub use inject::{
    consequential_sites, corrupt_consequential, corrupt_register, corrupt_register_at,
    flip_memory_bit, flip_memory_bit_at, HwFlavor, InjectionReport,
};
pub use minidump::Minidump;
