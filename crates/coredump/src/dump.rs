//! The coredump format.

use mvm_json::json_struct;

use mvm_isa::Loc;
use mvm_machine::{
    AllocMeta,
    Fault,
    LbrEntry,
    LogRecord,
    Machine,
    Memory,
    ThreadId,
    ThreadState, //
};

/// A complete post-failure snapshot — the sole input RES needs besides
/// the program itself (paper §2.1: the input is `<C, PS>`).
///
/// Everything here is information a production system collects "for
/// free" after a crash: the memory image, per-thread contexts (the
/// MicroVM convention stores each frame's registers, so the stack walk
/// is exact), heap allocator metadata (parsed from the dump in real
/// tools), the fault descriptor, and the cheap breadcrumbs of §2.4.
#[derive(Debug, Clone, PartialEq)]
pub struct Coredump {
    /// Name of the program that crashed (matches `Program` identity).
    pub program_name: String,
    /// Full memory image at the fault.
    pub memory: Memory,
    /// Every thread's context.
    pub threads: Vec<ThreadState>,
    /// The fault that killed the execution.
    pub fault: Fault,
    /// Which thread faulted.
    pub faulting_tid: ThreadId,
    /// Global step count at the fault (diagnostic only; RES never reads
    /// it).
    pub steps: u64,
    /// Last-branch-record ring contents, oldest first (may be empty).
    pub lbr: Vec<LbrEntry>,
    /// Retained error-log records, oldest first (may be empty).
    pub error_log: Vec<LogRecord>,
    /// Heap allocator metadata recovered from the dump.
    pub heap_allocs: Vec<AllocMeta>,
    /// End of the globals segment (for address classification).
    pub globals_end: u64,
}

impl Coredump {
    /// Captures a coredump from a faulted machine.
    ///
    /// # Panics
    ///
    /// Panics if the machine has not faulted — production systems only
    /// dump core on failure. Use [`Coredump::capture_anyway`] in tests
    /// that need a snapshot of a healthy machine.
    pub fn capture(machine: &Machine) -> Self {
        assert!(
            machine.fault().is_some(),
            "capture requires a faulted machine"
        );
        Self::capture_anyway(machine)
    }

    /// Captures a snapshot regardless of fault state (the fault defaults
    /// to a deadlock descriptor when none is recorded — tests only).
    pub fn capture_anyway(machine: &Machine) -> Self {
        let (faulting_tid, fault) = machine
            .fault()
            .cloned()
            .unwrap_or((0, Fault::Deadlock { threads: vec![] }));
        let globals_end = machine
            .program()
            .globals
            .iter()
            .map(|g| g.addr + ((g.size.max(1) + 7) & !7))
            .max()
            .unwrap_or(mvm_isa::layout::GLOBAL_BASE);
        Coredump {
            program_name: machine.program().func(machine.program().entry).name.clone(),
            memory: machine.memory().clone(),
            threads: machine.threads().values().cloned().collect(),
            fault,
            faulting_tid,
            steps: machine.steps(),
            lbr: machine.lbr().entries().copied().collect(),
            error_log: machine.error_log().copied().collect(),
            heap_allocs: machine.heap().iter_allocs().copied().collect(),
            globals_end,
        }
    }

    /// The faulting thread's context.
    ///
    /// # Panics
    ///
    /// Panics if the dump is malformed and lacks the faulting thread.
    pub fn faulting_thread(&self) -> &ThreadState {
        self.thread(self.faulting_tid)
            .expect("dump lacks faulting thread")
    }

    /// Looks up a thread context by id.
    pub fn thread(&self, tid: ThreadId) -> Option<&ThreadState> {
        self.threads.iter().find(|t| t.tid == tid)
    }

    /// The program counter at the failure (paper §2.1: traces "end with
    /// the program counter found in the coredump").
    pub fn fault_pc(&self) -> Loc {
        self.faulting_thread().pc()
    }

    /// The faulting thread's call stack, outermost first, as code
    /// locations.
    pub fn call_stack(&self) -> Vec<Loc> {
        self.faulting_thread()
            .frames
            .iter()
            .map(|f| f.loc())
            .collect()
    }

    /// The WER-style stack signature: the top `depth` frames of the
    /// faulting thread plus the fault's coarse signal. This is exactly
    /// the information naive call-stack bucketing uses (paper §3.1).
    pub fn stack_signature(&self, depth: usize) -> StackSignature {
        let mut frames: Vec<Loc> = self
            .faulting_thread()
            .frames
            .iter()
            .rev()
            .take(depth)
            .map(|f| f.loc())
            .collect();
        // Innermost first.
        frames.dedup();
        StackSignature {
            signal: self.fault.as_signal().to_string(),
            frames,
        }
    }

    /// Whole-dump byte size estimate (memory pages + fixed overhead per
    /// thread), used by the experiments when reporting artifact sizes.
    pub fn size_bytes(&self) -> u64 {
        let mem: u64 = self.memory.iter_pages().map(|(_, p)| p.len() as u64).sum();
        mem + (self.threads.len() as u64) * 512
    }
}

/// The naive triaging key: coarse signal + top-of-stack locations.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct StackSignature {
    /// Coarse kernel-visible signal (`SIGSEGV`, ...).
    pub signal: String,
    /// Top stack frames, innermost first.
    pub frames: Vec<Loc>,
}

json_struct!(Coredump {
    program_name,
    memory,
    threads,
    fault,
    faulting_tid,
    steps,
    lbr,
    error_log,
    heap_allocs,
    globals_end,
});
json_struct!(StackSignature { signal, frames });

#[cfg(test)]
mod tests {
    use super::*;
    use mvm_isa::asm::assemble;
    use mvm_machine::{MachineConfig, Outcome};

    fn crash_dump(src: &str) -> Coredump {
        let p = assemble(src).unwrap();
        let mut m = Machine::new(p, MachineConfig::default());
        let o = m.run();
        assert!(matches!(o, Outcome::Faulted { .. }), "{o:?}");
        Coredump::capture(&m)
    }

    #[test]
    fn capture_records_fault_and_pc() {
        let d = crash_dump("func main() {\nentry:\n  mov r0, 0\n  divu r1, 1, r0\n  halt\n}");
        assert_eq!(d.fault, Fault::DivByZero);
        assert_eq!(d.faulting_tid, 0);
        assert_eq!(d.fault_pc().inst, 1);
        assert_eq!(d.call_stack().len(), 1);
    }

    #[test]
    fn capture_includes_memory_and_heap() {
        let d = crash_dump(
            "func main() {\nentry:\n  alloc r0, 16\n  store 9, [r0]\n  load r1, [r0+24]\n  halt\n}",
        );
        assert_eq!(d.heap_allocs.len(), 1);
        let base = d.heap_allocs[0].base;
        assert_eq!(d.memory.read(base, mvm_isa::Width::W8), 9);
    }

    #[test]
    #[should_panic(expected = "faulted machine")]
    fn capture_of_healthy_machine_panics() {
        let p = assemble("func main() {\nentry:\n  halt\n}").unwrap();
        let mut m = Machine::new(p, MachineConfig::default());
        m.run();
        let _ = Coredump::capture(&m);
    }

    #[test]
    fn stack_signature_distinguishes_call_paths() {
        let src_a = r#"
            func boom(1) {
            entry:
                divu r1, 1, r0
                ret r1
            }
            func main() {
            entry:
                call r0 = boom(0), cont
            cont:
                halt
            }
        "#;
        let src_b = r#"
            func main() {
            entry:
                mov r0, 0
                divu r1, 1, r0
                halt
            }
        "#;
        let da = crash_dump(src_a);
        let db = crash_dump(src_b);
        assert_ne!(da.stack_signature(2), db.stack_signature(2));
        assert_eq!(da.stack_signature(2).signal, "SIGFPE");
        assert_eq!(da.call_stack().len(), 2);
    }

    #[test]
    fn json_round_trip() {
        let d =
            crash_dump("global g 8 = 3\nfunc main() {\nentry:\n  assert 0, \"boom\"\n  halt\n}");
        let s = mvm_json::to_string(&d);
        let back: Coredump = mvm_json::from_str(&s).unwrap();
        assert_eq!(d, back);
    }

    #[test]
    fn breadcrumbs_present_in_dump() {
        let d = crash_dump(
            "func main() {\nentry:\n  output 42, log\n  jmp next\nnext:\n  assert 0, \"x\"\n  halt\n}",
        );
        assert_eq!(d.error_log.len(), 1);
        assert_eq!(d.error_log[0].value, 42);
        assert_eq!(d.lbr.len(), 1);
    }

    #[test]
    fn size_estimate_counts_pages() {
        let d = crash_dump("global g 8 = 1\nfunc main() {\nentry:\n  assert 0, \"x\"\n  halt\n}");
        assert!(d.size_bytes() >= 4096);
    }
}
