//! Minidumps: the impoverished snapshot format of WER-era tooling.
//!
//! A minidump carries only the faulting thread's stack (frame locations
//! and registers) and the fault descriptor — no memory image, no other
//! threads, no allocator metadata. The paper positions RES against
//! forward execution synthesis partly on this axis: "RES interprets the
//! entire coredump, not just a minidump, which makes RES strictly more
//! powerful" (§1). Experiment A2 quantifies that claim by running the
//! engine with each.

use mvm_json::json_struct;

use mvm_isa::Loc;
use mvm_machine::{Fault, Frame, ThreadId};

use crate::dump::Coredump;

/// A stack-and-registers-only crash report.
#[derive(Debug, Clone, PartialEq)]
pub struct Minidump {
    /// Program name.
    pub program_name: String,
    /// The fault.
    pub fault: Fault,
    /// Faulting thread id.
    pub faulting_tid: ThreadId,
    /// The faulting thread's frames (outermost first), registers
    /// included.
    pub frames: Vec<Frame>,
}

json_struct!(Minidump {
    program_name,
    fault,
    faulting_tid,
    frames
});

impl Minidump {
    /// Extracts the minidump subset of a full coredump.
    pub fn from_coredump(dump: &Coredump) -> Self {
        Minidump {
            program_name: dump.program_name.clone(),
            fault: dump.fault.clone(),
            faulting_tid: dump.faulting_tid,
            frames: dump.faulting_thread().frames.clone(),
        }
    }

    /// The failure program counter.
    ///
    /// # Panics
    ///
    /// Panics on a malformed, frameless minidump.
    pub fn fault_pc(&self) -> Loc {
        self.frames.last().expect("minidump has no frames").loc()
    }

    /// The call stack as code locations, outermost first.
    pub fn call_stack(&self) -> Vec<Loc> {
        self.frames.iter().map(|f| f.loc()).collect()
    }

    /// Byte-size estimate; minidumps are why WER could afford to collect
    /// reports from millions of machines.
    pub fn size_bytes(&self) -> u64 {
        64 + (self.frames.len() as u64) * 512
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvm_isa::asm::assemble;
    use mvm_machine::{Machine, MachineConfig};

    fn dump() -> Coredump {
        let p = assemble(
            r#"
            global g 64
            func inner(1) {
            entry:
                store 1, [r0+200]
                ret
            }
            func main() {
            entry:
                addr r0, g
                store 7, [r0]
                call inner(r0), cont
            cont:
                halt
            }
            "#,
        )
        .unwrap();
        let mut m = Machine::new(p, MachineConfig::default());
        m.run();
        Coredump::capture(&m)
    }

    #[test]
    fn minidump_preserves_stack_and_fault() {
        let d = dump();
        let md = Minidump::from_coredump(&d);
        assert_eq!(md.fault, d.fault);
        assert_eq!(md.fault_pc(), d.fault_pc());
        assert_eq!(md.call_stack(), d.call_stack());
        assert_eq!(md.frames.len(), 2);
    }

    #[test]
    fn minidump_is_much_smaller() {
        let d = dump();
        let md = Minidump::from_coredump(&d);
        assert!(md.size_bytes() < d.size_bytes());
    }

    #[test]
    fn json_round_trip() {
        let md = Minidump::from_coredump(&dump());
        let s = mvm_json::to_string(&md);
        let back: Minidump = mvm_json::from_str(&s).unwrap();
        assert_eq!(md, back);
    }
}
