//! The trace file model and both on-disk encodings.

use std::collections::BTreeMap;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

use mvm_core::Coredump;
use mvm_isa::{InputKind, Loc, Width};
use mvm_json::{json_struct, FromJson, Json, ToJson};
use mvm_machine::{Fault, ThreadId};
use mvm_symbolic::Model;
use res_core::blockexec::EndPoint;
use res_core::{ExecutionSuffix, ObservedEvent, SuffixStep};
use res_obs::Recorder;
use res_store::{decode_record, encode_record, fnv64, Tag};

use crate::binary;

/// First token of a text trace file's magic line.
pub const MAGIC: &str = "RES-TRACE";

/// The format version this build reads and writes.
pub const FORMAT_VERSION: u32 = 1;

/// Extension of the text encoding.
pub const EXT_JSON: &str = "restrace";

/// Extension of the binary encoding (note: a *double* extension — the
/// auto-detection keys on the full `.restrace.bin` suffix).
pub const EXT_BIN: &str = "restrace.bin";

/// The trace header: what the file is and which program it replays.
/// `writer` is deliberately static (crate name and version, no
/// timestamps) so identical recordings are byte-identical files.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceHeader {
    /// Format version, duplicated from the magic line.
    pub format_version: u32,
    /// Fingerprint of the program the trace was recorded against
    /// (see [`res_store::program_fingerprint`]).
    pub program_fp: u64,
    /// Creating tool, for forensics.
    pub writer: String,
}

json_struct!(TraceHeader {
    format_version,
    program_fp,
    writer
});

impl TraceHeader {
    /// The header this build writes for a program fingerprint.
    pub fn new(program_fp: u64) -> Self {
        TraceHeader {
            format_version: FORMAT_VERSION,
            program_fp,
            writer: concat!("res-trace ", env!("CARGO_PKG_VERSION")).to_string(),
        }
    }
}

/// One recorded schedule event: the suffix step's static shape plus
/// the concrete behaviour observed when the recording replayed it
/// (start/end pc and every memory write). The writes are what `verify`
/// compares instruction-for-instruction against a modified program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceStep {
    /// Executing thread.
    pub tid: ThreadId,
    /// Frame depth the range executes in.
    pub frame_depth: usize,
    /// Pc at range start.
    pub start: Loc,
    /// Frame-depth change across the range.
    pub end_depth_delta: i32,
    /// Pc after the range.
    pub end: Loc,
    /// Instructions in the range.
    pub steps: u64,
    /// Kinds of the inputs consumed, in order.
    pub input_kinds: Vec<InputKind>,
    /// Allocations performed.
    pub allocs: usize,
    /// Frees performed (payload bases).
    pub frees: Vec<u64>,
    /// Memory writes performed `(addr, width, value)`, in order.
    pub writes: Vec<(u64, Width, u64)>,
}

json_struct!(TraceStep {
    tid,
    frame_depth,
    start,
    end_depth_delta,
    end,
    steps,
    input_kinds,
    allocs,
    frees,
    writes
});

/// The initial state `Mi`: everything installed before replay starts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceImage {
    /// Concrete cell values overlaid on the dump's memory.
    pub initial_cells: Vec<(u64, Width, u64)>,
    /// Initial register files: `(frame_depth, regs)` per thread.
    pub initial_regs: BTreeMap<ThreadId, (usize, Vec<u64>)>,
    /// Start position per thread: `(frame_depth, loc)`.
    pub start_positions: BTreeMap<ThreadId, (usize, Loc)>,
    /// `true` if the synthesis took an unsound shortcut.
    pub approximate: bool,
}

json_struct!(TraceImage {
    initial_cells,
    initial_regs,
    start_positions,
    approximate
});

/// Concrete input values per thread, in consumption order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceInputs {
    /// The scripted input values.
    pub inputs: BTreeMap<ThreadId, Vec<u64>>,
}

json_struct!(TraceInputs { inputs });

/// What replaying the trace must reproduce.
#[derive(Debug, Clone, PartialEq)]
pub struct ExpectedOutcome {
    /// The fault the recorded execution hit.
    pub fault: Fault,
    /// The thread that faulted.
    pub faulting_tid: ThreadId,
    /// Total scheduled instructions across all steps.
    pub total_steps: u64,
    /// fnv64 over the canonical JSON of (image, inputs, steps) — a
    /// quick equality check between two traces.
    pub suffix_fp: u64,
    /// Root-cause bucket key, when the recorder computed one.
    pub bucket: Option<String>,
}

json_struct!(ExpectedOutcome {
    fault,
    faulting_tid,
    total_steps,
    suffix_fp,
    bucket
});

/// A complete trace: the coredump, the synthesized initial state and
/// schedule, the observed per-event behaviour, and the expected
/// outcome. Self-contained except for the program, whose fingerprint
/// is pinned in the header.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceFile {
    /// File identity.
    pub header: TraceHeader,
    /// The coredump the trace reproduces.
    pub dump: Coredump,
    /// Initial state `Mi`.
    pub image: TraceImage,
    /// Concrete inputs per thread.
    pub inputs: BTreeMap<ThreadId, Vec<u64>>,
    /// The schedule with observed behaviour, forward order.
    pub steps: Vec<TraceStep>,
    /// The outcome replay must reproduce.
    pub expected: ExpectedOutcome,
}

/// Which on-disk encoding a trace uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Encoding {
    /// mvm-json text records (`.restrace`).
    Json,
    /// Compact binary records (`.restrace.bin`).
    Binary,
}

impl Encoding {
    /// The encoding a path's extension selects (write side).
    pub fn for_path(path: &Path) -> Encoding {
        if path.to_string_lossy().ends_with(".bin") {
            Encoding::Binary
        } else {
            Encoding::Json
        }
    }

    /// Detects the encoding from file contents (read side). The binary
    /// magic shares the text prefix, so it is checked first.
    pub fn sniff(bytes: &[u8]) -> Option<Encoding> {
        if bytes.starts_with(b"RES-TRACE-BIN ") {
            Some(Encoding::Binary)
        } else if bytes.starts_with(MAGIC.as_bytes()) {
            Some(Encoding::Json)
        } else {
            None
        }
    }

    /// A short display name.
    pub fn name(self) -> &'static str {
        match self {
            Encoding::Json => "json",
            Encoding::Binary => "binary",
        }
    }
}

/// Why a trace could not be read (or replayed). A trace is
/// all-or-nothing: unlike the solver store, which degrades damage to a
/// cold start, a half-readable schedule cannot be replayed soundly, so
/// every defect is a typed error naming the damage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// The file could not be read.
    Io(String),
    /// The file does not start with a trace magic line.
    NotATrace,
    /// The file declares a format version this build does not read.
    Version(u32),
    /// Record `record` (0-based, after the magic line) failed framing
    /// or checksum validation — a torn write or bit rot.
    Torn {
        /// Index of the damaged record.
        record: usize,
    },
    /// A required section is absent.
    Missing(&'static str),
    /// A payload decoded but its JSON shape is wrong.
    Json(String),
    /// The program's fingerprint does not match the trace header
    /// (strict replay refuses; `verify` proceeds and reports).
    Fingerprint {
        /// Fingerprint recorded in the trace.
        expected: u64,
        /// Fingerprint of the supplied program.
        got: u64,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "io error: {e}"),
            TraceError::NotATrace => write!(f, "not a trace file (bad magic)"),
            TraceError::Version(v) => write!(
                f,
                "unsupported trace format version {v} (this build reads {FORMAT_VERSION})"
            ),
            TraceError::Torn { record } => {
                write!(f, "trace record {record} is torn or corrupt")
            }
            TraceError::Missing(section) => write!(f, "trace is missing its {section} section"),
            TraceError::Json(e) => write!(f, "trace payload malformed: {e}"),
            TraceError::Fingerprint { expected, got } => write!(
                f,
                "program fingerprint {got:016x} does not match the trace's {expected:016x}"
            ),
        }
    }
}

impl std::error::Error for TraceError {}

/// The magic line the text encoding writes (without the newline).
pub fn magic_line() -> String {
    format!("{MAGIC} {FORMAT_VERSION}")
}

/// Parses a text magic line; returns the declared format version.
pub fn parse_magic(line: &str) -> Option<u32> {
    let rest = line.strip_prefix(MAGIC)?.strip_prefix(' ')?;
    rest.parse().ok()
}

// Section tags, spelled via the shared store framing. `H` reuses the
// store's own header tag; the rest are trace-specific letters chosen
// not to collide with the store's `E`/`S`/`V` so a tag byte always
// identifies its format family.
const TAG_DUMP: Tag = Tag::Unknown(b'D');
const TAG_IMAGE: Tag = Tag::Unknown(b'M');
const TAG_INPUTS: Tag = Tag::Unknown(b'I');
const TAG_STEP: Tag = Tag::Unknown(b'T');
const TAG_EXPECTED: Tag = Tag::Unknown(b'X');

/// fnv64 over the canonical JSON of the replay-relevant sections — the
/// cheap "same suffix?" equality check stored in [`ExpectedOutcome`].
pub fn suffix_fingerprint(
    image: &TraceImage,
    inputs: &BTreeMap<ThreadId, Vec<u64>>,
    steps: &[TraceStep],
) -> u64 {
    let mut text = mvm_json::to_string(image);
    text.push_str(&mvm_json::to_string(&TraceInputs {
        inputs: inputs.clone(),
    }));
    for s in steps {
        text.push_str(&mvm_json::to_string(s));
    }
    fnv64(text.as_bytes())
}

impl TraceFile {
    /// Builds a trace from a synthesized suffix and the per-event
    /// behaviour observed while replaying it
    /// ([`res_core::replay_observed`]). `observed` must align 1:1 with
    /// `suffix.steps`.
    pub fn from_suffix(
        program_fp: u64,
        dump: &Coredump,
        suffix: &ExecutionSuffix,
        observed: &[ObservedEvent],
        bucket: Option<String>,
    ) -> TraceFile {
        assert_eq!(
            suffix.steps.len(),
            observed.len(),
            "observed events must align with suffix steps"
        );
        let steps: Vec<TraceStep> = suffix
            .steps
            .iter()
            .zip(observed)
            .map(|(s, o)| TraceStep {
                tid: s.tid,
                frame_depth: s.frame_depth,
                start: o.start,
                end_depth_delta: s.end.depth_delta,
                end: o.end,
                steps: s.steps,
                input_kinds: s.input_kinds.clone(),
                allocs: s.allocs,
                frees: s.frees.clone(),
                writes: o.writes.clone(),
            })
            .collect();
        let image = TraceImage {
            initial_cells: suffix.initial_cells.clone(),
            initial_regs: suffix.initial_regs.clone(),
            start_positions: suffix.start_positions.clone(),
            approximate: suffix.approximate,
        };
        let suffix_fp = suffix_fingerprint(&image, &suffix.inputs, &steps);
        TraceFile {
            header: TraceHeader::new(program_fp),
            dump: dump.clone(),
            image,
            inputs: suffix.inputs.clone(),
            steps,
            expected: ExpectedOutcome {
                fault: dump.fault.clone(),
                faulting_tid: dump.faulting_tid,
                total_steps: suffix.total_steps(),
                suffix_fp,
                bucket,
            },
        }
    }

    /// Reconstructs a replayable [`ExecutionSuffix`]. Symbolic
    /// artifacts (model, constraints, transfer/read sets) are not
    /// persisted — replay does not consult them — so the reconstruction
    /// carries empty ones.
    pub fn to_suffix(&self) -> ExecutionSuffix {
        ExecutionSuffix {
            steps: self
                .steps
                .iter()
                .map(|s| SuffixStep {
                    tid: s.tid,
                    frame_depth: s.frame_depth,
                    start: s.start,
                    end: EndPoint {
                        depth_delta: s.end_depth_delta,
                        loc: s.end,
                    },
                    transfers: Vec::new(),
                    inputs: Vec::new(),
                    input_kinds: s.input_kinds.clone(),
                    allocs: s.allocs,
                    frees: s.frees.clone(),
                    reads: Vec::new(),
                    writes: s.writes.iter().map(|&(a, w, _)| (a, w)).collect(),
                    steps: s.steps,
                })
                .collect(),
            model: Model::new(),
            initial_cells: self.image.initial_cells.clone(),
            initial_regs: self.image.initial_regs.clone(),
            start_positions: self.image.start_positions.clone(),
            inputs: self.inputs.clone(),
            constraints: Vec::new(),
            approximate: self.image.approximate,
        }
    }

    /// The recorded per-event behaviour, as the expectation `verify`
    /// compares a replay against.
    pub fn expected_events(&self) -> Vec<ObservedEvent> {
        self.steps
            .iter()
            .map(|s| ObservedEvent {
                tid: s.tid,
                start: s.start,
                end: s.end,
                steps: s.steps,
                writes: s.writes.clone(),
            })
            .collect()
    }

    /// Per-thread schedule totals `(tid, events, instructions)`, in
    /// first-use order — the `store-inspect` summary line.
    pub fn schedule_summary(&self) -> Vec<(ThreadId, usize, u64)> {
        let mut out: Vec<(ThreadId, usize, u64)> = Vec::new();
        for s in &self.steps {
            match out.iter_mut().find(|(tid, _, _)| *tid == s.tid) {
                Some((_, events, insts)) => {
                    *events += 1;
                    *insts += s.steps;
                }
                None => out.push((s.tid, 1, s.steps)),
            }
        }
        out
    }

    /// Total memory writes recorded across all steps.
    pub fn total_writes(&self) -> usize {
        self.steps.iter().map(|s| s.writes.len()).sum()
    }

    /// Serializes to the chosen encoding.
    pub fn to_bytes(&self, encoding: Encoding) -> Vec<u8> {
        match encoding {
            Encoding::Json => self.to_text_bytes(),
            Encoding::Binary => binary::to_bin_bytes(self),
        }
    }

    /// Parses either encoding, auto-detected from the magic.
    pub fn from_bytes(bytes: &[u8]) -> Result<(TraceFile, Encoding), TraceError> {
        match Encoding::sniff(bytes) {
            Some(Encoding::Json) => Ok((Self::from_text_bytes(bytes)?, Encoding::Json)),
            Some(Encoding::Binary) => Ok((binary::from_bin_bytes(bytes)?, Encoding::Binary)),
            None => Err(TraceError::NotATrace),
        }
    }

    /// The text encoding: magic line + framed single-line JSON records.
    pub fn to_text_bytes(&self) -> Vec<u8> {
        let mut out = format!("{}\n", magic_line()).into_bytes();
        for (tag, payload) in self.sections() {
            encode_record(tag, &payload.to_string_compact(), &mut out);
        }
        out
    }

    /// The sections in file order, each as `(tag, json-tree)`. Shared
    /// by both encodings so they stay logically identical.
    pub(crate) fn sections(&self) -> Vec<(Tag, Json)> {
        let mut out = vec![
            (Tag::Header, self.header.to_json()),
            (TAG_DUMP, self.dump.to_json()),
            (TAG_IMAGE, self.image.to_json()),
            (
                TAG_INPUTS,
                TraceInputs {
                    inputs: self.inputs.clone(),
                }
                .to_json(),
            ),
        ];
        for s in &self.steps {
            out.push((TAG_STEP, s.to_json()));
        }
        out.push((TAG_EXPECTED, self.expected.to_json()));
        out
    }

    /// Assembles a trace from decoded `(tag, json)` sections, shared
    /// by both encodings.
    pub(crate) fn from_sections<'a>(
        sections: impl Iterator<Item = (Tag, &'a Json)>,
    ) -> Result<TraceFile, TraceError> {
        let mut header: Option<TraceHeader> = None;
        let mut dump: Option<Coredump> = None;
        let mut image: Option<TraceImage> = None;
        let mut inputs: Option<TraceInputs> = None;
        let mut steps: Vec<TraceStep> = Vec::new();
        let mut expected: Option<ExpectedOutcome> = None;
        fn parse<T: FromJson>(payload: &Json) -> Result<T, TraceError> {
            T::from_json(payload).map_err(|e| TraceError::Json(e.to_string()))
        }
        for (tag, payload) in sections {
            match tag {
                Tag::Header => header = Some(parse(payload)?),
                TAG_DUMP => dump = Some(parse(payload)?),
                TAG_IMAGE => image = Some(parse(payload)?),
                TAG_INPUTS => inputs = Some(parse(payload)?),
                TAG_STEP => steps.push(parse(payload)?),
                TAG_EXPECTED => expected = Some(parse(payload)?),
                // Unknown (future) sections are skipped; store-family
                // tags in a trace file are equally unknown here.
                _ => {}
            }
        }
        let header = header.ok_or(TraceError::Missing("header"))?;
        if header.format_version != FORMAT_VERSION {
            return Err(TraceError::Version(header.format_version));
        }
        Ok(TraceFile {
            header,
            dump: dump.ok_or(TraceError::Missing("dump"))?,
            image: image.ok_or(TraceError::Missing("image"))?,
            inputs: inputs.ok_or(TraceError::Missing("inputs"))?.inputs,
            steps,
            expected: expected.ok_or(TraceError::Missing("expected-outcome"))?,
        })
    }

    /// Parses the text encoding.
    pub fn from_text_bytes(bytes: &[u8]) -> Result<TraceFile, TraceError> {
        let text = std::str::from_utf8(bytes).map_err(|_| TraceError::NotATrace)?;
        let mut lines = text.lines();
        let version = lines
            .next()
            .and_then(parse_magic)
            .ok_or(TraceError::NotATrace)?;
        if version != FORMAT_VERSION {
            return Err(TraceError::Version(version));
        }
        let mut sections: Vec<(Tag, Json)> = Vec::new();
        for (i, line) in lines.enumerate() {
            if line.is_empty() {
                continue;
            }
            let (tag, payload) = decode_record(line).ok_or(TraceError::Torn { record: i })?;
            let json = mvm_json::parse(payload).map_err(|e| TraceError::Json(e.to_string()))?;
            sections.push((tag, json));
        }
        Self::from_sections(sections.iter().map(|(t, j)| (*t, j)))
    }

    /// Writes the trace to `path` atomically (tmp + rename), choosing
    /// the encoding from the extension (`.bin` → binary).
    pub fn write(&self, path: &Path) -> io::Result<Encoding> {
        self.write_with(path, &Recorder::disabled())
    }

    /// [`write`](Self::write) with a `trace.write` observability mark.
    pub fn write_with(&self, path: &Path, rec: &Recorder) -> io::Result<Encoding> {
        let encoding = Encoding::for_path(path);
        let bytes = self.to_bytes(encoding);
        let mut tmp_name = path.as_os_str().to_os_string();
        tmp_name.push(".tmp");
        let tmp = PathBuf::from(tmp_name);
        std::fs::write(&tmp, &bytes)?;
        std::fs::rename(&tmp, path)?;
        rec.event_with("trace.write", || {
            vec![
                ("path".to_string(), path.display().to_string()),
                ("encoding".to_string(), encoding.name().to_string()),
                ("bytes".to_string(), bytes.len().to_string()),
                ("steps".to_string(), self.steps.len().to_string()),
            ]
        });
        Ok(encoding)
    }

    /// Reads a trace from `path`, auto-detecting the encoding.
    pub fn read(path: &Path) -> Result<(TraceFile, Encoding), TraceError> {
        Self::read_with(path, &Recorder::disabled())
    }

    /// [`read`](Self::read) with a `trace.read` observability mark.
    pub fn read_with(path: &Path, rec: &Recorder) -> Result<(TraceFile, Encoding), TraceError> {
        let bytes = std::fs::read(path).map_err(|e| TraceError::Io(e.to_string()))?;
        let (trace, encoding) = Self::from_bytes(&bytes)?;
        rec.event_with("trace.read", || {
            vec![
                ("path".to_string(), path.display().to_string()),
                ("encoding".to_string(), encoding.name().to_string()),
                ("bytes".to_string(), bytes.len().to_string()),
                ("steps".to_string(), trace.steps.len().to_string()),
            ]
        });
        Ok((trace, encoding))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn magic_round_trips() {
        assert_eq!(parse_magic(&magic_line()), Some(FORMAT_VERSION));
        assert_eq!(parse_magic("RES-TRACE 9"), Some(9));
        assert_eq!(parse_magic("RES-STORE 1"), None);
        assert_eq!(parse_magic(""), None);
    }

    #[test]
    fn encoding_selection_and_sniffing() {
        assert_eq!(
            Encoding::for_path(Path::new("a/repro.restrace")),
            Encoding::Json
        );
        assert_eq!(
            Encoding::for_path(Path::new("a/repro.restrace.bin")),
            Encoding::Binary
        );
        assert_eq!(Encoding::sniff(b"RES-TRACE 1\n"), Some(Encoding::Json));
        assert_eq!(
            Encoding::sniff(b"RES-TRACE-BIN 1\n"),
            Some(Encoding::Binary)
        );
        assert_eq!(Encoding::sniff(b"RES-STORE 1\n"), None);
        assert_eq!(Encoding::sniff(b""), None);
    }
}
