//! The compact binary encoding (`.restrace.bin`).
//!
//! The binary file carries exactly the same sections as the text
//! encoding — same tags, same JSON trees — but each record is framed
//! as raw bytes instead of a text line:
//!
//! ```text
//! RES-TRACE-BIN 1\n
//! <tag u8> <len u32 LE> <fnv64 u64 LE> <payload bytes>   (repeated)
//! ```
//!
//! and each payload is a varint-coded binary rendering of the JSON
//! tree rather than JSON text. Value tags:
//!
//! | tag | value | payload |
//! |-----|-------|---------|
//! | 0 | `null` | — |
//! | 1 | `false` | — |
//! | 2 | `true` | — |
//! | 3 | non-negative integer | LEB128 varint |
//! | 4 | negative integer | zigzag LEB128 varint |
//! | 5 | float | 8-byte LE IEEE-754 bits |
//! | 6 | string | varint byte length + UTF-8 bytes |
//! | 7 | array | varint count + elements |
//! | 8 | object | varint count + (string key, value) pairs |
//!
//! The mapping is one-to-one with the [`Json`] tree (object order
//! preserved, integer signedness preserved), so text → binary → text
//! round-trips byte-identically.

use mvm_json::Json;

use crate::format::{TraceError, TraceFile, FORMAT_VERSION};

/// The binary magic, including its version digit and terminating
/// newline (so `head -1` on a binary trace still identifies it).
pub const BIN_MAGIC: &[u8] = b"RES-TRACE-BIN 1\n";

const T_NULL: u8 = 0;
const T_FALSE: u8 = 1;
const T_TRUE: u8 = 2;
const T_U64: u8 = 3;
const T_I64: u8 = 4;
const T_F64: u8 = 5;
const T_STR: u8 = 6;
const T_ARR: u8 = 7;
const T_OBJ: u8 = 8;

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn get_varint(bytes: &[u8], pos: &mut usize) -> Result<u64, String> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let &b = bytes.get(*pos).ok_or("varint runs past the buffer")?;
        *pos += 1;
        if shift >= 64 {
            return Err("varint longer than 64 bits".to_string());
        }
        v |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn get_str(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    let len = get_varint(bytes, pos)? as usize;
    let end = pos.checked_add(len).ok_or("string length overflows")?;
    if end > bytes.len() {
        return Err("string runs past the buffer".to_string());
    }
    let s = std::str::from_utf8(&bytes[*pos..end]).map_err(|_| "string is not UTF-8")?;
    *pos = end;
    Ok(s.to_string())
}

/// Appends the binary rendering of a JSON tree.
pub fn encode_json(v: &Json, out: &mut Vec<u8>) {
    match v {
        Json::Null => out.push(T_NULL),
        Json::Bool(false) => out.push(T_FALSE),
        Json::Bool(true) => out.push(T_TRUE),
        Json::U64(n) => {
            out.push(T_U64);
            put_varint(out, *n);
        }
        Json::I64(n) => {
            out.push(T_I64);
            put_varint(out, zigzag(*n));
        }
        Json::F64(n) => {
            out.push(T_F64);
            out.extend_from_slice(&n.to_bits().to_le_bytes());
        }
        Json::Str(s) => {
            out.push(T_STR);
            put_str(out, s);
        }
        Json::Arr(items) => {
            out.push(T_ARR);
            put_varint(out, items.len() as u64);
            for item in items {
                encode_json(item, out);
            }
        }
        Json::Obj(entries) => {
            out.push(T_OBJ);
            put_varint(out, entries.len() as u64);
            for (k, item) in entries {
                put_str(out, k);
                encode_json(item, out);
            }
        }
    }
}

fn decode_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let &tag = bytes.get(*pos).ok_or("value tag runs past the buffer")?;
    *pos += 1;
    match tag {
        T_NULL => Ok(Json::Null),
        T_FALSE => Ok(Json::Bool(false)),
        T_TRUE => Ok(Json::Bool(true)),
        T_U64 => Ok(Json::U64(get_varint(bytes, pos)?)),
        T_I64 => Ok(Json::I64(unzigzag(get_varint(bytes, pos)?))),
        T_F64 => {
            let end = *pos + 8;
            if end > bytes.len() {
                return Err("float runs past the buffer".to_string());
            }
            let mut raw = [0u8; 8];
            raw.copy_from_slice(&bytes[*pos..end]);
            *pos = end;
            Ok(Json::F64(f64::from_bits(u64::from_le_bytes(raw))))
        }
        T_STR => Ok(Json::Str(get_str(bytes, pos)?)),
        T_ARR => {
            let n = get_varint(bytes, pos)? as usize;
            if n > bytes.len() {
                return Err("array count exceeds the buffer".to_string());
            }
            let mut items = Vec::with_capacity(n);
            for _ in 0..n {
                items.push(decode_value(bytes, pos)?);
            }
            Ok(Json::Arr(items))
        }
        T_OBJ => {
            let n = get_varint(bytes, pos)? as usize;
            if n > bytes.len() {
                return Err("object count exceeds the buffer".to_string());
            }
            let mut entries = Vec::with_capacity(n);
            for _ in 0..n {
                let k = get_str(bytes, pos)?;
                entries.push((k, decode_value(bytes, pos)?));
            }
            Ok(Json::Obj(entries))
        }
        other => Err(format!("unknown binary value tag {other}")),
    }
}

/// Decodes a binary JSON tree, requiring the whole buffer to be
/// consumed.
pub fn decode_json(bytes: &[u8]) -> Result<Json, String> {
    let mut pos = 0usize;
    let v = decode_value(bytes, &mut pos)?;
    if pos != bytes.len() {
        return Err(format!(
            "{} trailing bytes after the value",
            bytes.len() - pos
        ));
    }
    Ok(v)
}

/// Serializes a trace to the binary encoding.
pub fn to_bin_bytes(trace: &TraceFile) -> Vec<u8> {
    let mut out = BIN_MAGIC.to_vec();
    for (tag, json) in trace.sections() {
        let mut payload = Vec::new();
        encode_json(&json, &mut payload);
        out.push(tag_byte(tag));
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&res_store::fnv64(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
    }
    out
}

fn tag_byte(tag: res_store::Tag) -> u8 {
    match tag {
        res_store::Tag::Header => b'H',
        res_store::Tag::Entry => b'E',
        res_store::Tag::Stats => b'S',
        res_store::Tag::Verdict => b'V',
        res_store::Tag::Unknown(b) => b,
    }
}

fn tag_from_byte(b: u8) -> res_store::Tag {
    match b {
        b'H' => res_store::Tag::Header,
        b'E' => res_store::Tag::Entry,
        b'S' => res_store::Tag::Stats,
        b'V' => res_store::Tag::Verdict,
        other => res_store::Tag::Unknown(other),
    }
}

/// Parses the binary encoding.
pub fn from_bin_bytes(bytes: &[u8]) -> Result<TraceFile, TraceError> {
    let rest = match bytes.strip_prefix(BIN_MAGIC) {
        Some(rest) => rest,
        None => {
            // A binary trace from a different format version: surface
            // the version rather than "not a trace".
            if let Some(tail) = bytes.strip_prefix(b"RES-TRACE-BIN ") {
                let line: Vec<u8> = tail.iter().copied().take_while(|&b| b != b'\n').collect();
                if let Ok(v) = std::str::from_utf8(&line).unwrap_or("").parse::<u32>() {
                    if v != FORMAT_VERSION {
                        return Err(TraceError::Version(v));
                    }
                }
            }
            return Err(TraceError::NotATrace);
        }
    };
    let mut sections: Vec<(res_store::Tag, Json)> = Vec::new();
    let mut pos = 0usize;
    let mut record = 0usize;
    while pos < rest.len() {
        if pos + 13 > rest.len() {
            return Err(TraceError::Torn { record });
        }
        let tag = tag_from_byte(rest[pos]);
        let mut len4 = [0u8; 4];
        len4.copy_from_slice(&rest[pos + 1..pos + 5]);
        let len = u32::from_le_bytes(len4) as usize;
        let mut crc8 = [0u8; 8];
        crc8.copy_from_slice(&rest[pos + 5..pos + 13]);
        let crc = u64::from_le_bytes(crc8);
        let start = pos + 13;
        let end = match start.checked_add(len) {
            Some(end) if end <= rest.len() => end,
            _ => return Err(TraceError::Torn { record }),
        };
        let payload = &rest[start..end];
        if res_store::fnv64(payload) != crc {
            return Err(TraceError::Torn { record });
        }
        let json = decode_json(payload).map_err(|_| TraceError::Torn { record })?;
        sections.push((tag, json));
        pos = end;
        record += 1;
    }
    TraceFile::from_sections(sections.iter().map(|(t, j)| (*t, j)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: Json) {
        let mut out = Vec::new();
        encode_json(&v, &mut out);
        assert_eq!(decode_json(&out).unwrap(), v);
    }

    #[test]
    fn scalar_values_round_trip() {
        round_trip(Json::Null);
        round_trip(Json::Bool(false));
        round_trip(Json::Bool(true));
        round_trip(Json::U64(0));
        round_trip(Json::U64(u64::MAX));
        round_trip(Json::I64(-1));
        round_trip(Json::I64(i64::MIN));
        round_trip(Json::F64(1.5));
        round_trip(Json::Str(String::new()));
        round_trip(Json::Str("with \"quotes\" and \n newlines".to_string()));
    }

    #[test]
    fn nested_values_round_trip() {
        round_trip(Json::Arr(vec![
            Json::U64(1),
            Json::Obj(vec![
                ("k".to_string(), Json::Arr(vec![])),
                ("z".to_string(), Json::Null),
            ]),
        ]));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut out = Vec::new();
        encode_json(&Json::U64(7), &mut out);
        out.push(0);
        assert!(decode_json(&out).is_err());
    }

    #[test]
    fn truncated_values_are_rejected() {
        let mut out = Vec::new();
        encode_json(&Json::Str("hello".to_string()), &mut out);
        assert!(decode_json(&out[..out.len() - 1]).is_err());
    }
}
