//! The record / replay / verify operations over [`TraceFile`]s.

use std::fmt;

use mvm_core::Coredump;
use mvm_isa::Program;
use res_core::{replay_observed, replay_suffix, Divergence, ExecutionSuffix, ReplayReport};
use res_obs::Recorder;
use res_store::program_fingerprint;

use crate::format::{TraceError, TraceFile};

/// Why a recording was refused.
#[derive(Debug, Clone)]
pub enum RecordError {
    /// The suffix did not reproduce the dump when replayed against the
    /// program — persisting it would ship a broken reproduction.
    NotReproduced(Box<ReplayReport>),
}

impl fmt::Display for RecordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecordError::NotReproduced(report) => write!(
                f,
                "suffix does not reproduce the dump (fault_matches: {}, replay fault: {:?})",
                report.fault_matches, report.replay_fault
            ),
        }
    }
}

impl std::error::Error for RecordError {}

/// Records a trace: replays `suffix` against `program`/`dump` while
/// observing every schedule event (start/end pc and concrete writes)
/// and packages the observations as a [`TraceFile`]. Refuses suffixes
/// that do not reproduce. `bucket` is the caller-computed root-cause
/// bucket key, if any (this crate cannot compute one — `res-triage`
/// sits above it).
pub fn record_trace(
    program: &Program,
    dump: &Coredump,
    suffix: &ExecutionSuffix,
    bucket: Option<String>,
    rec: &Recorder,
) -> Result<TraceFile, RecordError> {
    let span = rec.span("trace.record");
    let (report, observed, _) = replay_observed(program, dump, suffix, None);
    if !report.reproduced {
        span.end();
        return Err(RecordError::NotReproduced(Box::new(report)));
    }
    let trace = TraceFile::from_suffix(
        program_fingerprint(program),
        dump,
        suffix,
        &observed,
        bucket,
    );
    rec.counter("trace.recorded", 1);
    rec.event_with("trace.record.done", || {
        vec![
            ("steps".to_string(), trace.steps.len().to_string()),
            (
                "instructions".to_string(),
                trace.expected.total_steps.to_string(),
            ),
            ("writes".to_string(), trace.total_writes().to_string()),
        ]
    });
    span.end();
    Ok(trace)
}

/// Replays a trace against the program it was recorded from and
/// verifies reproduction. Strict: a program whose fingerprint differs
/// from the header is refused (use [`verify_trace`] to ask whether a
/// *modified* program still reproduces).
pub fn replay_trace(
    program: &Program,
    trace: &TraceFile,
    rec: &Recorder,
) -> Result<ReplayReport, TraceError> {
    let got = program_fingerprint(program);
    if got != trace.header.program_fp {
        return Err(TraceError::Fingerprint {
            expected: trace.header.program_fp,
            got,
        });
    }
    let span = rec.span("trace.replay");
    let report = replay_suffix(program, &trace.dump, &trace.to_suffix());
    rec.counter("trace.replayed", 1);
    span.end();
    Ok(report)
}

/// The `verify` verdict: did a (possibly fixed) program re-execute the
/// recorded trace identically?
#[derive(Debug, Clone)]
pub struct VerifyOutcome {
    /// `true` when the replay matched the recording event for event
    /// and reproduced the fault and end state.
    pub pass: bool,
    /// `false` when the program under verification differs from the
    /// recorded one (the usual case for a fix).
    pub fingerprint_matches: bool,
    /// The point of first difference, when `pass` is `false`.
    pub divergence: Option<Divergence>,
    /// The underlying replay report.
    pub report: ReplayReport,
}

/// Replays a trace against a possibly-modified program, comparing
/// every schedule event against the recording. Returns `pass` when the
/// execution is indistinguishable from the recorded one; otherwise the
/// [`Divergence`] names the first event (index, thread, expected vs
/// got) where behaviour changed — the wasm-rr "did the fix work?"
/// verdict.
pub fn verify_trace(program: &Program, trace: &TraceFile, rec: &Recorder) -> VerifyOutcome {
    let span = rec.span("trace.verify");
    let fingerprint_matches = program_fingerprint(program) == trace.header.program_fp;
    let expected = trace.expected_events();
    let (report, _, divergence) =
        replay_observed(program, &trace.dump, &trace.to_suffix(), Some(&expected));
    let pass = report.reproduced && divergence.is_none();
    rec.counter("trace.verified", 1);
    if let Some(div) = &divergence {
        rec.event_with("trace.diverged", || {
            vec![
                ("event".to_string(), div.event.to_string()),
                ("tid".to_string(), div.tid.to_string()),
                ("kind".to_string(), div.kind.to_string()),
            ]
        });
    }
    span.end();
    VerifyOutcome {
        pass,
        fingerprint_matches,
        divergence,
        report,
    }
}
