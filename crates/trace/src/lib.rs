//! # Portable on-disk replay traces (`res-trace`)
//!
//! The engine's output artifact — a synthesized suffix (initial memory
//! image `Mi`, inferred inputs, block-granular thread schedule) — is a
//! complete deterministic reproduction of a failure, but until this
//! crate it lived only as an in-memory `SynthesisResult`. A
//! [`TraceFile`] makes it durable and portable: everything replay needs
//! in one versioned file that can be attached to a bug report, returned
//! by the `res-serve` daemon, or re-checked after a fix.
//!
//! ## File formats
//!
//! Two interchangeable encodings carry the same logical content and
//! are auto-detected on read (and selected by extension on write):
//!
//! * **mvm-json text** (`.restrace`) — a `RES-TRACE 1` magic line
//!   followed by `res-store`-framed records (`<tag> <len> <fnv64-hex>
//!   <payload-json>`), one JSON payload per line. Human-greppable.
//! * **compact binary** (`.restrace.bin`) — a `RES-TRACE-BIN 1` magic
//!   line followed by length-prefixed, fnv64-checksummed binary records
//!   holding the same JSON trees in a varint-coded binary form
//!   (typically 3–4× smaller). See [`binary`].
//!
//! Record tags (section order is fixed; unknown tags are skipped so
//! future versions can append sections without a version bump):
//!
//! | tag | section | payload |
//! |-----|---------|---------|
//! | `H` | header | [`TraceHeader`]: format version, program fingerprint, writer |
//! | `D` | dump | the [`Coredump`](mvm_core::Coredump) the trace reproduces |
//! | `M` | image | [`TraceImage`]: `Mi` cells, initial registers, start positions |
//! | `I` | inputs | [`TraceInputs`]: concrete input values per thread |
//! | `T` | step | one [`TraceStep`] per schedule event, in order |
//! | `X` | expected | [`ExpectedOutcome`]: fault, bucket, fingerprints |
//!
//! Writes are atomic (tmp file + rename) and deterministic: no
//! timestamps, static writer metadata, so identical suffixes produce
//! byte-identical trace files at any worker count.
//!
//! Unlike the solver store (which degrades any damage to a cold
//! start), a damaged trace is *unusable* — replaying half a schedule
//! would "reproduce" a different execution — so every defect surfaces
//! as a typed [`TraceError`] naming the damaged record, never a panic
//! and never a silent partial load.
//!
//! ## The record → fix → verify workflow
//!
//! [`record_trace`] replays a synthesized suffix while observing every
//! schedule event (start/end pc, instruction count, and each concrete
//! memory write) and persists the observations. [`verify_trace`] later
//! replays the trace against a possibly-modified program and compares
//! step by step: the first deviation — a different write, a different
//! branch target, a missing fault — is reported as a
//! [`Divergence`](res_core::Divergence) with the event index, thread,
//! and expected-vs-got payload. A fix that prevents the failure shows
//! up as a loud `FAIL` whose divergence pinpoints where behaviour
//! changed; an unrelated change that still faults identically verifies
//! `PASS`.

pub mod binary;
pub mod format;
pub mod ops;

pub use binary::{decode_json, encode_json, BIN_MAGIC};
pub use format::{
    Encoding, ExpectedOutcome, TraceError, TraceFile, TraceHeader, TraceImage, TraceInputs,
    TraceStep, EXT_BIN, EXT_JSON, FORMAT_VERSION, MAGIC,
};
pub use ops::{record_trace, replay_trace, verify_trace, RecordError, VerifyOutcome};
