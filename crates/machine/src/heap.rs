//! Heap allocator with redzones and a free quarantine.
//!
//! The allocator is a bump allocator over the heap segment with:
//!
//! * a **redzone** of [`REDZONE`] bytes on each side of every payload, so
//!   small overflows land in allocator-owned guard space and fault at the
//!   offending access (ASan-style), and
//! * a **quarantine**: freed blocks are never reused, so any later access
//!   to them is unambiguously a use-after-free.
//!
//! Both choices trade address-space for *diagnosability*: the machine is
//! an experimental substrate whose job is to make the ground truth of a
//! memory bug observable, not to be a fast malloc.

use std::collections::BTreeMap;

use mvm_json::{json_enum, json_struct};

use mvm_isa::layout;

use crate::faults::{AccessKind, Fault};

/// Guard bytes placed before and after each allocation payload.
pub const REDZONE: u64 = 16;

/// Lifecycle state of an allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocState {
    /// Payload may be read and written.
    Live,
    /// Block was freed; any access is a use-after-free.
    Freed,
}

/// Metadata for one heap allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocMeta {
    /// Payload base address (after the leading redzone).
    pub base: u64,
    /// Payload size in bytes as requested.
    pub size: u64,
    /// Live or freed.
    pub state: AllocState,
}

/// The heap: bump allocation, per-block metadata, no reuse.
#[derive(Debug, Clone)]
pub struct Heap {
    cursor: u64,
    /// Metadata keyed by payload base, ordered for range queries.
    allocs: BTreeMap<u64, AllocMeta>,
}

json_enum!(AllocState { Live, Freed });
json_struct!(AllocMeta { base, size, state });
json_struct!(Heap { cursor, allocs });

impl Default for Heap {
    fn default() -> Self {
        Self::new()
    }
}

impl Heap {
    /// Creates an empty heap at the start of the heap segment.
    pub fn new() -> Self {
        Heap {
            cursor: layout::HEAP_BASE,
            allocs: BTreeMap::new(),
        }
    }

    /// Allocates `size` payload bytes (zero-size rounds up to 1).
    ///
    /// # Errors
    ///
    /// Returns [`Fault::OutOfMemory`] when the segment is exhausted.
    pub fn alloc(&mut self, size: u64) -> Result<u64, Fault> {
        let size = size.max(1);
        let total = REDZONE + size + REDZONE;
        let aligned_total = (total + 15) & !15;
        if self.cursor.checked_add(aligned_total).is_none()
            || self.cursor + aligned_total > layout::HEAP_END
        {
            return Err(Fault::OutOfMemory);
        }
        let base = self.cursor + REDZONE;
        self.cursor += aligned_total;
        self.allocs.insert(
            base,
            AllocMeta {
                base,
                size,
                state: AllocState::Live,
            },
        );
        Ok(base)
    }

    /// Frees the block whose payload begins at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`Fault::DoubleFree`] for an already-freed base and
    /// [`Fault::InvalidFree`] for an address that is not a block base.
    pub fn free(&mut self, addr: u64) -> Result<(), Fault> {
        match self.allocs.get_mut(&addr) {
            Some(meta) if meta.state == AllocState::Live => {
                meta.state = AllocState::Freed;
                Ok(())
            }
            Some(_) => Err(Fault::DoubleFree { base: addr }),
            None => Err(Fault::InvalidFree { addr }),
        }
    }

    /// Checks whether an access of `len` bytes at `addr` is legal heap
    /// usage.
    ///
    /// # Errors
    ///
    /// Returns the precise memory-safety fault the access commits:
    /// use-after-free, overflow into a redzone, or a touch of
    /// never-allocated heap space.
    pub fn check_access(&self, addr: u64, len: u64, kind: AccessKind) -> Result<(), Fault> {
        let end = addr.wrapping_add(len.max(1));
        // Find the allocation whose payload or vicinity contains `addr`:
        // the greatest base <= addr+REDZONE covers leading-redzone hits.
        let candidate = self
            .allocs
            .range(..=addr.wrapping_add(REDZONE))
            .next_back()
            .map(|(_, m)| *m);
        if let Some(meta) = candidate {
            let payload_end = meta.base + meta.size;
            if addr >= meta.base && end <= payload_end {
                return match meta.state {
                    AllocState::Live => Ok(()),
                    AllocState::Freed => Err(Fault::UseAfterFree {
                        addr,
                        base: meta.base,
                        kind,
                    }),
                };
            }
            // Within the block's guarded envelope but outside payload:
            // an overflow/underflow relative to this block.
            let env_start = meta.base - REDZONE;
            let env_end = payload_end + REDZONE;
            if addr >= env_start && addr < env_end {
                // Accesses straddling the payload boundary also land here.
                if meta.state == AllocState::Freed && addr >= meta.base && addr < payload_end {
                    return Err(Fault::UseAfterFree {
                        addr,
                        base: meta.base,
                        kind,
                    });
                }
                return Err(Fault::HeapOverflow {
                    addr,
                    near_base: Some(meta.base),
                    kind,
                });
            }
        }
        Err(Fault::HeapOverflow {
            addr,
            near_base: candidate.map(|m| m.base),
            kind,
        })
    }

    /// Metadata of the allocation containing `addr` (live or freed), if
    /// any.
    pub fn alloc_containing(&self, addr: u64) -> Option<AllocMeta> {
        let (_, meta) = self.allocs.range(..=addr).next_back()?;
        (addr >= meta.base && addr < meta.base + meta.size).then_some(*meta)
    }

    /// All allocation metadata in address order.
    pub fn iter_allocs(&self) -> impl Iterator<Item = &AllocMeta> {
        self.allocs.values()
    }

    /// Number of allocations ever made.
    pub fn alloc_count(&self) -> usize {
        self.allocs.len()
    }

    /// Bytes of heap address space consumed so far.
    pub fn used(&self) -> u64 {
        self.cursor - layout::HEAP_BASE
    }

    /// Replaces the allocator state wholesale — the RES replayer uses
    /// this to reconstruct, from coredump metadata, the heap as it stood
    /// at the start of a synthesized suffix.
    ///
    /// The bump cursor is positioned just past the largest installed
    /// envelope (or at the heap base when empty), so subsequent
    /// allocations are deterministic given the installed set.
    pub fn install(&mut self, allocs: impl IntoIterator<Item = AllocMeta>) {
        self.allocs.clear();
        let mut cursor = layout::HEAP_BASE;
        for meta in allocs {
            let env_end = meta.base + meta.size + REDZONE;
            let aligned = (env_end + 15) & !15;
            cursor = cursor.max(aligned);
            self.allocs.insert(meta.base, meta);
        }
        self.cursor = cursor;
    }

    /// Forces one allocation's lifecycle state (replay bootstrap for
    /// suffixes that free or allocate inside the replayed window).
    pub fn set_state(&mut self, base: u64, state: AllocState) -> bool {
        match self.allocs.get_mut(&base) {
            Some(m) => {
                m.state = state;
                true
            }
            None => false,
        }
    }

    /// Removes an allocation record entirely and rewinds the bump cursor
    /// to just past the remaining envelopes, so that re-executing the
    /// removed `alloc`s (newest-allocated removed first) reproduces their
    /// addresses.
    pub fn remove_alloc(&mut self, base: u64) -> Option<AllocMeta> {
        let removed = self.allocs.remove(&base)?;
        self.cursor = self
            .allocs
            .values()
            .map(|m| (m.base + m.size + REDZONE + 15) & !15)
            .max()
            .unwrap_or(layout::HEAP_BASE);
        Some(removed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_returns_disjoint_payloads() {
        let mut h = Heap::new();
        let a = h.alloc(32).unwrap();
        let b = h.alloc(32).unwrap();
        assert!(b >= a + 32 + 2 * REDZONE - REDZONE);
        assert_ne!(a, b);
        assert!(h.check_access(a, 32, AccessKind::Write).is_ok());
        assert!(h.check_access(b, 32, AccessKind::Read).is_ok());
    }

    #[test]
    fn overflow_into_redzone_detected() {
        let mut h = Heap::new();
        let a = h.alloc(16).unwrap();
        let e = h.check_access(a + 16, 1, AccessKind::Write).unwrap_err();
        assert!(matches!(
            e,
            Fault::HeapOverflow {
                near_base: Some(b),
                ..
            } if b == a
        ));
    }

    #[test]
    fn underflow_detected() {
        let mut h = Heap::new();
        let a = h.alloc(16).unwrap();
        let e = h.check_access(a - 1, 1, AccessKind::Read).unwrap_err();
        assert!(matches!(e, Fault::HeapOverflow { .. }));
    }

    #[test]
    fn straddling_end_detected() {
        let mut h = Heap::new();
        let a = h.alloc(16).unwrap();
        // 8-byte access starting at the last payload byte.
        let e = h.check_access(a + 15, 8, AccessKind::Write).unwrap_err();
        assert!(matches!(e, Fault::HeapOverflow { .. }));
    }

    #[test]
    fn use_after_free_detected() {
        let mut h = Heap::new();
        let a = h.alloc(16).unwrap();
        h.free(a).unwrap();
        let e = h.check_access(a, 8, AccessKind::Read).unwrap_err();
        assert!(matches!(e, Fault::UseAfterFree { base, .. } if base == a));
    }

    #[test]
    fn double_free_detected() {
        let mut h = Heap::new();
        let a = h.alloc(16).unwrap();
        h.free(a).unwrap();
        assert!(matches!(h.free(a), Err(Fault::DoubleFree { base }) if base == a));
    }

    #[test]
    fn invalid_free_detected() {
        let mut h = Heap::new();
        let a = h.alloc(16).unwrap();
        assert!(matches!(h.free(a + 4), Err(Fault::InvalidFree { .. })));
        assert!(matches!(
            h.free(0x2345_0000),
            Err(Fault::InvalidFree { .. })
        ));
    }

    #[test]
    fn never_allocated_heap_access_faults() {
        let h = Heap::new();
        assert!(h
            .check_access(layout::HEAP_BASE + 100, 8, AccessKind::Read)
            .is_err());
    }

    #[test]
    fn zero_size_alloc_is_usable() {
        let mut h = Heap::new();
        let a = h.alloc(0).unwrap();
        assert!(h.check_access(a, 1, AccessKind::Write).is_ok());
    }

    #[test]
    fn alloc_containing_lookup() {
        let mut h = Heap::new();
        let a = h.alloc(16).unwrap();
        assert_eq!(h.alloc_containing(a + 8).unwrap().base, a);
        assert!(h.alloc_containing(a + 16).is_none());
        assert!(h.alloc_containing(a - 1).is_none());
    }

    #[test]
    fn out_of_memory_when_exhausted() {
        let mut h = Heap::new();
        assert!(matches!(
            h.alloc(layout::HEAP_END - layout::HEAP_BASE),
            Err(Fault::OutOfMemory)
        ));
    }

    #[test]
    fn freed_blocks_are_not_reused() {
        let mut h = Heap::new();
        let a = h.alloc(64).unwrap();
        h.free(a).unwrap();
        let b = h.alloc(64).unwrap();
        assert_ne!(a, b);
    }
}

#[cfg(test)]
mod install_tests {
    use super::*;

    #[test]
    fn install_positions_cursor_for_deterministic_realloc() {
        let mut h1 = Heap::new();
        let a = h1.alloc(16).unwrap();
        let b = h1.alloc(24).unwrap();
        let c = h1.alloc(8).unwrap();
        // Rebuild a heap holding only the first two allocations; the
        // third must land at the same address when re-executed.
        let metas: Vec<AllocMeta> = h1.iter_allocs().filter(|m| m.base != c).copied().collect();
        let mut h2 = Heap::new();
        h2.install(metas);
        assert_eq!(h2.alloc(8).unwrap(), c);
        assert_eq!(h2.alloc_containing(a).unwrap().base, a);
        assert_eq!(h2.alloc_containing(b).unwrap().base, b);
    }

    #[test]
    fn remove_alloc_rewinds_cursor() {
        let mut h = Heap::new();
        let _a = h.alloc(16).unwrap();
        let b = h.alloc(32).unwrap();
        let removed = h.remove_alloc(b).unwrap();
        assert_eq!(removed.size, 32);
        assert_eq!(h.alloc(32).unwrap(), b);
        assert!(h.remove_alloc(0xdead).is_none());
    }

    #[test]
    fn set_state_flips_lifecycle() {
        let mut h = Heap::new();
        let a = h.alloc(16).unwrap();
        h.free(a).unwrap();
        assert!(h.set_state(a, AllocState::Live));
        assert!(h.check_access(a, 8, AccessKind::Read).is_ok());
        assert!(!h.set_state(0x123, AllocState::Live));
    }
}
