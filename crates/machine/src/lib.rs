//! # MicroVM concrete interpreter
//!
//! `mvm-machine` executes [`mvm_isa`] programs deterministically: a
//! multi-threaded interpreter with a controllable scheduler, a heap with
//! redzones and a free quarantine (so memory-safety bugs fault at the
//! access that commits them), lock-based synchronization with deadlock
//! detection, and external inputs/outputs.
//!
//! It stands in for the "production system" of the HotOS'13 RES paper:
//! it is where failures happen and coredumps come from. Two properties
//! matter for the reproduction:
//!
//! 1. **Determinism under a pinned schedule.** Given the same input
//!    source and the same scheduler decisions, execution is bit-for-bit
//!    reproducible — this is what lets the RES replayer (paper §2.1)
//!    "slip an environment underneath the debugger" and re-run a
//!    synthesized suffix deterministically.
//! 2. **No recording by default.** The machine optionally produces
//!    ground-truth traces and record-replay logs, but only for the
//!    baselines and for test oracles; RES itself consumes nothing but the
//!    post-failure snapshot (plus free breadcrumbs such as the LBR ring,
//!    paper §2.4).

pub mod breadcrumbs;
pub mod exec;
pub mod faults;
pub mod heap;
pub mod mem;
pub mod sched;
pub mod thread;
pub mod trace;

pub use breadcrumbs::{LbrEntry, LbrRing, LogRecord};
pub use exec::{
    InputSource,
    Machine,
    MachineConfig,
    Outcome,
    OutputRecord, //
};
pub use faults::{AccessKind, Fault};
pub use heap::{AllocMeta, AllocState, Heap};
pub use mem::Memory;
pub use sched::SchedPolicy;
pub use thread::{Frame, ThreadId, ThreadState, ThreadStatus};
pub use trace::{TraceEvent, TraceLevel, Tracer};
