//! The MicroVM interpreter.
//!
//! [`Machine`] owns all execution state (memory, heap, threads, locks)
//! and advances it one instruction at a time. The public
//! [`Machine::step_thread`] lets a caller drive a *specific* thread — the
//! hook the RES replayer uses to pin a reconstructed schedule — while
//! [`Machine::run`] drives execution under a [`SchedPolicy`].

use std::collections::{BTreeMap, HashMap, VecDeque};

use mvm_isa::{layout, Channel, Inst, Loc, Operand, Program, Reg, Terminator, Width};

use crate::breadcrumbs::{LbrEntry, LbrRing, LogRecord};
use crate::faults::{AccessKind, Fault};
use crate::heap::Heap;
use crate::mem::Memory;
use crate::sched::{SchedPolicy, Scheduler};
use crate::thread::{Frame, ThreadId, ThreadState, ThreadStatus};
use crate::trace::{TraceEvent, TraceLevel, Tracer};

/// Where `input` instructions get their values.
#[derive(Debug, Clone)]
pub enum InputSource {
    /// Every input returns this value.
    Fixed(u64),
    /// Deterministic pseudo-random stream from a seed.
    Seeded {
        /// PRNG seed.
        seed: u64,
    },
    /// Per-thread scripted queues (used for replay); when a thread's
    /// queue is exhausted, `fallback` is returned.
    Scripted {
        /// Values per thread, consumed front to back.
        per_thread: HashMap<ThreadId, VecDeque<u64>>,
        /// Value delivered once a queue runs dry.
        fallback: u64,
    },
}

impl InputSource {
    fn next(&mut self, tid: ThreadId) -> u64 {
        match self {
            InputSource::Fixed(v) => *v,
            InputSource::Seeded { seed } => mvm_prng::XorShift64Star::step(seed),
            InputSource::Scripted {
                per_thread,
                fallback,
            } => per_thread
                .get_mut(&tid)
                .and_then(VecDeque::pop_front)
                .unwrap_or(*fallback),
        }
    }
}

/// Machine construction parameters.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Scheduling policy.
    pub sched: SchedPolicy,
    /// Input source.
    pub input: InputSource,
    /// LBR ring capacity (0 disables; 16 models Intel LBR).
    pub lbr_capacity: usize,
    /// Enable the paper's §2.4 LBR extension: don't spend ring slots on
    /// branches whose outcome is re-derivable offline from the CFG.
    pub lbr_filter_inferrable: bool,
    /// Tracing level (Off in "production").
    pub trace: TraceLevel,
    /// Fault the run with a step-limit outcome after this many steps.
    pub max_steps: u64,
    /// Retained error-log records (oldest evicted).
    pub log_capacity: usize,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            sched: SchedPolicy::round_robin(),
            input: InputSource::Fixed(0),
            lbr_capacity: 16,
            lbr_filter_inferrable: false,
            trace: TraceLevel::Off,
            max_steps: 100_000_000,
            log_capacity: 64,
        }
    }
}

/// A value the program emitted on an output channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutputRecord {
    /// Emitting thread.
    pub tid: ThreadId,
    /// Location of the `output` instruction.
    pub at: Loc,
    /// Emitted value.
    pub value: u64,
    /// Output channel.
    pub channel: Channel,
}

/// How a run ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// All threads halted normally.
    Halted {
        /// Total steps executed.
        steps: u64,
    },
    /// A thread faulted; the machine state is frozen at the fault.
    Faulted {
        /// The fault.
        fault: Fault,
        /// Faulting thread.
        tid: ThreadId,
        /// Total steps executed.
        steps: u64,
    },
    /// The configured step budget ran out.
    StepLimit {
        /// Total steps executed.
        steps: u64,
    },
}

impl Outcome {
    /// Returns the fault if the run faulted.
    pub fn fault(&self) -> Option<&Fault> {
        match self {
            Outcome::Faulted { fault, .. } => Some(fault),
            _ => None,
        }
    }
}

/// The MicroVM.
#[derive(Debug, Clone)]
pub struct Machine {
    program: Program,
    globals_end: u64,
    memory: Memory,
    heap: Heap,
    threads: BTreeMap<ThreadId, ThreadState>,
    next_tid: ThreadId,
    steps: u64,
    lbr: LbrRing,
    logs: VecDeque<LogRecord>,
    outputs: Vec<OutputRecord>,
    tracer: Tracer,
    scheduler: Scheduler,
    input: InputSource,
    config_max_steps: u64,
    config_log_capacity: usize,
    fault: Option<(ThreadId, Fault)>,
}

impl Machine {
    /// Boots a machine: loads globals, creates the main thread at the
    /// program entry.
    pub fn new(program: Program, config: MachineConfig) -> Self {
        let mut memory = Memory::new();
        let mut globals_end = layout::GLOBAL_BASE;
        for g in &program.globals {
            if !g.init.is_empty() {
                memory.write_bytes(g.addr, &g.init);
            }
            globals_end = globals_end.max(g.addr + ((g.size.max(1) + 7) & !7));
        }
        let main = ThreadState::spawned(0, program.entry, 0);
        let mut tracer = Tracer::new(config.trace);
        tracer.block_enter(0, main.pc(), 0);
        Machine {
            program,
            globals_end,
            memory,
            heap: Heap::new(),
            threads: BTreeMap::from([(0, main)]),
            next_tid: 1,
            steps: 0,
            lbr: LbrRing::new(config.lbr_capacity).with_filtering(config.lbr_filter_inferrable),
            logs: VecDeque::new(),
            outputs: Vec::new(),
            tracer,
            scheduler: Scheduler::new(config.sched),
            input: config.input,
            config_max_steps: config.max_steps,
            config_log_capacity: config.log_capacity,
            fault: None,
        }
    }

    /// The loaded program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Current memory contents.
    pub fn memory(&self) -> &Memory {
        &self.memory
    }

    /// Mutable memory access — used by the RES replayer to instantiate a
    /// synthesized partial image `Mi` before replaying a suffix.
    pub fn memory_mut(&mut self) -> &mut Memory {
        &mut self.memory
    }

    /// Heap allocator state.
    pub fn heap(&self) -> &Heap {
        &self.heap
    }

    /// Mutable heap state — used by the replayer to reconstruct
    /// allocator metadata from a coredump.
    pub fn heap_mut(&mut self) -> &mut Heap {
        &mut self.heap
    }

    /// All threads by id.
    pub fn threads(&self) -> &BTreeMap<ThreadId, ThreadState> {
        &self.threads
    }

    /// Mutable thread table — used by the replayer to instantiate
    /// thread contexts from a synthesized snapshot.
    pub fn threads_mut(&mut self) -> &mut BTreeMap<ThreadId, ThreadState> {
        &mut self.threads
    }

    /// The LBR breadcrumb ring.
    pub fn lbr(&self) -> &LbrRing {
        &self.lbr
    }

    /// Retained error-log records, oldest first.
    pub fn error_log(&self) -> impl Iterator<Item = &LogRecord> {
        self.logs.iter()
    }

    /// All program outputs in emission order.
    pub fn outputs(&self) -> &[OutputRecord] {
        &self.outputs
    }

    /// The tracer (empty unless tracing was enabled).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Steps executed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// The recorded fault, if execution faulted.
    pub fn fault(&self) -> Option<&(ThreadId, Fault)> {
        self.fault.as_ref()
    }

    /// Ids of currently runnable threads, ascending.
    pub fn runnable(&self) -> Vec<ThreadId> {
        self.threads
            .values()
            .filter(|t| t.status.is_runnable())
            .map(|t| t.tid)
            .collect()
    }

    /// Registers an already-constructed thread (replay bootstrap). The
    /// thread id must not collide with an existing one.
    ///
    /// # Panics
    ///
    /// Panics on thread-id collision.
    pub fn install_thread(&mut self, t: ThreadState) {
        assert!(
            !self.threads.contains_key(&t.tid),
            "thread {} already exists",
            t.tid
        );
        self.next_tid = self.next_tid.max(t.tid + 1);
        self.threads.insert(t.tid, t);
    }

    /// Overrides the input source (replay bootstrap).
    pub fn set_input(&mut self, input: InputSource) {
        self.input = input;
    }

    /// Marks a mutex as held by a thread (replay bootstrap for suffixes
    /// that begin inside a critical section). Ownership lives in the
    /// mutex's memory word: 0 is free, `tid + 1` is held.
    pub fn force_lock_owner(&mut self, mutex: u64, owner: Option<ThreadId>) {
        let word = owner.map_or(0, |t| t + 1);
        self.memory.write(mutex, word, Width::W8);
    }

    /// Runs until halt, fault, or the step limit.
    pub fn run(&mut self) -> Outcome {
        loop {
            if let Some((tid, fault)) = &self.fault {
                return Outcome::Faulted {
                    fault: fault.clone(),
                    tid: *tid,
                    steps: self.steps,
                };
            }
            if self.steps >= self.config_max_steps {
                return Outcome::StepLimit { steps: self.steps };
            }
            let runnable = self.runnable();
            if runnable.is_empty() {
                let blocked: Vec<ThreadId> = self
                    .threads
                    .values()
                    .filter(|t| t.status.is_blocked())
                    .map(|t| t.tid)
                    .collect();
                if blocked.is_empty() {
                    return Outcome::Halted { steps: self.steps };
                }
                let tid = blocked[0];
                let fault = Fault::Deadlock { threads: blocked };
                self.fault = Some((tid, fault.clone()));
                return Outcome::Faulted {
                    fault,
                    tid,
                    steps: self.steps,
                };
            }
            let tid = self.scheduler.pick(&runnable);
            // `step_thread` records any fault internally; the loop exits
            // on the next iteration.
            let _ = self.step_thread(tid);
        }
    }

    /// Executes one instruction (or terminator) of thread `tid`.
    ///
    /// Returns `Ok(true)` if the thread remains runnable, `Ok(false)` if
    /// it halted or blocked.
    ///
    /// # Errors
    ///
    /// Returns the fault if the step faulted; the machine also records
    /// it and freezes (the program counter stays at the faulting
    /// instruction, as a coredump expects).
    pub fn step_thread(&mut self, tid: ThreadId) -> Result<bool, Fault> {
        debug_assert!(self.fault.is_none(), "stepping a faulted machine");
        self.steps += 1;
        let result = self.step_inner(tid);
        if let Err(fault) = &result {
            self.fault = Some((tid, fault.clone()));
        }
        result
    }

    fn thread(&self, tid: ThreadId) -> &ThreadState {
        self.threads.get(&tid).expect("unknown thread")
    }

    fn step_inner(&mut self, tid: ThreadId) -> Result<bool, Fault> {
        let loc = self.thread(tid).pc();
        let block = self.program.block_at(loc).clone();
        if (loc.inst as usize) < block.insts.len() {
            let inst = block.insts[loc.inst as usize].clone();
            self.exec_inst(tid, loc, &inst)
        } else {
            self.exec_terminator(tid, loc, &block.terminator.clone())
        }
    }

    fn eval(&self, tid: ThreadId, op: Operand) -> u64 {
        match op {
            Operand::Reg(r) => self.thread(tid).top().reg(r),
            Operand::Imm(v) => v,
        }
    }

    /// Validates that `[addr, addr+len)` is legal to touch.
    fn check_access(&self, addr: u64, len: u64, kind: AccessKind) -> Result<(), Fault> {
        match layout::region_of(addr) {
            layout::Region::Global => {
                if addr.wrapping_add(len) <= self.globals_end {
                    Ok(())
                } else {
                    Err(Fault::InvalidAccess { addr, kind })
                }
            }
            layout::Region::Heap => self.heap.check_access(addr, len, kind),
            layout::Region::Stack { tid } => {
                if tid < self.next_tid {
                    Ok(())
                } else {
                    Err(Fault::InvalidAccess { addr, kind })
                }
            }
            layout::Region::Unmapped => Err(Fault::InvalidAccess { addr, kind }),
        }
    }

    fn exec_inst(&mut self, tid: ThreadId, loc: Loc, inst: &Inst) -> Result<bool, Fault> {
        let mut advance = true;
        let mut runnable = true;
        match inst {
            Inst::Mov { dst, src } => {
                let v = self.eval(tid, *src);
                self.threads
                    .get_mut(&tid)
                    .unwrap()
                    .top_mut()
                    .set_reg(*dst, v);
            }
            Inst::Bin { op, dst, lhs, rhs } => {
                let a = self.eval(tid, *lhs);
                let b = self.eval(tid, *rhs);
                let v = op.eval(a, b).ok_or(Fault::DivByZero)?;
                self.threads
                    .get_mut(&tid)
                    .unwrap()
                    .top_mut()
                    .set_reg(*dst, v);
            }
            Inst::Un { op, dst, src } => {
                let v = op.eval(self.eval(tid, *src));
                self.threads
                    .get_mut(&tid)
                    .unwrap()
                    .top_mut()
                    .set_reg(*dst, v);
            }
            Inst::Load {
                dst,
                addr,
                offset,
                width,
            } => {
                let base = self.eval(tid, *addr).wrapping_add(*offset as u64);
                self.check_access(base, width.bytes(), AccessKind::Read)?;
                let v = self.memory.read(base, *width);
                self.threads
                    .get_mut(&tid)
                    .unwrap()
                    .top_mut()
                    .set_reg(*dst, v);
                self.tracer.fine(TraceEvent::Mem {
                    tid,
                    loc,
                    kind: AccessKind::Read,
                    addr: base,
                    value: v,
                    width: *width,
                });
            }
            Inst::Store {
                src,
                addr,
                offset,
                width,
            } => {
                let base = self.eval(tid, *addr).wrapping_add(*offset as u64);
                self.check_access(base, width.bytes(), AccessKind::Write)?;
                let v = self.eval(tid, *src);
                self.memory.write(base, v, *width);
                self.tracer.fine(TraceEvent::Mem {
                    tid,
                    loc,
                    kind: AccessKind::Write,
                    addr: base,
                    value: v,
                    width: *width,
                });
            }
            Inst::AddrOf { dst, global } => {
                let a = self.program.global(*global).addr;
                self.threads
                    .get_mut(&tid)
                    .unwrap()
                    .top_mut()
                    .set_reg(*dst, a);
            }
            Inst::Input { dst, kind: _ } => {
                let v = self.input.next(tid);
                let t = self.threads.get_mut(&tid).unwrap();
                t.inputs_consumed += 1;
                t.top_mut().set_reg(*dst, v);
                self.tracer.fine(TraceEvent::Input { tid, loc, value: v });
            }
            Inst::Output { src, channel } => {
                let v = self.eval(tid, *src);
                self.outputs.push(OutputRecord {
                    tid,
                    at: loc,
                    value: v,
                    channel: *channel,
                });
                if *channel == Channel::Log {
                    if self.logs.len() == self.config_log_capacity {
                        self.logs.pop_front();
                    }
                    self.logs.push_back(LogRecord {
                        tid,
                        at: loc,
                        value: v,
                        step: self.steps,
                    });
                }
            }
            Inst::Alloc { dst, size } => {
                let sz = self.eval(tid, *size);
                let base = self.heap.alloc(sz)?;
                // Materialize the payload so it appears in coredumps.
                self.memory.map_zeroed(base, sz.max(1));
                self.tracer.fine(TraceEvent::Alloc {
                    tid,
                    loc,
                    base,
                    size: sz,
                });
                self.threads
                    .get_mut(&tid)
                    .unwrap()
                    .top_mut()
                    .set_reg(*dst, base);
            }
            Inst::Free { addr } => {
                let a = self.eval(tid, *addr);
                self.heap.free(a)?;
                self.tracer.fine(TraceEvent::Free { tid, loc, base: a });
            }
            Inst::Lock { addr } => {
                let mutex = self.eval(tid, *addr);
                self.check_access(mutex, 8, AccessKind::Write)?;
                // Ownership lives in the mutex word itself: 0 is free,
                // `tid + 1` is held — so coredumps and replays see lock
                // state without a side table.
                let word = self.memory.read(mutex, Width::W8);
                if word == 0 {
                    self.memory.write(mutex, tid + 1, Width::W8);
                    self.tracer.fine(TraceEvent::Sync {
                        tid,
                        loc,
                        mutex,
                        acquire: true,
                    });
                } else {
                    // Contended (including self-deadlock): block and
                    // retry this same instruction when woken.
                    self.threads.get_mut(&tid).unwrap().status = ThreadStatus::BlockedOnLock(mutex);
                    advance = false;
                    runnable = false;
                }
            }
            Inst::Unlock { addr } => {
                let mutex = self.eval(tid, *addr);
                self.check_access(mutex, 8, AccessKind::Write)?;
                let word = self.memory.read(mutex, Width::W8);
                if word != tid + 1 {
                    return Err(Fault::UnlockNotOwned { mutex });
                }
                self.memory.write(mutex, 0, Width::W8);
                self.tracer.fine(TraceEvent::Sync {
                    tid,
                    loc,
                    mutex,
                    acquire: false,
                });
                // Wake every waiter; they re-execute their Lock.
                for t in self.threads.values_mut() {
                    if t.status == ThreadStatus::BlockedOnLock(mutex) {
                        t.status = ThreadStatus::Runnable;
                    }
                }
            }
            Inst::Spawn { dst, func, arg } => {
                let a = self.eval(tid, *arg);
                let new_tid = self.next_tid;
                self.next_tid += 1;
                let t = ThreadState::spawned(new_tid, *func, a);
                self.tracer.block_enter(new_tid, t.pc(), self.steps);
                self.threads.insert(new_tid, t);
                self.threads
                    .get_mut(&tid)
                    .unwrap()
                    .top_mut()
                    .set_reg(*dst, new_tid);
            }
            Inst::Join { tid: target_op } => {
                let target = self.eval(tid, *target_op);
                if target >= self.next_tid {
                    return Err(Fault::JoinUnknownThread { tid: target });
                }
                let halted = self
                    .threads
                    .get(&target)
                    .is_none_or(|t| t.status == ThreadStatus::Halted);
                if !halted {
                    self.threads.get_mut(&tid).unwrap().status =
                        ThreadStatus::BlockedOnJoin(target);
                    advance = false;
                    runnable = false;
                }
            }
            Inst::Assert { cond, msg } => {
                if self.eval(tid, *cond) == 0 {
                    return Err(Fault::AssertFailed { msg: msg.clone() });
                }
            }
            Inst::Nop => {}
        }
        if advance {
            self.threads.get_mut(&tid).unwrap().top_mut().inst += 1;
        }
        Ok(runnable)
    }

    fn exec_terminator(
        &mut self,
        tid: ThreadId,
        loc: Loc,
        term: &Terminator,
    ) -> Result<bool, Fault> {
        match term {
            Terminator::Jump(target) => {
                self.goto(tid, loc, *target, true);
                Ok(true)
            }
            Terminator::Branch {
                cond,
                then_b,
                else_b,
            } => {
                let taken = if self.eval(tid, *cond) != 0 {
                    *then_b
                } else {
                    *else_b
                };
                self.goto(tid, loc, taken, false);
                Ok(true)
            }
            Terminator::Call {
                func,
                args,
                ret,
                cont,
            } => {
                let arg_vals: Vec<u64> = args.iter().map(|a| self.eval(tid, *a)).collect();
                let sp = self.thread(tid).top().reg(Reg(31));
                {
                    let t = self.threads.get_mut(&tid).unwrap();
                    // Park the caller at the continuation.
                    let caller = t.top_mut();
                    caller.block = *cont;
                    caller.inst = 0;
                    let mut frame = Frame::at_entry(*func);
                    for (i, v) in arg_vals.iter().enumerate() {
                        frame.set_reg(Reg(i as u8), *v);
                    }
                    // The callee inherits the caller's stack pointer.
                    frame.set_reg(Reg(31), sp);
                    frame.ret_reg = *ret;
                    t.frames.push(frame);
                }
                let entry = self.thread(tid).pc();
                self.lbr.record(LbrEntry {
                    tid,
                    from: loc,
                    to: entry,
                    inferrable: true,
                });
                self.tracer.block_enter(tid, entry, self.steps);
                Ok(true)
            }
            Terminator::Return(val) => {
                let v = val.map(|op| self.eval(tid, op));
                let t = self.threads.get_mut(&tid).unwrap();
                let frame = t.frames.pop().expect("return without frame");
                if t.frames.is_empty() {
                    // Returning from the bottom frame halts the thread.
                    t.frames.push(frame);
                    t.status = ThreadStatus::Halted;
                    self.wake_joiners(tid);
                    return Ok(false);
                }
                if let (Some(r), Some(v)) = (frame.ret_reg, v) {
                    t.top_mut().set_reg(r, v);
                }
                let cont = self.thread(tid).pc();
                self.lbr.record(LbrEntry {
                    tid,
                    from: loc,
                    to: cont,
                    inferrable: true,
                });
                self.tracer.block_enter(tid, cont, self.steps);
                Ok(true)
            }
            Terminator::Halt => {
                self.threads.get_mut(&tid).unwrap().status = ThreadStatus::Halted;
                self.wake_joiners(tid);
                Ok(false)
            }
        }
    }

    fn goto(&mut self, tid: ThreadId, from: Loc, target: mvm_isa::BlockId, inferrable: bool) {
        {
            let t = self.threads.get_mut(&tid).unwrap();
            let f = t.top_mut();
            f.block = target;
            f.inst = 0;
        }
        let to = self.thread(tid).pc();
        self.lbr.record(LbrEntry {
            tid,
            from,
            to,
            inferrable,
        });
        self.tracer.block_enter(tid, to, self.steps);
    }

    fn wake_joiners(&mut self, halted: ThreadId) {
        for t in self.threads.values_mut() {
            if t.status == ThreadStatus::BlockedOnJoin(halted) {
                t.status = ThreadStatus::Runnable;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvm_isa::asm::assemble;

    fn run_src(src: &str) -> (Machine, Outcome) {
        let p = assemble(src).unwrap();
        let mut m = Machine::new(p, MachineConfig::default());
        let o = m.run();
        (m, o)
    }

    #[test]
    fn arithmetic_and_halt() {
        let (m, o) = run_src("func main() {\nentry:\n  mov r0, 6\n  mul r1, r0, 7\n  halt\n}");
        assert!(matches!(o, Outcome::Halted { .. }));
        assert_eq!(m.threads()[&0].top().reg(Reg(1)), 42);
    }

    #[test]
    fn globals_load_store() {
        let (m, o) = run_src(
            "global g 8 = 10\nfunc main() {\nentry:\n  addr r0, g\n  load r1, [r0]\n  add r1, r1, 1\n  store r1, [r0]\n  halt\n}",
        );
        assert!(matches!(o, Outcome::Halted { .. }));
        let g = m.program().global_by_name("g").unwrap();
        let addr = m.program().global(g).addr;
        assert_eq!(m.memory().read(addr, Width::W8), 11);
    }

    #[test]
    fn div_by_zero_faults_at_pc() {
        let (m, o) = run_src("func main() {\nentry:\n  mov r0, 0\n  divu r1, 5, r0\n  halt\n}");
        let Outcome::Faulted { fault, tid, .. } = o else {
            panic!("expected fault")
        };
        assert_eq!(fault, Fault::DivByZero);
        assert_eq!(tid, 0);
        // PC frozen at the faulting instruction (index 1).
        assert_eq!(m.threads()[&0].pc().inst, 1);
    }

    #[test]
    fn invalid_access_faults() {
        let (_, o) = run_src("func main() {\nentry:\n  mov r0, 64\n  load r1, [r0]\n  halt\n}");
        assert!(matches!(
            o.fault(),
            Some(Fault::InvalidAccess {
                addr: 64,
                kind: AccessKind::Read
            })
        ));
    }

    #[test]
    fn assert_failure_reports_message() {
        let (_, o) = run_src("func main() {\nentry:\n  assert 0, \"invariant broken\"\n  halt\n}");
        assert!(matches!(
            o.fault(),
            Some(Fault::AssertFailed { msg }) if msg == "invariant broken"
        ));
    }

    #[test]
    fn heap_alloc_use_free() {
        let (m, o) = run_src(
            "func main() {\nentry:\n  alloc r0, 16\n  store 7, [r0+8]\n  load r1, [r0+8]\n  assert r1, \"roundtrip\"\n  free r0\n  halt\n}",
        );
        assert!(matches!(o, Outcome::Halted { .. }), "{o:?}");
        assert_eq!(m.heap().alloc_count(), 1);
    }

    #[test]
    fn heap_overflow_faults() {
        let (_, o) =
            run_src("func main() {\nentry:\n  alloc r0, 16\n  store 1, [r0+16]\n  halt\n}");
        assert!(matches!(o.fault(), Some(Fault::HeapOverflow { .. })));
    }

    #[test]
    fn use_after_free_faults() {
        let (_, o) =
            run_src("func main() {\nentry:\n  alloc r0, 16\n  free r0\n  load r1, [r0]\n  halt\n}");
        assert!(matches!(o.fault(), Some(Fault::UseAfterFree { .. })));
    }

    #[test]
    fn double_free_faults() {
        let (_, o) =
            run_src("func main() {\nentry:\n  alloc r0, 16\n  free r0\n  free r0\n  halt\n}");
        assert!(matches!(o.fault(), Some(Fault::DoubleFree { .. })));
    }

    #[test]
    fn calls_pass_args_and_return_values() {
        let (m, o) = run_src(
            r#"
            func add3(2) {
            entry:
                add r2, r0, r1
                add r2, r2, 1
                ret r2
            }
            func main() {
            entry:
                call r5 = add3(20, 21), cont
            cont:
                halt
            }
            "#,
        );
        assert!(matches!(o, Outcome::Halted { .. }));
        assert_eq!(m.threads()[&0].top().reg(Reg(5)), 42);
        // Caller registers other than r5 are untouched by the callee.
        assert_eq!(m.threads()[&0].top().reg(Reg(2)), 0);
    }

    #[test]
    fn main_return_halts_thread() {
        let (_, o) = run_src("func main() {\nentry:\n  ret\n}");
        assert!(matches!(o, Outcome::Halted { .. }));
    }

    #[test]
    fn spawn_join_and_shared_memory() {
        let (m, o) = run_src(
            r#"
            global counter 8
            func worker(1) {
            entry:
                load r1, [r0]
                add r1, r1, 5
                store r1, [r0]
                halt
            }
            func main() {
            entry:
                addr r0, counter
                spawn r1, worker, r0
                join r1
                load r2, [r0]
                assert r2, "worker ran"
                halt
            }
            "#,
        );
        assert!(matches!(o, Outcome::Halted { .. }), "{o:?}");
        let g = m.program().global_by_name("counter").unwrap();
        assert_eq!(m.memory().read(m.program().global(g).addr, Width::W8), 5);
    }

    #[test]
    fn locks_provide_mutual_exclusion() {
        // Two threads increment a counter 100 times each under a lock;
        // with quantum-1 round-robin the result must still be 200.
        let src = r#"
            global counter 8
            global mtx 8
            func worker(1) {
            entry:
                mov r2, 0
                jmp loop
            loop:
                ltu r3, r2, 100
                br r3, body, done
            body:
                addr r4, mtx
                lock r4
                addr r5, counter
                load r6, [r5]
                add r6, r6, 1
                store r6, [r5]
                unlock r4
                add r2, r2, 1
                jmp loop
            done:
                halt
            }
            func main() {
            entry:
                spawn r0, worker, 0
                spawn r1, worker, 0
                join r0
                join r1
                halt
            }
        "#;
        let (m, o) = run_src(src);
        assert!(matches!(o, Outcome::Halted { .. }), "{o:?}");
        let g = m.program().global_by_name("counter").unwrap();
        assert_eq!(m.memory().read(m.program().global(g).addr, Width::W8), 200);
    }

    #[test]
    fn unsynchronized_increments_can_be_lost() {
        // The classic data race: without the lock, quantum-interleaved
        // read-modify-write loses updates.
        let src = r#"
            global counter 8
            func worker(1) {
            entry:
                mov r2, 0
                jmp loop
            loop:
                ltu r3, r2, 100
                br r3, body, done
            body:
                addr r5, counter
                load r6, [r5]
                add r6, r6, 1
                store r6, [r5]
                add r2, r2, 1
                jmp loop
            done:
                halt
            }
            func main() {
            entry:
                spawn r0, worker, 0
                spawn r1, worker, 0
                join r0
                join r1
                halt
            }
        "#;
        let p = assemble(src).unwrap();
        let mut m = Machine::new(
            p,
            MachineConfig {
                sched: SchedPolicy::RoundRobin { quantum: 1 },
                ..MachineConfig::default()
            },
        );
        let o = m.run();
        assert!(matches!(o, Outcome::Halted { .. }));
        let g = m.program().global_by_name("counter").unwrap();
        let v = m.memory().read(m.program().global(g).addr, Width::W8);
        assert!(v < 200, "expected lost updates, got {v}");
    }

    #[test]
    fn deadlock_detected() {
        let src = r#"
            global m1 8
            global m2 8
            func worker(1) {
            entry:
                addr r1, m2
                lock r1
                addr r2, m1
                lock r2
                halt
            }
            func main() {
            entry:
                addr r1, m1
                lock r1
                spawn r3, worker, 0
                addr r2, m2
                lock r2
                halt
            }
        "#;
        let (_, o) = run_src(src);
        assert!(matches!(o.fault(), Some(Fault::Deadlock { threads }) if threads.len() == 2));
    }

    #[test]
    fn self_deadlock_detected() {
        let (_, o) = run_src(
            "global m 8\nfunc main() {\nentry:\n  addr r0, m\n  lock r0\n  lock r0\n  halt\n}",
        );
        assert!(matches!(o.fault(), Some(Fault::Deadlock { .. })));
    }

    #[test]
    fn unlock_not_owned_faults() {
        let (_, o) =
            run_src("global m 8\nfunc main() {\nentry:\n  addr r0, m\n  unlock r0\n  halt\n}");
        assert!(matches!(o.fault(), Some(Fault::UnlockNotOwned { .. })));
    }

    #[test]
    fn join_unknown_thread_faults() {
        let (_, o) = run_src("func main() {\nentry:\n  join 17\n  halt\n}");
        assert!(matches!(
            o.fault(),
            Some(Fault::JoinUnknownThread { tid: 17 })
        ));
    }

    #[test]
    fn inputs_scripted_and_recorded() {
        let p = assemble(
            "func main() {\nentry:\n  input r0, net\n  input r1, net\n  output r0, out\n  output r1, log\n  halt\n}",
        )
        .unwrap();
        let mut m = Machine::new(
            p,
            MachineConfig {
                input: InputSource::Scripted {
                    per_thread: HashMap::from([(0, VecDeque::from([7, 9]))]),
                    fallback: 0,
                },
                trace: TraceLevel::Full,
                ..MachineConfig::default()
            },
        );
        let o = m.run();
        assert!(matches!(o, Outcome::Halted { .. }));
        assert_eq!(m.outputs()[0].value, 7);
        assert_eq!(m.outputs()[1].value, 9);
        assert_eq!(m.error_log().count(), 1);
        assert_eq!(m.threads()[&0].inputs_consumed, 2);
        assert!(m
            .tracer()
            .events()
            .iter()
            .any(|e| matches!(e, TraceEvent::Input { value: 7, .. })));
    }

    #[test]
    fn lbr_records_branches() {
        let (m, _) = run_src(
            "func main() {\nentry:\n  mov r0, 1\n  br r0, a, b\na:\n  jmp c\nb:\n  jmp c\nc:\n  halt\n}",
        );
        let entries: Vec<_> = m.lbr().entries().collect();
        assert_eq!(entries.len(), 2);
        assert!(!entries[0].inferrable, "conditional branch");
        assert!(entries[1].inferrable, "unconditional jump");
    }

    #[test]
    fn determinism_same_config_same_state() {
        let src = r#"
            global c 8
            func w(1) {
            entry:
                addr r1, c
                load r2, [r1]
                add r2, r2, r0
                store r2, [r1]
                halt
            }
            func main() {
            entry:
                spawn r0, w, 3
                spawn r1, w, 4
                join r0
                join r1
                halt
            }
        "#;
        let run = || {
            let p = assemble(src).unwrap();
            let mut m = Machine::new(
                p,
                MachineConfig {
                    sched: SchedPolicy::Random {
                        seed: 42,
                        switch_per_mille: 300,
                    },
                    ..MachineConfig::default()
                },
            );
            let o = m.run();
            let g = m.program().global_by_name("c").unwrap();
            (
                format!("{o:?}"),
                m.memory().read(m.program().global(g).addr, Width::W8),
                m.steps(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn step_limit_reported() {
        let p = assemble("func main() {\nentry:\n  jmp entry\n}").unwrap();
        let mut m = Machine::new(
            p,
            MachineConfig {
                max_steps: 100,
                ..MachineConfig::default()
            },
        );
        assert!(matches!(m.run(), Outcome::StepLimit { steps: 100 }));
    }

    #[test]
    fn step_thread_drives_specific_thread() {
        let p = assemble("func main() {\nentry:\n  mov r0, 1\n  mov r1, 2\n  halt\n}").unwrap();
        let mut m = Machine::new(p, MachineConfig::default());
        assert!(m.step_thread(0).unwrap());
        assert_eq!(m.threads()[&0].top().reg(Reg(0)), 1);
        assert_eq!(m.threads()[&0].top().reg(Reg(1)), 0);
        assert!(m.step_thread(0).unwrap());
        assert!(
            !m.step_thread(0).unwrap(),
            "halt leaves thread not runnable"
        );
    }

    #[test]
    fn lock_state_mirrored_in_memory() {
        let (m, o) =
            run_src("global m 8\nfunc main() {\nentry:\n  addr r0, m\n  lock r0\n  halt\n}");
        assert!(matches!(o, Outcome::Halted { .. }));
        let g = m.program().global_by_name("m").unwrap();
        // Owner tid 0 is encoded as 1.
        assert_eq!(m.memory().read(m.program().global(g).addr, Width::W8), 1);
    }

    #[test]
    fn block_trace_schedule_captured() {
        let p = assemble("func main() {\nentry:\n  jmp a\na:\n  jmp b\nb:\n  halt\n}").unwrap();
        let mut m = Machine::new(
            p,
            MachineConfig {
                trace: TraceLevel::Blocks,
                ..MachineConfig::default()
            },
        );
        m.run();
        let sched = m.tracer().block_schedule();
        assert_eq!(sched.len(), 3);
        assert_eq!(sched[0].1.block.0, 0);
        assert_eq!(sched[2].1.block.0, 2);
    }
}
