//! Deterministic thread scheduling policies.
//!
//! Every policy is a pure function of its own state plus the runnable
//! set, so a given `(program, inputs, policy)` triple always produces the
//! same execution — the property every experiment in this repo leans on.

use mvm_json::json_enum;
use mvm_prng::XorShift64Star;

use crate::thread::ThreadId;

/// A scheduling policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchedPolicy {
    /// Run each thread for `quantum` steps, then rotate.
    RoundRobin {
        /// Steps per turn; must be at least 1.
        quantum: u64,
    },
    /// Seeded pseudo-random preemption: after each step, switch to a
    /// uniformly chosen runnable thread with probability
    /// `switch_per_mille / 1000`. Used by the workload corpus generator
    /// to explore interleavings.
    Random {
        /// PRNG seed.
        seed: u64,
        /// Switch probability in per-mille (0..=1000).
        switch_per_mille: u32,
    },
    /// Follow an explicit `(tid, steps)` script, then fall back to
    /// round-robin with quantum 1. Used to replay executions.
    Scripted {
        /// Segments to execute in order.
        segments: Vec<(ThreadId, u64)>,
    },
}

impl SchedPolicy {
    /// Round-robin with a 1-step quantum — maximally interleaved.
    pub fn round_robin() -> Self {
        SchedPolicy::RoundRobin { quantum: 1 }
    }
}

json_enum!(SchedPolicy {
    RoundRobin { quantum: u64 },
    Random { seed: u64, switch_per_mille: u32 },
    Scripted { segments: Vec<(ThreadId, u64)> },
});

/// Scheduler runtime state.
#[derive(Debug, Clone)]
pub(crate) struct Scheduler {
    policy: SchedPolicy,
    current: ThreadId,
    steps_in_quantum: u64,
    script_pos: usize,
    script_used: u64,
    rng_state: u64,
}

impl Scheduler {
    pub(crate) fn new(policy: SchedPolicy) -> Self {
        let rng_state = match &policy {
            SchedPolicy::Random { seed, .. } => seed | 1,
            _ => 1,
        };
        Scheduler {
            policy,
            current: 0,
            steps_in_quantum: 0,
            script_pos: 0,
            script_used: 0,
            rng_state,
        }
    }

    /// xorshift64* — small, fast, deterministic. Raw step: the state was
    /// forced odd at seeding time, so it never reaches zero.
    fn next_rand(&mut self) -> u64 {
        XorShift64Star::step_raw(&mut self.rng_state)
    }

    /// Picks the next thread to run from `runnable` (must be non-empty,
    /// sorted ascending).
    pub(crate) fn pick(&mut self, runnable: &[ThreadId]) -> ThreadId {
        debug_assert!(!runnable.is_empty());
        let pick_next_after = |cur: ThreadId, set: &[ThreadId]| -> ThreadId {
            set.iter().copied().find(|&t| t > cur).unwrap_or(set[0])
        };
        let picked = match &self.policy {
            SchedPolicy::RoundRobin { quantum } => {
                let quantum = (*quantum).max(1);
                if runnable.contains(&self.current) && self.steps_in_quantum < quantum {
                    self.steps_in_quantum += 1;
                    self.current
                } else {
                    self.steps_in_quantum = 1;
                    pick_next_after(self.current, runnable)
                }
            }
            SchedPolicy::Random {
                switch_per_mille, ..
            } => {
                let p = (*switch_per_mille).min(1000) as u64;
                let stay = runnable.contains(&self.current) && self.next_rand() % 1000 >= p;
                if stay {
                    self.current
                } else {
                    let idx = (self.next_rand() % runnable.len() as u64) as usize;
                    runnable[idx]
                }
            }
            SchedPolicy::Scripted { segments } => {
                // Advance past exhausted or unrunnable segments.
                loop {
                    match segments.get(self.script_pos) {
                        Some(&(tid, steps)) => {
                            if self.script_used >= steps || !runnable.contains(&tid) {
                                self.script_pos += 1;
                                self.script_used = 0;
                                continue;
                            }
                            self.script_used += 1;
                            break tid;
                        }
                        None => {
                            // Script exhausted: fall back to round-robin 1.
                            break pick_next_after(self.current, runnable);
                        }
                    }
                }
            }
        };
        self.current = picked;
        picked
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_rotates_with_quantum() {
        let mut s = Scheduler::new(SchedPolicy::RoundRobin { quantum: 2 });
        let r = [0, 1, 2];
        let picks: Vec<ThreadId> = (0..8).map(|_| s.pick(&r)).collect();
        assert_eq!(picks, vec![0, 0, 1, 1, 2, 2, 0, 0]);
    }

    #[test]
    fn round_robin_skips_unrunnable() {
        let mut s = Scheduler::new(SchedPolicy::round_robin());
        assert_eq!(s.pick(&[0, 2]), 0);
        assert_eq!(s.pick(&[0, 2]), 2);
        assert_eq!(s.pick(&[2]), 2);
        assert_eq!(s.pick(&[0, 1]), 0);
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let picks = |seed| {
            let mut s = Scheduler::new(SchedPolicy::Random {
                seed,
                switch_per_mille: 500,
            });
            (0..32).map(|_| s.pick(&[0, 1, 2, 3])).collect::<Vec<_>>()
        };
        assert_eq!(picks(7), picks(7));
        assert_ne!(picks(7), picks(8));
    }

    #[test]
    fn scripted_follows_segments_then_falls_back() {
        let mut s = Scheduler::new(SchedPolicy::Scripted {
            segments: vec![(1, 2), (0, 1)],
        });
        let r = [0, 1];
        assert_eq!(s.pick(&r), 1);
        assert_eq!(s.pick(&r), 1);
        assert_eq!(s.pick(&r), 0);
        // Fallback round-robin.
        assert_eq!(s.pick(&r), 1);
        assert_eq!(s.pick(&r), 0);
    }

    #[test]
    fn scripted_skips_unrunnable_segment() {
        let mut s = Scheduler::new(SchedPolicy::Scripted {
            segments: vec![(5, 3), (0, 1)],
        });
        // Thread 5 is not runnable; the scheduler must not spin on it.
        assert_eq!(s.pick(&[0]), 0);
    }
}
