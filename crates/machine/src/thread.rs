//! Thread state: register frames, call stacks, and scheduling status.

use mvm_json::{json_enum, json_struct};

use mvm_isa::{layout, BlockId, FuncId, Loc, Reg};

/// A thread identifier; the main thread is 0.
pub type ThreadId = u64;

/// One call-stack frame.
///
/// The MicroVM calling convention saves the *entire* register file per
/// frame (callee gets fresh registers, caller's are restored on return),
/// so a coredump's stack walk recovers every frame's registers exactly —
/// the "accurate stack" the paper's prototype requires (§6).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Function this frame executes.
    pub func: FuncId,
    /// Current block.
    pub block: BlockId,
    /// Next instruction index within the block (`insts.len()` addresses
    /// the terminator).
    pub inst: u32,
    /// The frame's register file.
    pub regs: Vec<u64>,
    /// Caller register that receives the return value, if any.
    pub ret_reg: Option<Reg>,
}

impl Frame {
    /// Creates a frame at a function's entry with zeroed registers.
    pub fn at_entry(func: FuncId) -> Self {
        Frame {
            func,
            block: BlockId(0),
            inst: 0,
            regs: vec![0; Reg::COUNT],
            ret_reg: None,
        }
    }

    /// The frame's current code location.
    pub fn loc(&self) -> Loc {
        Loc {
            func: self.func,
            block: self.block,
            inst: self.inst,
        }
    }

    /// Reads a register.
    pub fn reg(&self, r: Reg) -> u64 {
        self.regs[r.index()]
    }

    /// Writes a register.
    pub fn set_reg(&mut self, r: Reg, v: u64) {
        self.regs[r.index()] = v;
    }
}

/// Why a thread is not currently runnable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadStatus {
    /// Ready to execute.
    Runnable,
    /// Waiting to acquire the mutex at this address.
    BlockedOnLock(u64),
    /// Waiting for another thread to halt.
    BlockedOnJoin(ThreadId),
    /// Finished normally.
    Halted,
}

impl ThreadStatus {
    /// Returns `true` if the thread can be scheduled.
    pub fn is_runnable(self) -> bool {
        self == ThreadStatus::Runnable
    }

    /// Returns `true` if the thread is blocked on a lock or join.
    pub fn is_blocked(self) -> bool {
        matches!(
            self,
            ThreadStatus::BlockedOnLock(_) | ThreadStatus::BlockedOnJoin(_)
        )
    }
}

/// Full per-thread execution state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadState {
    /// This thread's id.
    pub tid: ThreadId,
    /// Call stack; the last frame is the active one.
    pub frames: Vec<Frame>,
    /// Scheduling status.
    pub status: ThreadStatus,
    /// How many `Input` instructions this thread has executed (indexes
    /// scripted input streams during replay).
    pub inputs_consumed: u64,
}

impl ThreadState {
    /// Creates a thread at `func`'s entry with `arg` in `r0` and the
    /// stack pointer convention register `r31` set to the thread's stack
    /// top.
    pub fn spawned(tid: ThreadId, func: FuncId, arg: u64) -> Self {
        let mut frame = Frame::at_entry(func);
        frame.set_reg(Reg(0), arg);
        frame.set_reg(Reg(31), layout::stack_top(tid));
        ThreadState {
            tid,
            frames: vec![frame],
            status: ThreadStatus::Runnable,
            inputs_consumed: 0,
        }
    }

    /// The active (innermost) frame.
    ///
    /// # Panics
    ///
    /// Panics if the thread has halted and its frames were drained; the
    /// interpreter never calls this on halted threads.
    pub fn top(&self) -> &Frame {
        self.frames.last().expect("thread has no frames")
    }

    /// Mutable access to the active frame.
    ///
    /// # Panics
    ///
    /// Panics if the thread has no frames (halted).
    pub fn top_mut(&mut self) -> &mut Frame {
        self.frames.last_mut().expect("thread has no frames")
    }

    /// The thread's current program counter.
    pub fn pc(&self) -> Loc {
        self.top().loc()
    }

    /// Call-stack depth.
    pub fn depth(&self) -> usize {
        self.frames.len()
    }
}

json_struct!(Frame {
    func,
    block,
    inst,
    regs,
    ret_reg
});
json_enum!(ThreadStatus {
    Runnable,
    BlockedOnLock(u64),
    BlockedOnJoin(ThreadId),
    Halted,
});
json_struct!(ThreadState {
    tid,
    frames,
    status,
    inputs_consumed
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spawned_thread_has_arg_and_stack_pointer() {
        let t = ThreadState::spawned(2, FuncId(3), 99);
        assert_eq!(t.top().reg(Reg(0)), 99);
        assert_eq!(t.top().reg(Reg(31)), layout::stack_top(2));
        assert_eq!(t.pc(), Loc::block_start(FuncId(3), BlockId(0)));
        assert!(t.status.is_runnable());
    }

    #[test]
    fn status_predicates() {
        assert!(ThreadStatus::BlockedOnLock(5).is_blocked());
        assert!(ThreadStatus::BlockedOnJoin(1).is_blocked());
        assert!(!ThreadStatus::Halted.is_blocked());
        assert!(!ThreadStatus::Halted.is_runnable());
    }

    #[test]
    fn frame_register_access() {
        let mut f = Frame::at_entry(FuncId(0));
        f.set_reg(Reg(7), 42);
        assert_eq!(f.reg(Reg(7)), 42);
        assert_eq!(f.reg(Reg(8)), 0);
    }
}
