//! Fault taxonomy: the ways an execution can die.
//!
//! Faults are the events that trigger coredump capture. The taxonomy is
//! deliberately fine-grained *at the machine level* (the machine knows an
//! access hit a redzone vs. a freed block) because tests use it as ground
//! truth; a production kernel would report most of these as a bare
//! SIGSEGV, so the *triaging* code never reads the fine-grained variant —
//! it works from the coredump alone, like the paper's RES does.

use mvm_json::json_enum;

use crate::thread::ThreadId;

/// Whether a faulting access was a read or a write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Load.
    Read,
    /// Store.
    Write,
}

/// A fatal execution fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// Access to an address outside every mapped region, or outside any
    /// live global/stack extent.
    InvalidAccess {
        /// Faulting address.
        addr: u64,
        /// Read or write.
        kind: AccessKind,
    },
    /// Heap access outside every allocation's payload — landed in a
    /// redzone or allocator slack (an out-of-bounds / overflow access).
    HeapOverflow {
        /// Faulting address.
        addr: u64,
        /// Base of the nearest allocation, if one exists.
        near_base: Option<u64>,
        /// Read or write.
        kind: AccessKind,
    },
    /// Access to a heap block after it was freed.
    UseAfterFree {
        /// Faulting address.
        addr: u64,
        /// Base of the freed allocation.
        base: u64,
        /// Read or write.
        kind: AccessKind,
    },
    /// `free` of an already-freed block.
    DoubleFree {
        /// Block base passed to free.
        base: u64,
    },
    /// `free` of an address that is not a live allocation base.
    InvalidFree {
        /// The bogus address.
        addr: u64,
    },
    /// Unsigned division or remainder by zero.
    DivByZero,
    /// An `assert` instruction saw a zero condition — a semantic bug.
    AssertFailed {
        /// Message from the assert.
        msg: String,
    },
    /// Every live thread is blocked on a lock or join.
    Deadlock {
        /// The blocked threads.
        threads: Vec<ThreadId>,
    },
    /// `unlock` of a mutex the thread does not own.
    UnlockNotOwned {
        /// Mutex address.
        mutex: u64,
    },
    /// `join` of a thread id that was never spawned.
    JoinUnknownThread {
        /// The bogus thread id.
        tid: u64,
    },
    /// Heap exhausted.
    OutOfMemory,
}

impl Fault {
    /// A short stable identifier for the fault class, used in reports.
    pub fn class(&self) -> &'static str {
        match self {
            Fault::InvalidAccess { .. } => "invalid-access",
            Fault::HeapOverflow { .. } => "heap-overflow",
            Fault::UseAfterFree { .. } => "use-after-free",
            Fault::DoubleFree { .. } => "double-free",
            Fault::InvalidFree { .. } => "invalid-free",
            Fault::DivByZero => "div-by-zero",
            Fault::AssertFailed { .. } => "assert-failed",
            Fault::Deadlock { .. } => "deadlock",
            Fault::UnlockNotOwned { .. } => "unlock-not-owned",
            Fault::JoinUnknownThread { .. } => "join-unknown-thread",
            Fault::OutOfMemory => "out-of-memory",
        }
    }

    /// The address involved in the fault, when there is one.
    pub fn addr(&self) -> Option<u64> {
        match self {
            Fault::InvalidAccess { addr, .. }
            | Fault::HeapOverflow { addr, .. }
            | Fault::UseAfterFree { addr, .. }
            | Fault::InvalidFree { addr } => Some(*addr),
            Fault::DoubleFree { base } => Some(*base),
            Fault::UnlockNotOwned { mutex } => Some(*mutex),
            _ => None,
        }
    }

    /// Returns `true` for memory-safety faults (the classes the paper's
    /// exploitability analysis cares about).
    pub fn is_memory_safety(&self) -> bool {
        matches!(
            self,
            Fault::InvalidAccess { .. }
                | Fault::HeapOverflow { .. }
                | Fault::UseAfterFree { .. }
                | Fault::DoubleFree { .. }
                | Fault::InvalidFree { .. }
        )
    }

    /// What a production kernel would report for this fault: the
    /// coarse-grained signal visible in a real coredump. Fine-grained
    /// machine knowledge (redzone vs freed block) is erased.
    pub fn as_signal(&self) -> &'static str {
        match self {
            Fault::InvalidAccess { .. }
            | Fault::HeapOverflow { .. }
            | Fault::UseAfterFree { .. } => "SIGSEGV",
            Fault::DoubleFree { .. } | Fault::InvalidFree { .. } | Fault::OutOfMemory => "SIGABRT",
            Fault::DivByZero => "SIGFPE",
            Fault::AssertFailed { .. } => "SIGABRT",
            Fault::Deadlock { .. } => "HANG",
            Fault::UnlockNotOwned { .. } | Fault::JoinUnknownThread { .. } => "SIGABRT",
        }
    }
}

json_enum!(AccessKind { Read, Write });
json_enum!(Fault {
    InvalidAccess { addr: u64, kind: AccessKind },
    HeapOverflow { addr: u64, near_base: Option<u64>, kind: AccessKind },
    UseAfterFree { addr: u64, base: u64, kind: AccessKind },
    DoubleFree { base: u64 },
    InvalidFree { addr: u64 },
    DivByZero,
    AssertFailed { msg: String },
    Deadlock { threads: Vec<ThreadId> },
    UnlockNotOwned { mutex: u64 },
    JoinUnknownThread { tid: u64 },
    OutOfMemory,
});

impl std::fmt::Display for Fault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Fault::InvalidAccess { addr, kind } => {
                write!(f, "invalid {kind:?} at {addr:#x}")
            }
            Fault::HeapOverflow {
                addr,
                near_base,
                kind,
            } => match near_base {
                Some(b) => write!(f, "heap overflow {kind:?} at {addr:#x} (near block {b:#x})"),
                None => write!(f, "heap overflow {kind:?} at {addr:#x}"),
            },
            Fault::UseAfterFree { addr, base, kind } => {
                write!(f, "use-after-free {kind:?} at {addr:#x} (block {base:#x})")
            }
            Fault::DoubleFree { base } => write!(f, "double free of {base:#x}"),
            Fault::InvalidFree { addr } => write!(f, "invalid free of {addr:#x}"),
            Fault::DivByZero => write!(f, "division by zero"),
            Fault::AssertFailed { msg } => write!(f, "assertion failed: {msg}"),
            Fault::Deadlock { threads } => write!(f, "deadlock among {threads:?}"),
            Fault::UnlockNotOwned { mutex } => write!(f, "unlock of unowned mutex {mutex:#x}"),
            Fault::JoinUnknownThread { tid } => write!(f, "join of unknown thread {tid}"),
            Fault::OutOfMemory => write!(f, "out of memory"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_are_distinct_for_memory_bugs() {
        let f1 = Fault::HeapOverflow {
            addr: 0x2000_0010,
            near_base: Some(0x2000_0000),
            kind: AccessKind::Write,
        };
        let f2 = Fault::UseAfterFree {
            addr: 0x2000_0010,
            base: 0x2000_0000,
            kind: AccessKind::Read,
        };
        assert_ne!(f1.class(), f2.class());
        assert!(f1.is_memory_safety() && f2.is_memory_safety());
        assert!(!Fault::DivByZero.is_memory_safety());
    }

    #[test]
    fn signals_erase_fine_detail() {
        let overflow = Fault::HeapOverflow {
            addr: 1,
            near_base: None,
            kind: AccessKind::Write,
        };
        let uaf = Fault::UseAfterFree {
            addr: 1,
            base: 0,
            kind: AccessKind::Read,
        };
        assert_eq!(overflow.as_signal(), "SIGSEGV");
        assert_eq!(uaf.as_signal(), "SIGSEGV");
    }

    #[test]
    fn addr_extraction() {
        assert_eq!(
            Fault::InvalidAccess {
                addr: 0xdead,
                kind: AccessKind::Read
            }
            .addr(),
            Some(0xdead)
        );
        assert_eq!(Fault::DivByZero.addr(), None);
    }

    #[test]
    fn display_is_informative() {
        let s = Fault::AssertFailed {
            msg: "x > 0".into(),
        }
        .to_string();
        assert!(s.contains("x > 0"));
    }
}
