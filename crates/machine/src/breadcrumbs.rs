//! Execution breadcrumbs: cheap post-crash evidence (paper §2.4).
//!
//! The paper observes that RES "can benefit from coredumps augmented with
//! runtime information that is cheap to collect after the crash": the
//! Intel Last Branch Record (a hardware ring of the last ~16 branches,
//! recorded at essentially zero cost) and existing error logs. This
//! module models both.

use std::collections::VecDeque;

use mvm_json::json_struct;

use mvm_isa::Loc;

use crate::thread::ThreadId;

/// One taken control transfer: source and destination locations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LbrEntry {
    /// Thread that took the branch.
    pub tid: ThreadId,
    /// Location of the transferring terminator.
    pub from: Loc,
    /// Destination location.
    pub to: Loc,
    /// `true` if this entry came from a *conditional* branch whose
    /// outcome could be re-derived offline from the CFG — the class the
    /// paper suggests filtering out of the hardware ring to extend its
    /// effective length (§2.4).
    pub inferrable: bool,
}

/// A fixed-capacity ring of the last taken branches, like Intel LBR.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LbrRing {
    capacity: usize,
    entries: VecDeque<LbrEntry>,
    /// When `true`, conditional branches with a single feasible outcome
    /// are not recorded, extending the ring's reach (paper §2.4's
    /// "filter taken conditional branches" extension).
    filter_inferrable: bool,
}

impl LbrRing {
    /// Creates a ring with the given capacity (0 disables recording).
    pub fn new(capacity: usize) -> Self {
        LbrRing {
            capacity,
            entries: VecDeque::with_capacity(capacity),
            filter_inferrable: false,
        }
    }

    /// Enables the §2.4 filtering extension: inferrable entries are
    /// dropped instead of consuming ring slots.
    pub fn with_filtering(mut self, on: bool) -> Self {
        self.filter_inferrable = on;
        self
    }

    /// Records a taken branch (evicting the oldest entry when full).
    pub fn record(&mut self, entry: LbrEntry) {
        if self.capacity == 0 || (self.filter_inferrable && entry.inferrable) {
            return;
        }
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
        }
        self.entries.push_back(entry);
    }

    /// The recorded entries, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &LbrEntry> {
        self.entries.iter()
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Returns `true` if filtering of inferrable branches is enabled.
    pub fn filters_inferrable(&self) -> bool {
        self.filter_inferrable
    }
}

/// One error-log record: a coarse execution breadcrumb (paper §2.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogRecord {
    /// Thread that logged.
    pub tid: ThreadId,
    /// Location of the `output ..., log` instruction.
    pub at: Loc,
    /// The logged value.
    pub value: u64,
    /// Global step count when logged.
    pub step: u64,
}

// Invoked here (not in a central serde module) because LbrRing's fields
// are private; the macro expands to impls that read them directly.
json_struct!(LbrEntry {
    tid,
    from,
    to,
    inferrable
});
json_struct!(LbrRing {
    capacity,
    entries,
    filter_inferrable
});
json_struct!(LogRecord {
    tid,
    at,
    value,
    step
});

#[cfg(test)]
mod tests {
    use super::*;
    use mvm_isa::{BlockId, FuncId};

    fn entry(i: u32, inferrable: bool) -> LbrEntry {
        LbrEntry {
            tid: 0,
            from: Loc {
                func: FuncId(0),
                block: BlockId(i),
                inst: 0,
            },
            to: Loc {
                func: FuncId(0),
                block: BlockId(i + 1),
                inst: 0,
            },
            inferrable,
        }
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut r = LbrRing::new(3);
        for i in 0..5 {
            r.record(entry(i, false));
        }
        assert_eq!(r.len(), 3);
        let froms: Vec<u32> = r.entries().map(|e| e.from.block.0).collect();
        assert_eq!(froms, vec![2, 3, 4]);
    }

    #[test]
    fn zero_capacity_records_nothing() {
        let mut r = LbrRing::new(0);
        r.record(entry(0, false));
        assert!(r.is_empty());
    }

    #[test]
    fn filtering_extends_reach() {
        let mut plain = LbrRing::new(2);
        let mut filtered = LbrRing::new(2).with_filtering(true);
        for i in 0..4 {
            // Alternate inferrable and essential branches.
            let e = entry(i, i % 2 == 0);
            plain.record(e);
            filtered.record(e);
        }
        // Plain ring holds the last two entries regardless of kind;
        // the filtered ring holds the last two *essential* ones, which
        // reach further back in time.
        assert_eq!(plain.len(), 2);
        assert_eq!(filtered.len(), 2);
        assert!(filtered.entries().all(|e| !e.inferrable));
        let earliest_plain = plain.entries().next().unwrap().from.block.0;
        let earliest_filtered = filtered.entries().next().unwrap().from.block.0;
        assert!(earliest_filtered <= earliest_plain);
    }
}
