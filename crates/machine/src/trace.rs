//! Optional execution tracing.
//!
//! Traces serve two consumers, *neither of which is RES itself* (RES
//! sees only the coredump): test oracles that compare a synthesized
//! suffix against what actually happened, and the record-replay baseline
//! (E8) that accounts for how many bytes an always-on recorder would
//! have to log.

use mvm_json::json_enum;

use mvm_isa::{Loc, Width};

use crate::faults::AccessKind;
use crate::thread::ThreadId;

/// How much to record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceLevel {
    /// Record nothing (production mode — what RES assumes).
    Off,
    /// Record one event per basic block entered.
    Blocks,
    /// Record every instruction, memory access, input, and sync op.
    Full,
}

/// One trace event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A thread entered a basic block.
    BlockEnter {
        /// Executing thread.
        tid: ThreadId,
        /// Block location (inst is 0).
        loc: Loc,
        /// Global step counter at entry.
        step: u64,
    },
    /// A memory access.
    Mem {
        /// Executing thread.
        tid: ThreadId,
        /// Instruction location.
        loc: Loc,
        /// Read or write.
        kind: AccessKind,
        /// Accessed address.
        addr: u64,
        /// Value read or written.
        value: u64,
        /// Access width.
        width: Width,
    },
    /// An external input was consumed.
    Input {
        /// Executing thread.
        tid: ThreadId,
        /// Instruction location.
        loc: Loc,
        /// The value delivered.
        value: u64,
    },
    /// A heap block was allocated.
    Alloc {
        /// Executing thread.
        tid: ThreadId,
        /// Instruction location.
        loc: Loc,
        /// Payload base returned.
        base: u64,
        /// Requested size.
        size: u64,
    },
    /// A heap block was freed.
    Free {
        /// Executing thread.
        tid: ThreadId,
        /// Instruction location.
        loc: Loc,
        /// Payload base freed.
        base: u64,
    },
    /// A lock was acquired or released.
    Sync {
        /// Executing thread.
        tid: ThreadId,
        /// Instruction location.
        loc: Loc,
        /// Mutex address.
        mutex: u64,
        /// `true` for acquire, `false` for release.
        acquire: bool,
    },
}

impl TraceEvent {
    /// The thread the event belongs to.
    pub fn tid(&self) -> ThreadId {
        match self {
            TraceEvent::BlockEnter { tid, .. }
            | TraceEvent::Mem { tid, .. }
            | TraceEvent::Input { tid, .. }
            | TraceEvent::Alloc { tid, .. }
            | TraceEvent::Free { tid, .. }
            | TraceEvent::Sync { tid, .. } => *tid,
        }
    }
}

json_enum!(TraceLevel { Off, Blocks, Full });
json_enum!(TraceEvent {
    BlockEnter { tid: ThreadId, loc: Loc, step: u64 },
    Mem { tid: ThreadId, loc: Loc, kind: AccessKind, addr: u64, value: u64, width: Width },
    Input { tid: ThreadId, loc: Loc, value: u64 },
    Alloc { tid: ThreadId, loc: Loc, base: u64, size: u64 },
    Free { tid: ThreadId, loc: Loc, base: u64 },
    Sync { tid: ThreadId, loc: Loc, mutex: u64, acquire: bool },
});

/// Collects trace events at a configured level.
#[derive(Debug, Clone)]
pub struct Tracer {
    level: TraceLevel,
    events: Vec<TraceEvent>,
}

impl Tracer {
    /// Creates a tracer at the given level.
    pub fn new(level: TraceLevel) -> Self {
        Tracer {
            level,
            events: Vec::new(),
        }
    }

    /// The configured level.
    pub fn level(&self) -> TraceLevel {
        self.level
    }

    /// Records a block-entry event (at `Blocks` or `Full`).
    pub fn block_enter(&mut self, tid: ThreadId, loc: Loc, step: u64) {
        if matches!(self.level, TraceLevel::Blocks | TraceLevel::Full) {
            self.events.push(TraceEvent::BlockEnter { tid, loc, step });
        }
    }

    /// Records a fine-grained event (only at `Full`).
    pub fn fine(&mut self, ev: TraceEvent) {
        if self.level == TraceLevel::Full {
            self.events.push(ev);
        }
    }

    /// All recorded events in order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// The block-granular schedule: `(tid, loc)` per block entered.
    pub fn block_schedule(&self) -> Vec<(ThreadId, Loc)> {
        self.events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::BlockEnter { tid, loc, .. } => Some((*tid, *loc)),
                _ => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvm_isa::{BlockId, FuncId};

    fn loc(b: u32) -> Loc {
        Loc {
            func: FuncId(0),
            block: BlockId(b),
            inst: 0,
        }
    }

    #[test]
    fn off_records_nothing() {
        let mut t = Tracer::new(TraceLevel::Off);
        t.block_enter(0, loc(0), 0);
        t.fine(TraceEvent::Input {
            tid: 0,
            loc: loc(0),
            value: 1,
        });
        assert!(t.events().is_empty());
    }

    #[test]
    fn blocks_level_skips_fine_events() {
        let mut t = Tracer::new(TraceLevel::Blocks);
        t.block_enter(0, loc(0), 0);
        t.fine(TraceEvent::Input {
            tid: 0,
            loc: loc(0),
            value: 1,
        });
        assert_eq!(t.events().len(), 1);
        assert_eq!(t.block_schedule(), vec![(0, loc(0))]);
    }

    #[test]
    fn full_level_records_everything() {
        let mut t = Tracer::new(TraceLevel::Full);
        t.block_enter(1, loc(2), 5);
        t.fine(TraceEvent::Sync {
            tid: 1,
            loc: loc(2),
            mutex: 0x10,
            acquire: true,
        });
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.events()[1].tid(), 1);
    }
}
