//! Sparse paged memory.
//!
//! The MicroVM address space is 64-bit and almost entirely unmapped;
//! memory is materialized in 4 KiB pages on first write. Reads of mapped
//! pages return stored bytes; reads of unmapped addresses are a *policy*
//! decision made by the caller (the interpreter faults, while coredump
//! tooling treats them as absent), so [`Memory`] itself exposes
//! `Option`-returning accessors alongside zero-default conveniences.

use std::collections::BTreeMap;

use mvm_json::json_struct;

use mvm_isa::Width;

/// Size of a memory page in bytes.
pub const PAGE_SIZE: u64 = 4096;

/// Sparse byte-addressable memory backed by 4 KiB pages.
///
/// Pages are stored in a `BTreeMap` so iteration (snapshotting into a
/// coredump, diffing two dumps) is deterministic and ordered.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Memory {
    pages: BTreeMap<u64, Vec<u8>>,
}

json_struct!(Memory { pages });

impl Memory {
    /// Creates an empty (fully unmapped) memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of materialized pages.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Returns `true` if the page containing `addr` is materialized.
    pub fn is_mapped(&self, addr: u64) -> bool {
        self.pages.contains_key(&(addr & !(PAGE_SIZE - 1)))
    }

    /// Reads one byte, or `None` if the page is unmapped.
    pub fn read_byte(&self, addr: u64) -> Option<u8> {
        let page = self.pages.get(&(addr & !(PAGE_SIZE - 1)))?;
        Some(page[(addr % PAGE_SIZE) as usize])
    }

    /// Writes one byte, materializing the page if needed.
    pub fn write_byte(&mut self, addr: u64, value: u8) {
        let base = addr & !(PAGE_SIZE - 1);
        let page = self
            .pages
            .entry(base)
            .or_insert_with(|| vec![0u8; PAGE_SIZE as usize]);
        page[(addr % PAGE_SIZE) as usize] = value;
    }

    /// Reads a little-endian value of the given width, zero-extending to
    /// 64 bits. Unmapped bytes read as zero.
    pub fn read(&self, addr: u64, width: Width) -> u64 {
        let mut out = 0u64;
        for i in 0..width.bytes() {
            let b = self.read_byte(addr.wrapping_add(i)).unwrap_or(0);
            out |= (b as u64) << (8 * i);
        }
        out
    }

    /// Reads a value only if *every* byte is mapped.
    pub fn read_mapped(&self, addr: u64, width: Width) -> Option<u64> {
        let mut out = 0u64;
        for i in 0..width.bytes() {
            out |= (self.read_byte(addr.wrapping_add(i))? as u64) << (8 * i);
        }
        Some(out)
    }

    /// Writes the low `width` bytes of `value` little-endian.
    pub fn write(&mut self, addr: u64, value: u64, width: Width) {
        for i in 0..width.bytes() {
            self.write_byte(addr.wrapping_add(i), (value >> (8 * i)) as u8);
        }
    }

    /// Copies a byte slice into memory.
    pub fn write_bytes(&mut self, addr: u64, bytes: &[u8]) {
        for (i, &b) in bytes.iter().enumerate() {
            self.write_byte(addr.wrapping_add(i as u64), b);
        }
    }

    /// Reads `len` bytes, substituting zero for unmapped bytes.
    pub fn read_bytes(&self, addr: u64, len: usize) -> Vec<u8> {
        (0..len)
            .map(|i| self.read_byte(addr.wrapping_add(i as u64)).unwrap_or(0))
            .collect()
    }

    /// Ensures the pages covering `[addr, addr+len)` are materialized
    /// (zero-filled), e.g. for stack reservations.
    pub fn map_zeroed(&mut self, addr: u64, len: u64) {
        if len == 0 {
            return;
        }
        let first = addr & !(PAGE_SIZE - 1);
        let last = (addr + len - 1) & !(PAGE_SIZE - 1);
        let mut base = first;
        loop {
            self.pages
                .entry(base)
                .or_insert_with(|| vec![0u8; PAGE_SIZE as usize]);
            if base == last {
                break;
            }
            base += PAGE_SIZE;
        }
    }

    /// Iterates over `(page_base, bytes)` pairs in address order.
    pub fn iter_pages(&self) -> impl Iterator<Item = (u64, &[u8])> {
        self.pages.iter().map(|(&b, p)| (b, p.as_slice()))
    }

    /// Deep-copies another memory's pages into this one (overwriting
    /// overlapping pages).
    pub fn overlay_from(&mut self, other: &Memory) {
        for (base, page) in other.iter_pages() {
            self.pages.insert(base, page.to_vec());
        }
    }

    /// Addresses (at byte granularity) where two memories differ,
    /// considering unmapped bytes equal to zero. Capped at `limit`
    /// results.
    pub fn diff(&self, other: &Memory, limit: usize) -> Vec<u64> {
        let mut out = Vec::new();
        let mut bases: Vec<u64> = self
            .pages
            .keys()
            .chain(other.pages.keys())
            .copied()
            .collect();
        bases.sort_unstable();
        bases.dedup();
        for base in bases {
            for i in 0..PAGE_SIZE {
                let a = self.read_byte(base + i).unwrap_or(0);
                let b = other.read_byte(base + i).unwrap_or(0);
                if a != b {
                    out.push(base + i);
                    if out.len() >= limit {
                        return out;
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unmapped_reads_default_to_zero() {
        let m = Memory::new();
        assert_eq!(m.read(0x1234, Width::W8), 0);
        assert_eq!(m.read_byte(0x1234), None);
        assert_eq!(m.read_mapped(0x1234, Width::W1), None);
        assert!(!m.is_mapped(0x1234));
    }

    #[test]
    fn write_read_round_trip_all_widths() {
        let mut m = Memory::new();
        for (w, val) in [
            (Width::W1, 0xab),
            (Width::W2, 0xabcd),
            (Width::W4, 0xdead_beef),
            (Width::W8, 0x0123_4567_89ab_cdef),
        ] {
            m.write(0x9000, val, w);
            assert_eq!(m.read(0x9000, w), val & w.mask());
        }
    }

    #[test]
    fn little_endian_layout() {
        let mut m = Memory::new();
        m.write(0x100, 0x0102_0304_0506_0708, Width::W8);
        assert_eq!(m.read_byte(0x100), Some(0x08));
        assert_eq!(m.read_byte(0x107), Some(0x01));
        assert_eq!(m.read(0x100, Width::W4), 0x0506_0708);
    }

    #[test]
    fn cross_page_access() {
        let mut m = Memory::new();
        let addr = PAGE_SIZE - 4;
        m.write(addr, 0x1122_3344_5566_7788, Width::W8);
        assert_eq!(m.read(addr, Width::W8), 0x1122_3344_5566_7788);
        assert_eq!(m.page_count(), 2);
        assert_eq!(m.read_mapped(addr, Width::W8), Some(0x1122_3344_5566_7788));
    }

    #[test]
    fn truncation_on_narrow_write() {
        let mut m = Memory::new();
        m.write(0x200, u64::MAX, Width::W8);
        m.write(0x200, 0, Width::W1);
        assert_eq!(m.read(0x200, Width::W8), u64::MAX & !0xff);
    }

    #[test]
    fn map_zeroed_materializes_pages() {
        let mut m = Memory::new();
        m.map_zeroed(0x1000, 2 * PAGE_SIZE);
        assert!(m.is_mapped(0x1000));
        assert!(m.is_mapped(0x1000 + 2 * PAGE_SIZE - 1));
        assert_eq!(m.read_byte(0x1000), Some(0));
        m.map_zeroed(0x5000, 0);
    }

    #[test]
    fn diff_finds_changed_bytes() {
        let mut a = Memory::new();
        let mut b = Memory::new();
        a.write(0x300, 5, Width::W1);
        b.write(0x300, 6, Width::W1);
        b.write(0x9000, 1, Width::W1);
        let d = a.diff(&b, 10);
        assert_eq!(d, vec![0x300, 0x9000]);
        assert_eq!(a.diff(&b, 1).len(), 1);
    }

    #[test]
    fn diff_treats_unmapped_as_zero() {
        let mut a = Memory::new();
        a.write(0x300, 0, Width::W8);
        let b = Memory::new();
        assert!(a.diff(&b, 10).is_empty());
    }

    #[test]
    fn overlay_copies_pages() {
        let mut a = Memory::new();
        a.write(0x400, 7, Width::W8);
        let mut b = Memory::new();
        b.overlay_from(&a);
        assert_eq!(b.read(0x400, Width::W8), 7);
        a.write(0x400, 9, Width::W8);
        assert_eq!(b.read(0x400, Width::W8), 7, "overlay must deep-copy");
    }

    #[test]
    fn write_bytes_and_read_bytes() {
        let mut m = Memory::new();
        m.write_bytes(0x500, &[1, 2, 3]);
        assert_eq!(m.read_bytes(0x500, 4), vec![1, 2, 3, 0]);
    }
}
