//! Hardware-error filtering over report corpora (paper §3.2).
//!
//! "Hardware errors are common, correlated, and recurrent. [...]
//! hardware errors generate noise, and developers waste time debugging
//! them instead of filtering them out. RES could be used to reduce this
//! significant source of noise." The filter runs the §3.2 verdict on
//! every incoming report; reports diagnosed as hardware are diverted
//! away from developers. On a labeled corpus (genuine software failures
//! plus injected corruptions) precision and recall are measurable.

use mvm_core::{corrupt_consequential, Coredump, HwFlavor};
// Re-exported from its new home in `mvm-core` (the generator needs the
// same policy to label hardware-variant corpora); existing callers keep
// importing it from here.
pub use mvm_core::consequential_sites;
use res_core::{hardware_verdict, HwVerdict, ResConfig};
use res_workloads::FailureReport;

/// One filtered report with its verdict and ground truth.
#[derive(Debug, Clone)]
pub struct FilteredReport {
    /// Index into the input corpus.
    pub index: usize,
    /// Ground truth: `true` when the dump was hardware-corrupted.
    pub actually_hardware: bool,
    /// The filter's verdict.
    pub verdict: HwVerdict,
}

/// Aggregate filter quality (experiment E7).
#[derive(Debug, Clone, Default)]
pub struct HwFilterStudy {
    /// Per-report outcomes.
    pub reports: Vec<FilteredReport>,
    /// Hardware dumps flagged as hardware.
    pub true_positives: usize,
    /// Software dumps flagged as hardware (developer-facing noise — the
    /// costly error).
    pub false_positives: usize,
    /// Hardware dumps that slipped through as software.
    pub false_negatives: usize,
    /// Software dumps correctly passed through.
    pub true_negatives: usize,
}

impl HwFilterStudy {
    /// Precision of the hardware flag.
    pub fn precision(&self) -> f64 {
        let denom = self.true_positives + self.false_positives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// Recall of the hardware flag.
    pub fn recall(&self) -> f64 {
        let denom = self.true_positives + self.false_negatives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }
}

/// Corrupts every other report in the corpus (alternating memory flips
/// and register corruption at consequential sites, falling back to
/// random sites), runs the filter, and scores it.
///
/// When `store_dir` is given, the sweep is backed by a shared
/// persistent-store directory — the same directory the §3.1 bucketing
/// helpers use, so the relaxation sweep replays solver results the
/// bucketing pass (or an earlier process) already paid for. Verdicts
/// are identical either way; `None` is the plain store-less path.
pub fn filter_corpus(
    corpus: &[FailureReport],
    config: &ResConfig,
    store_dir: Option<&std::path::Path>,
) -> HwFilterStudy {
    let mut study = HwFilterStudy::default();
    for (i, r) in corpus.iter().enumerate() {
        let corrupt = i % 2 == 1;
        let dump: Coredump = if corrupt {
            let mut d = r.dump.clone();
            let flavor = if i % 4 == 1 {
                HwFlavor::BitFlip
            } else {
                HwFlavor::RegCorrupt
            };
            let _ = corrupt_consequential(&r.program, &mut d, r.seed, flavor);
            d
        } else {
            r.dump.clone()
        };
        let verdict = match store_dir {
            Some(dir) => {
                let cfg = crate::store::with_shared_store(config, dir, &r.program);
                hardware_verdict(&r.program, &dump, &cfg)
            }
            None => hardware_verdict(&r.program, &dump, config),
        };
        let flagged = matches!(verdict, HwVerdict::HardwareSuspected { .. });
        match (corrupt, flagged) {
            (true, true) => study.true_positives += 1,
            (true, false) => study.false_negatives += 1,
            (false, true) => study.false_positives += 1,
            (false, false) => study.true_negatives += 1,
        }
        study.reports.push(FilteredReport {
            index: i,
            actually_hardware: corrupt,
            verdict,
        });
    }
    study
}

#[cfg(test)]
mod tests {
    use super::*;
    use res_workloads::{generate_corpus, BugKind, CorpusSpec};

    #[test]
    fn filter_never_flags_genuine_software_bugs() {
        // Precision is the critical property: a software bug diverted as
        // "hardware" would never get fixed.
        let corpus = generate_corpus(&CorpusSpec {
            kinds: vec![BugKind::DivByZero, BugKind::SemanticAssert],
            per_kind: 2,
            ..CorpusSpec::default()
        });
        let study = filter_corpus(&corpus, &ResConfig::default(), None);
        assert_eq!(study.false_positives, 0, "{study:?}");
        assert!(study.precision() >= 0.99);
    }
}
