//! Hardware-error filtering over report corpora (paper §3.2).
//!
//! "Hardware errors are common, correlated, and recurrent. [...]
//! hardware errors generate noise, and developers waste time debugging
//! them instead of filtering them out. RES could be used to reduce this
//! significant source of noise." The filter runs the §3.2 verdict on
//! every incoming report; reports diagnosed as hardware are diverted
//! away from developers. On a labeled corpus (genuine software failures
//! plus injected corruptions) precision and recall are measurable.

use mvm_core::{
    corrupt_register, corrupt_register_at, flip_memory_bit, flip_memory_bit_at, Coredump,
};
use mvm_isa::{Inst, Operand, Program, Reg};
use res_core::{hardware_verdict, HwVerdict, ResConfig};
use res_workloads::FailureReport;

/// One filtered report with its verdict and ground truth.
#[derive(Debug, Clone)]
pub struct FilteredReport {
    /// Index into the input corpus.
    pub index: usize,
    /// Ground truth: `true` when the dump was hardware-corrupted.
    pub actually_hardware: bool,
    /// The filter's verdict.
    pub verdict: HwVerdict,
}

/// Aggregate filter quality (experiment E7).
#[derive(Debug, Clone, Default)]
pub struct HwFilterStudy {
    /// Per-report outcomes.
    pub reports: Vec<FilteredReport>,
    /// Hardware dumps flagged as hardware.
    pub true_positives: usize,
    /// Software dumps flagged as hardware (developer-facing noise — the
    /// costly error).
    pub false_positives: usize,
    /// Hardware dumps that slipped through as software.
    pub false_negatives: usize,
    /// Software dumps correctly passed through.
    pub true_negatives: usize,
}

impl HwFilterStudy {
    /// Precision of the hardware flag.
    pub fn precision(&self) -> f64 {
        let denom = self.true_positives + self.false_positives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// Recall of the hardware flag.
    pub fn recall(&self) -> f64 {
        let denom = self.true_positives + self.false_negatives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }
}

/// Sites whose corruption is *consequential* — the §3.2 examples all
/// corrupt state involved in the failure (the miscomputed addition's
/// result, the value the program just wrote). Returns registers defined
/// and global addresses stored by the faulting block's already-executed
/// portion.
pub fn consequential_sites(program: &Program, dump: &Coredump) -> (Vec<Reg>, Vec<u64>) {
    let pc = dump.fault_pc();
    let scan = |func: mvm_isa::FuncId, block: mvm_isa::BlockId, upto: usize| {
        let blk = program.func(func).block(block);
        let mut regs = Vec::new();
        let mut mems = Vec::new();
        let mut referenced_globals = Vec::new();
        // Track statically resolvable register contents (global
        // addresses; alloc results via the dump's heap table).
        let mut addr_regs: std::collections::HashMap<Reg, u64> = std::collections::HashMap::new();
        for inst in blk.insts.iter().take(upto) {
            match inst {
                Inst::AddrOf { dst, global } => {
                    let a = program.global(*global).addr;
                    addr_regs.insert(*dst, a);
                    referenced_globals.push(a);
                }
                Inst::Alloc { dst, .. } => {
                    if let Some(meta) = dump.heap_allocs.last() {
                        addr_regs.insert(*dst, meta.base);
                    }
                }
                _ => {}
            }
            if let Some(d) = inst.def_reg() {
                if !regs.contains(&d) {
                    regs.push(d);
                }
            }
            if let Inst::Store {
                addr: Operand::Reg(a),
                offset,
                ..
            } = inst
            {
                if let Some(base) = addr_regs.get(a) {
                    mems.push(base.wrapping_add(*offset as u64));
                }
            }
        }
        (regs, mems, referenced_globals)
    };
    let (regs, mems, referenced) = scan(pc.func, pc.block, pc.inst as usize);
    // Preference chain for registers: the partial range's own defs (the
    // most recently computed values — §3.2's "miscomputed addition"),
    // then the unique predecessor's defs.
    let mut out_regs = regs;
    let mut out_mems = mems;
    let mut out_referenced = referenced;
    if out_regs.is_empty() || out_mems.is_empty() {
        let cfg = mvm_isa::cfg::Cfg::build(program.func(pc.func));
        let preds = cfg.preds(pc.block);
        if preds.len() == 1 {
            let blen = program.func(pc.func).block(preds[0]).insts.len();
            let (pregs, pmems, preferenced) = scan(pc.func, preds[0], blen);
            if out_regs.is_empty() {
                out_regs = pregs;
            }
            if out_mems.is_empty() {
                out_mems = pmems;
            }
            out_referenced.extend(preferenced);
        }
    }
    // Memory fallback: a global the failing code names whose word is
    // non-zero (so some execution wrote or depends on it).
    if out_mems.is_empty() {
        let blk = program.func(pc.func).block(pc.block);
        for inst in &blk.insts {
            if let Inst::AddrOf { global, .. } = inst {
                out_referenced.push(program.global(*global).addr);
            }
        }
        for a in out_referenced {
            if dump.memory.read(a, mvm_isa::Width::W8) != 0 {
                out_mems.push(a);
                break;
            }
        }
    }
    (out_regs, out_mems)
}

/// Corrupts every other report in the corpus (alternating memory flips
/// and register corruption at consequential sites, falling back to
/// random sites), runs the filter, and scores it.
pub fn filter_corpus(corpus: &[FailureReport], config: &ResConfig) -> HwFilterStudy {
    filter_corpus_inner(corpus, config, None)
}

/// [`filter_corpus`] backed by a shared persistent-store directory —
/// the same directory the §3.1 bucketing helpers use, so the relaxation
/// sweep replays solver results the bucketing pass (or an earlier
/// process) already paid for. Verdicts are identical either way.
pub fn filter_corpus_shared(
    corpus: &[FailureReport],
    config: &ResConfig,
    store_dir: &std::path::Path,
) -> HwFilterStudy {
    filter_corpus_inner(corpus, config, Some(store_dir))
}

fn filter_corpus_inner(
    corpus: &[FailureReport],
    config: &ResConfig,
    store_dir: Option<&std::path::Path>,
) -> HwFilterStudy {
    let mut study = HwFilterStudy::default();
    for (i, r) in corpus.iter().enumerate() {
        let corrupt = i % 2 == 1;
        let dump: Coredump = if corrupt {
            let mut d = r.dump.clone();
            let (regs, mems) = consequential_sites(&r.program, &r.dump);
            if i % 4 == 1 {
                match mems.first() {
                    Some(&addr) => {
                        let _ = flip_memory_bit_at(&mut d, addr, (r.seed % 8) as u8);
                    }
                    None => {
                        let _ = flip_memory_bit(&mut d, r.seed ^ 0xf11b);
                    }
                }
            } else {
                match regs.last() {
                    Some(&reg) => {
                        let _ = corrupt_register_at(&mut d, 0, reg, r.seed | 0x10);
                    }
                    None => {
                        let _ = corrupt_register(&mut d, r.seed ^ 0xc0de);
                    }
                }
            }
            d
        } else {
            r.dump.clone()
        };
        let verdict = match store_dir {
            Some(dir) => {
                let cfg = crate::store::with_shared_store(config, dir, &r.program);
                hardware_verdict(&r.program, &dump, &cfg)
            }
            None => hardware_verdict(&r.program, &dump, config),
        };
        let flagged = matches!(verdict, HwVerdict::HardwareSuspected { .. });
        match (corrupt, flagged) {
            (true, true) => study.true_positives += 1,
            (true, false) => study.false_negatives += 1,
            (false, true) => study.false_positives += 1,
            (false, false) => study.true_negatives += 1,
        }
        study.reports.push(FilteredReport {
            index: i,
            actually_hardware: corrupt,
            verdict,
        });
    }
    study
}

#[cfg(test)]
mod tests {
    use super::*;
    use res_workloads::{generate_corpus, BugKind, CorpusSpec};

    #[test]
    fn filter_never_flags_genuine_software_bugs() {
        // Precision is the critical property: a software bug diverted as
        // "hardware" would never get fixed.
        let corpus = generate_corpus(&CorpusSpec {
            kinds: vec![BugKind::DivByZero, BugKind::SemanticAssert],
            per_kind: 2,
            ..CorpusSpec::default()
        });
        let study = filter_corpus(&corpus, &ResConfig::default());
        assert_eq!(study.false_positives, 0, "{study:?}");
        assert!(study.precision() >= 0.99);
    }
}
