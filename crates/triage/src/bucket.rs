//! Root-cause bucketing (paper §3.1).
//!
//! "RES can process incoming bug reports and triage them based on the
//! execution suffix and the likely root cause." Each report is run
//! through the engine; the root-cause analyzer's *bucket key* — stable
//! across manifestation sites — becomes the triaging key. Reports the
//! engine cannot explain fall back to the stack signature (annotated as
//! such), mirroring the paper's suggestion to combine RES with existing
//! triage.

use mvm_core::Coredump;
use mvm_isa::Program;
use res_baselines::wer::{bucket_by_stack, build_report, BucketingReport};
use res_core::{analyze_root_cause, replay_suffix, ResConfig, ResEngine};
use res_workloads::FailureReport;

/// Computes the RES bucket key for one report.
pub fn res_bucket_key(program: &Program, dump: &Coredump, config: &ResConfig) -> String {
    // A hang has no faulting suffix to synthesize, but its root cause —
    // the cyclic wait — is directly evident in the dump: the *set* of
    // blocked sites. Order-normalizing that set (like the §3.1 race
    // keys) makes the key stable across which thread the reporter
    // happened to call "faulting", where stack bucketing splits.
    if let mvm_machine::Fault::Deadlock { threads } = &dump.fault {
        let mut sites: Vec<String> = threads
            .iter()
            .filter_map(|tid| dump.thread(*tid))
            .map(|t| t.pc().to_string())
            .collect();
        if sites.is_empty() {
            sites = dump.threads.iter().map(|t| t.pc().to_string()).collect();
        }
        sites.sort();
        sites.dedup();
        return format!("deadlock:{}", sites.join("&"));
    }
    let engine = ResEngine::new(program, config.clone());
    let result = engine.synthesize(dump);
    for sfx in &result.suffixes {
        if !replay_suffix(program, dump, sfx).reproduced {
            continue;
        }
        let rc = analyze_root_cause(program, dump, sfx);
        if rc != res_core::RootCause::Unknown {
            return rc.bucket_key();
        }
    }
    // Fall back to the naive signature, marked as unexplained.
    let sig = dump.stack_signature(2);
    let frames: Vec<String> = sig.frames.iter().map(|l| l.to_string()).collect();
    format!("unexplained:{}|{}", sig.signal, frames.join(";"))
}

/// RES bucket keys for a whole corpus.
pub fn res_bucket_keys(corpus: &[FailureReport], config: &ResConfig) -> Vec<String> {
    corpus
        .iter()
        .map(|r| res_bucket_key(&r.program, &r.dump, config))
        .collect()
}

/// [`res_bucket_keys`] backed by a shared persistent-store directory:
/// each report's engine warms from (and appends to) its program's store
/// file, so repeated reports of one program skip repeated solver work —
/// across this call *and* across process runs. The keys are identical
/// to the store-less ones (see `res-store`'s determinism argument).
pub fn res_bucket_keys_shared(
    corpus: &[FailureReport],
    config: &ResConfig,
    store_dir: &std::path::Path,
) -> Vec<String> {
    corpus
        .iter()
        .map(|r| {
            let cfg = crate::store::with_shared_store(config, store_dir, &r.program);
            res_bucket_key(&r.program, &r.dump, &cfg)
        })
        .collect()
}

/// Side-by-side triaging comparison on one corpus (experiment E5).
#[derive(Debug, Clone)]
pub struct TriageComparison {
    /// WER-like stack bucketing.
    pub wer: BucketingReport,
    /// RES root-cause bucketing.
    pub res: BucketingReport,
}

/// Buckets a corpus both ways.
pub fn triage_corpus(
    corpus: &[FailureReport],
    stack_depth: usize,
    config: &ResConfig,
) -> TriageComparison {
    let wer = bucket_by_stack(corpus, stack_depth);
    let keys = res_bucket_keys(corpus, config);
    let res = build_report(corpus, keys);
    TriageComparison { wer, res }
}

#[cfg(test)]
mod tests {
    use super::*;
    use res_workloads::{generate_corpus, BugKind, CorpusSpec};

    #[test]
    fn res_buckets_deterministic_bugs_stably() {
        let corpus = generate_corpus(&CorpusSpec {
            kinds: vec![BugKind::UseAfterFree, BugKind::DivByZero],
            per_kind: 3,
            ..CorpusSpec::default()
        });
        let keys = res_bucket_keys(&corpus, &ResConfig::default());
        // All reports of one bug share a key; the two bugs differ.
        let uaf_keys: Vec<&String> = corpus
            .iter()
            .zip(&keys)
            .filter(|(r, _)| r.kind == BugKind::UseAfterFree)
            .map(|(_, k)| k)
            .collect();
        assert!(uaf_keys.windows(2).all(|w| w[0] == w[1]), "{uaf_keys:?}");
        let dz_key = corpus
            .iter()
            .zip(&keys)
            .find(|(r, _)| r.kind == BugKind::DivByZero)
            .map(|(_, k)| k.clone())
            .unwrap();
        assert_ne!(&dz_key, uaf_keys[0]);
    }

    #[test]
    fn res_separates_engineered_stack_collision() {
        // The corpus where stacks collide: WER merges, RES separates.
        let corpus = generate_corpus(&CorpusSpec {
            kinds: vec![BugKind::RaceNullDeref, BugKind::UafSameStack],
            per_kind: 3,
            ..CorpusSpec::default()
        });
        if corpus.len() < 4 {
            return; // Not enough failures manifested; covered elsewhere.
        }
        let cmp = triage_corpus(&corpus, 1, &ResConfig::default());
        assert!(
            cmp.res.misbucket_rate <= cmp.wer.misbucket_rate,
            "res {} vs wer {}",
            cmp.res.misbucket_rate,
            cmp.wer.misbucket_rate
        );
    }
}
