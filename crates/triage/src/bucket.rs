//! Root-cause bucketing (paper §3.1).
//!
//! "RES can process incoming bug reports and triage them based on the
//! execution suffix and the likely root cause." Each report is run
//! through the engine; the root-cause analyzer's *bucket key* — stable
//! across manifestation sites — becomes the triaging key. Reports the
//! engine cannot explain fall back to the stack signature (annotated as
//! such), mirroring the paper's suggestion to combine RES with existing
//! triage.

use mvm_core::Coredump;
use mvm_isa::Program;
use res_baselines::wer::{bucket_by_stack, build_report, BucketingReport};
use res_core::{analyze_root_cause, replay_suffix, ResConfig, ResEngine};
use res_workloads::FailureReport;

/// The order-normalized deadlock key, when the dump records a hang.
///
/// A hang has no faulting suffix to synthesize, but its root cause —
/// the cyclic wait — is directly evident in the dump: the *set* of
/// blocked sites. Order-normalizing that set (like the §3.1 race
/// keys) makes the key stable across which thread the reporter
/// happened to call "faulting", where stack bucketing splits.
pub fn deadlock_bucket_key(dump: &Coredump) -> Option<String> {
    let mvm_machine::Fault::Deadlock { threads } = &dump.fault else {
        return None;
    };
    let mut sites: Vec<String> = threads
        .iter()
        .filter_map(|tid| dump.thread(*tid))
        .map(|t| t.pc().to_string())
        .collect();
    if sites.is_empty() {
        sites = dump.threads.iter().map(|t| t.pc().to_string()).collect();
    }
    sites.sort();
    sites.dedup();
    Some(format!("deadlock:{}", sites.join("&")))
}

/// The bucket key an already-synthesized suffix set yields: the first
/// replay-confirmed root cause, else the stack-signature fallback
/// (marked `unexplained:`), mirroring the paper's suggestion to combine
/// RES with existing triage. [`res_bucket_key`] is this over a fresh
/// synthesis; the triage daemon calls it on results it already holds.
pub fn bucket_key_for(
    program: &Program,
    dump: &Coredump,
    suffixes: &[res_core::ExecutionSuffix],
) -> String {
    for sfx in suffixes {
        if !replay_suffix(program, dump, sfx).reproduced {
            continue;
        }
        let rc = analyze_root_cause(program, dump, sfx);
        if rc != res_core::RootCause::Unknown {
            return rc.bucket_key();
        }
    }
    // Fall back to the naive signature, marked as unexplained.
    let sig = dump.stack_signature(2);
    let frames: Vec<String> = sig.frames.iter().map(|l| l.to_string()).collect();
    format!("unexplained:{}|{}", sig.signal, frames.join(";"))
}

/// Computes the RES bucket key for one report.
pub fn res_bucket_key(program: &Program, dump: &Coredump, config: &ResConfig) -> String {
    if let Some(key) = deadlock_bucket_key(dump) {
        return key;
    }
    let engine = ResEngine::new(program, config.clone());
    let result = engine.synthesize(dump);
    bucket_key_for(program, dump, &result.suffixes)
}

/// RES bucket keys for a whole corpus.
///
/// When `store_dir` is given, each report's engine warms from (and
/// appends to) its program's store file inside that shared
/// persistent-store directory, so repeated reports of one program skip
/// repeated solver work — across this call *and* across process runs.
/// The keys are identical either way (see `res-store`'s determinism
/// argument); `None` is the plain store-less path.
pub fn res_bucket_keys(
    corpus: &[FailureReport],
    config: &ResConfig,
    store_dir: Option<&std::path::Path>,
) -> Vec<String> {
    corpus
        .iter()
        .map(|r| match store_dir {
            Some(dir) => {
                let cfg = crate::store::with_shared_store(config, dir, &r.program);
                res_bucket_key(&r.program, &r.dump, &cfg)
            }
            None => res_bucket_key(&r.program, &r.dump, config),
        })
        .collect()
}

/// Side-by-side triaging comparison on one corpus (experiment E5).
#[derive(Debug, Clone)]
pub struct TriageComparison {
    /// WER-like stack bucketing.
    pub wer: BucketingReport,
    /// RES root-cause bucketing.
    pub res: BucketingReport,
}

/// Buckets a corpus both ways.
pub fn triage_corpus(
    corpus: &[FailureReport],
    stack_depth: usize,
    config: &ResConfig,
) -> TriageComparison {
    let wer = bucket_by_stack(corpus, stack_depth);
    let keys = res_bucket_keys(corpus, config, None);
    let res = build_report(corpus, keys);
    TriageComparison { wer, res }
}

#[cfg(test)]
mod tests {
    use super::*;
    use res_workloads::{generate_corpus, BugKind, CorpusSpec};

    #[test]
    fn res_buckets_deterministic_bugs_stably() {
        let corpus = generate_corpus(&CorpusSpec {
            kinds: vec![BugKind::UseAfterFree, BugKind::DivByZero],
            per_kind: 3,
            ..CorpusSpec::default()
        });
        let keys = res_bucket_keys(&corpus, &ResConfig::default(), None);
        // All reports of one bug share a key; the two bugs differ.
        let uaf_keys: Vec<&String> = corpus
            .iter()
            .zip(&keys)
            .filter(|(r, _)| r.kind == BugKind::UseAfterFree)
            .map(|(_, k)| k)
            .collect();
        assert!(uaf_keys.windows(2).all(|w| w[0] == w[1]), "{uaf_keys:?}");
        let dz_key = corpus
            .iter()
            .zip(&keys)
            .find(|(r, _)| r.kind == BugKind::DivByZero)
            .map(|(_, k)| k.clone())
            .unwrap();
        assert_ne!(&dz_key, uaf_keys[0]);
    }

    #[test]
    fn res_separates_engineered_stack_collision() {
        // The corpus where stacks collide: WER merges, RES separates.
        let corpus = generate_corpus(&CorpusSpec {
            kinds: vec![BugKind::RaceNullDeref, BugKind::UafSameStack],
            per_kind: 3,
            ..CorpusSpec::default()
        });
        if corpus.len() < 4 {
            return; // Not enough failures manifested; covered elsewhere.
        }
        let cmp = triage_corpus(&corpus, 1, &ResConfig::default());
        assert!(
            cmp.res.misbucket_rate <= cmp.wer.misbucket_rate,
            "res {} vs wer {}",
            cmp.res.misbucket_rate,
            cmp.wer.misbucket_rate
        );
    }
}
