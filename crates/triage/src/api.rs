//! The typed triage API: one request, one response.
//!
//! Every way of asking RES about a coredump — §3.1 bucketing, §3.2
//! hardware filtering, plain suffix synthesis — used to have its own
//! argument list (config clone here, store directory there, env var for
//! workers). [`TriageRequest`] collapses them: a program, a dump, and
//! the per-call overrides (relaxation, budget dimensions, deadline,
//! workers, store, trace). [`TriageResponse`] is the single return
//! shape: verdict, bucket key, suffix summaries, and the full
//! [`KernelStats`]/store/parallel accounting.
//!
//! Both types are mvm-json serializable end to end (program and dump
//! included), which is what lets `res-serve` put this exact pair on the
//! wire: a daemon request is *the same value* a library caller would
//! build, so byte-identity between the two paths is checkable by
//! construction.
//!
//! Budget overrides are carried as discrete optional fields
//! (`max_nodes`, `hyp_max_steps`, `max_solver_assignments`,
//! `deadline_ms`) rather than a serialized [`res_core::Budget`]: the
//! kernel budget embeds a `Duration`, which has no JSON form, and a
//! request should be able to override one dimension without restating
//! the rest.

use std::path::PathBuf;
use std::time::Duration;

use mvm_core::Coredump;
use mvm_isa::Program;
use mvm_json::json_struct;
use res_core::{
    hardware_verdict, hardware_verdict_in_store, ExecutionSuffix, HwVerdict, KernelStats,
    ParallelReport, Relax, ResConfig, ResEngine, StoreReport, SynthOptions, SynthesisResult,
    Verdict,
};
use res_obs::Recorder;
use res_store::SolverStore;

use crate::bucket::{bucket_key_for, deadlock_bucket_key};

/// One triage job: the failing program, its dump, and every per-call
/// override. Field defaults (`None` / [`Relax::None`]) mean "use the
/// serving config's value", so the empty overrides request is exactly
/// the plain library call.
#[derive(Debug, Clone, PartialEq)]
pub struct TriageRequest {
    /// The program that failed.
    pub program: Program,
    /// Its coredump.
    pub dump: Coredump,
    /// Treat one dump location as unknown (§3.2 localization probe).
    pub relax: Relax,
    /// Override the node budget for this call.
    pub max_nodes: Option<u64>,
    /// Override the per-hypothesis instruction budget for this call.
    pub hyp_max_steps: Option<u64>,
    /// Override the cumulative solver-assignment budget for this call.
    pub max_solver_assignments: Option<u64>,
    /// Wall-clock deadline for this call, in milliseconds.
    pub deadline_ms: Option<u64>,
    /// Override the speculative worker count for this call.
    pub workers: Option<usize>,
    /// Persistent-store path for this call (daemon-side requests leave
    /// this unset — the daemon routes them through its hot store).
    pub store: Option<String>,
    /// JSONL trace path for this call.
    pub trace: Option<String>,
    /// Return a portable replay-trace artifact (`res-trace` text
    /// encoding) in [`TriageResponse::trace`] when a reproduced suffix
    /// exists. Off by default: the artifact embeds the coredump, so it
    /// roughly doubles the response size.
    pub return_trace: bool,
}

json_struct!(TriageRequest {
    program,
    dump,
    relax,
    max_nodes,
    hyp_max_steps,
    max_solver_assignments,
    deadline_ms,
    workers,
    store,
    trace,
    return_trace
});

impl TriageRequest {
    /// A request with no overrides.
    pub fn new(program: Program, dump: Coredump) -> Self {
        TriageRequest {
            program,
            dump,
            relax: Relax::None,
            max_nodes: None,
            hyp_max_steps: None,
            max_solver_assignments: None,
            deadline_ms: None,
            workers: None,
            store: None,
            trace: None,
            return_trace: false,
        }
    }

    /// Requests a portable replay-trace artifact in the response.
    pub fn return_trace(mut self, yes: bool) -> Self {
        self.return_trace = yes;
        self
    }

    /// Sets the relaxation.
    pub fn relax(mut self, relax: Relax) -> Self {
        self.relax = relax;
        self
    }

    /// Caps this call's wall-clock time.
    pub fn deadline_ms(mut self, ms: u64) -> Self {
        self.deadline_ms = Some(ms);
        self
    }

    /// Overrides the node budget.
    pub fn max_nodes(mut self, n: u64) -> Self {
        self.max_nodes = Some(n);
        self
    }

    /// Overrides the worker count.
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = Some(n);
        self
    }

    /// `true` when any budget dimension (or the deadline) is overridden
    /// — what a daemon's admission control inspects.
    pub fn overrides_budget(&self) -> bool {
        self.max_nodes.is_some()
            || self.hyp_max_steps.is_some()
            || self.max_solver_assignments.is_some()
            || self.deadline_ms.is_some()
    }

    /// The [`SynthOptions`] this request's overrides assemble into,
    /// given the serving config `base` (whose budget seeds any
    /// partially-overridden dimensions).
    pub fn synth_options(&self, base: &ResConfig) -> SynthOptions {
        let mut opts = SynthOptions::new().relax(self.relax);
        if let Some(w) = self.workers {
            opts = opts.workers(w);
        }
        if self.max_nodes.is_some()
            || self.hyp_max_steps.is_some()
            || self.max_solver_assignments.is_some()
        {
            let mut b = base.budget();
            if let Some(n) = self.max_nodes {
                b.max_nodes = n;
            }
            if let Some(n) = self.hyp_max_steps {
                b.hyp_max_steps = n;
            }
            if let Some(n) = self.max_solver_assignments {
                b.max_solver_assignments = Some(n);
            }
            opts = opts.budget(b);
        }
        if let Some(ms) = self.deadline_ms {
            opts = opts.deadline(Duration::from_millis(ms));
        }
        if let Some(p) = &self.store {
            opts = opts.cache_path(p);
        }
        if let Some(p) = &self.trace {
            opts = opts.trace(p);
        }
        opts
    }

    /// A config clone with every override applied — the whole-engine
    /// form of [`TriageRequest::synth_options`], for entry points that
    /// take a [`ResConfig`] (the §3.2 relaxation sweep).
    pub fn config_for(&self, base: &ResConfig) -> ResConfig {
        let mut c = base.clone();
        if let Some(n) = self.max_nodes {
            c.max_nodes = n;
        }
        if let Some(n) = self.hyp_max_steps {
            c.hyp_max_steps = n;
        }
        if let Some(n) = self.max_solver_assignments {
            c.max_solver_assignments = Some(n);
        }
        if let Some(ms) = self.deadline_ms {
            c.deadline = Some(Duration::from_millis(ms));
        }
        if let Some(w) = self.workers {
            c.workers = w;
        }
        if let Some(p) = &self.store {
            c.cache_path = Some(PathBuf::from(p));
        }
        if let Some(p) = &self.trace {
            c.trace = Some(PathBuf::from(p));
        }
        c
    }
}

/// The wire-safe digest of one synthesized suffix: its exact bytes (as
/// the canonical `Debug` rendering the determinism gates compare), its
/// size, and whether the replayer reproduced the fault from it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuffixSummary {
    /// The suffix's canonical `Debug` rendering — the byte-identity
    /// currency of every determinism gate in this repo.
    pub bytes: String,
    /// Block-granular steps.
    pub steps: usize,
    /// Total instructions across all steps.
    pub instructions: u64,
    /// `true` when replaying the suffix reproduced the dump's fault.
    pub replayed: bool,
}

json_struct!(SuffixSummary {
    bytes,
    steps,
    instructions,
    replayed
});

/// Everything a triage call returns, serializable end to end.
#[derive(Debug, Clone, PartialEq)]
pub struct TriageResponse {
    /// The engine's verdict ([`Verdict::SuffixFound`] et al.).
    pub verdict: Verdict,
    /// `true` when the dump recorded a hang: the bucket key comes from
    /// the blocked-site set and no synthesis ran.
    pub deadlock: bool,
    /// The §3.1 triaging key.
    pub bucket_key: String,
    /// Synthesized suffixes, in discovery order.
    pub suffixes: Vec<SuffixSummary>,
    /// Search statistics (for a sharded run: the authoritative replay).
    pub stats: KernelStats,
    /// Speculative fan-out accounting; `None` for single-worker runs.
    pub parallel: Option<ParallelReport>,
    /// Persistent-store accounting; `None` when no store was in play.
    pub store: Option<StoreReport>,
    /// The portable replay-trace artifact (`res-trace` text encoding,
    /// first reproduced suffix), when the request asked for one via
    /// [`TriageRequest::return_trace`]. Write it to a `.restrace` file
    /// and it replays with `res-cli replay`/`verify`.
    pub trace: Option<String>,
    /// The daemon's request id (`c<conn>.<seq>`), stamped by
    /// `res-serve` so an answer can be correlated with its `serve.req`
    /// span tree in the daemon journal. `None` for direct library
    /// calls. Never part of the verdict: the byte-identity currency
    /// (`verdict|deadlock|bucket_key|suffixes`) excludes it.
    pub req_id: Option<String>,
}

json_struct!(TriageResponse {
    verdict,
    deadlock,
    bucket_key,
    suffixes,
    stats,
    parallel,
    store,
    trace,
    req_id
});

fn response_from(
    program: &Program,
    dump: &Coredump,
    result: SynthesisResult,
    return_trace: bool,
) -> TriageResponse {
    let suffixes: Vec<SuffixSummary> = result
        .suffixes
        .iter()
        .map(|s| summarize(program, dump, s))
        .collect();
    let bucket_key = bucket_key_for(program, dump, &result.suffixes);
    let trace = if return_trace {
        result.suffixes.iter().find_map(|s| {
            res_trace::record_trace(
                program,
                dump,
                s,
                Some(bucket_key.clone()),
                &Recorder::disabled(),
            )
            .ok()
            .map(|t| String::from_utf8(t.to_text_bytes()).expect("text trace is utf-8"))
        })
    } else {
        None
    };
    TriageResponse {
        verdict: result.verdict,
        deadlock: false,
        bucket_key,
        suffixes,
        stats: result.stats,
        parallel: result.parallel,
        store: result.store,
        trace,
        req_id: None,
    }
}

fn summarize(program: &Program, dump: &Coredump, s: &ExecutionSuffix) -> SuffixSummary {
    SuffixSummary {
        bytes: format!("{s:?}"),
        steps: s.len(),
        instructions: s.total_steps(),
        replayed: res_core::replay_suffix(program, dump, s).reproduced,
    }
}

fn deadlock_response(key: String) -> TriageResponse {
    TriageResponse {
        verdict: Verdict::NoFeasibleSuffix { proven: false },
        deadlock: true,
        bucket_key: key,
        suffixes: Vec::new(),
        stats: KernelStats::default(),
        parallel: None,
        store: None,
        trace: None,
        req_id: None,
    }
}

/// Runs one request through the engine: the single entry point behind
/// which `res-cli submit`, the corpus helpers, and the `res-serve`
/// daemon all sit. Hangs short-circuit to the deadlock bucket key
/// (there is no faulting suffix to synthesize).
pub fn triage(req: &TriageRequest, base: &ResConfig) -> TriageResponse {
    if let Some(key) = deadlock_bucket_key(&req.dump) {
        return deadlock_response(key);
    }
    let engine = ResEngine::new(&req.program, base.clone());
    let result = engine.synthesize_with(&req.dump, req.synth_options(base));
    response_from(&req.program, &req.dump, result, req.return_trace)
}

/// [`triage`] with every solver query routed through a caller-owned
/// [`SolverStore`] — the daemon hot path. The store is absorbed before
/// the search and new results are merged back, but committing stays
/// with the caller (the daemon commits on hot-store eviction or
/// shutdown). Any `store` path in the request is ignored: the caller's
/// store *is* the store.
pub fn triage_in_store(
    req: &TriageRequest,
    base: &ResConfig,
    store: &mut SolverStore,
) -> TriageResponse {
    if let Some(key) = deadlock_bucket_key(&req.dump) {
        return deadlock_response(key);
    }
    let engine = ResEngine::new(&req.program, base.clone());
    let mut opts = req.synth_options(base);
    opts.cache_path = None;
    let result = engine.synthesize_in_store(&req.dump, opts, store);
    response_from(&req.program, &req.dump, result, req.return_trace)
}

/// The §3.2 verdict for one request (relaxation sweep included), with
/// the request's overrides applied to the serving config.
pub fn hw_verdict_for(req: &TriageRequest, base: &ResConfig) -> HwVerdict {
    hardware_verdict(&req.program, &req.dump, &req.config_for(base))
}

/// [`hw_verdict_for`] through a caller-owned store (see
/// [`triage_in_store`] for the commit contract).
pub fn hw_verdict_for_in_store(
    req: &TriageRequest,
    base: &ResConfig,
    store: &mut SolverStore,
) -> HwVerdict {
    let mut cfg = req.config_for(base);
    cfg.cache_path = None;
    hardware_verdict_in_store(&req.program, &req.dump, &cfg, store)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvm_json::{FromJson, ToJson};
    use res_workloads::{generate_corpus, BugKind, CorpusSpec};

    fn one_report(kind: BugKind) -> res_workloads::FailureReport {
        generate_corpus(&CorpusSpec {
            kinds: vec![kind],
            per_kind: 1,
            ..CorpusSpec::default()
        })
        .into_iter()
        .next()
        .expect("corpus generation yields a report")
    }

    #[test]
    fn request_round_trips_through_json() {
        let r = one_report(BugKind::DivByZero);
        let req = TriageRequest::new(r.program, r.dump)
            .relax(Relax::Mem { addr: 0x1000 })
            .deadline_ms(250)
            .max_nodes(77)
            .workers(3);
        let back = TriageRequest::from_json(&req.to_json()).expect("round trip");
        assert_eq!(req, back);
    }

    #[test]
    fn triage_matches_direct_library_calls() {
        let r = one_report(BugKind::UseAfterFree);
        let config = ResConfig::default();
        let req = TriageRequest::new(r.program.clone(), r.dump.clone());
        let resp = triage(&req, &config);

        let engine = ResEngine::new(&r.program, config.clone());
        let direct = engine.synthesize(&r.dump);
        assert_eq!(resp.verdict, direct.verdict);
        assert_eq!(resp.suffixes.len(), direct.suffixes.len());
        for (summary, sfx) in resp.suffixes.iter().zip(&direct.suffixes) {
            assert_eq!(summary.bytes, format!("{sfx:?}"), "byte identity");
        }
        assert_eq!(
            resp.bucket_key,
            crate::bucket::res_bucket_key(&r.program, &r.dump, &config)
        );
        let back = TriageResponse::from_json(&resp.to_json()).expect("response round trip");
        assert_eq!(resp, back);
    }

    #[test]
    fn budget_overrides_reach_the_kernel() {
        let r = one_report(BugKind::DivByZero);
        let config = ResConfig::default();
        let req = TriageRequest::new(r.program.clone(), r.dump.clone()).max_nodes(1);
        assert!(req.overrides_budget());
        let resp = triage(&req, &config);
        assert!(
            resp.stats.nodes_expanded <= 1,
            "a 1-node budget must cut immediately: {:?}",
            resp.stats
        );
    }

    #[test]
    fn deadlock_requests_skip_synthesis() {
        let corpus = generate_corpus(&CorpusSpec {
            kinds: vec![BugKind::Deadlock],
            per_kind: 1,
            ..CorpusSpec::default()
        });
        let Some(r) = corpus.into_iter().next() else {
            return; // No hang manifested; covered by bucket tests.
        };
        let config = ResConfig::default();
        let resp = triage(
            &TriageRequest::new(r.program.clone(), r.dump.clone()),
            &config,
        );
        assert!(resp.deadlock);
        assert!(resp.bucket_key.starts_with("deadlock:"));
        assert_eq!(resp.stats.nodes_expanded, 0, "no search ran");
        assert_eq!(
            resp.bucket_key,
            crate::bucket::res_bucket_key(&r.program, &r.dump, &config)
        );
    }
}
