//! # Bug-report triaging with RES (paper §3.1, §3.2)
//!
//! The paper's three use cases, built on the `res-core` engine:
//!
//! * [`bucket`] — triage failure reports by *synthesized root cause*
//!   instead of call-stack signature; measured against the WER-like
//!   baseline on labeled corpora (experiment E5).
//! * [`exploit`] — rate exploitability from suffix evidence (did
//!   attacker-controlled input flow into the failing window?) instead of
//!   `!exploitable`-style fault-shape heuristics (experiment E6).
//! * [`hwfilter`] — filter out failures that no feasible execution
//!   explains (hardware errors) before they reach developers
//!   (experiment E7).
//! * [`store`] — shared persistent-store wiring: corpus helpers point
//!   every report at a per-program store file inside one directory, so
//!   bucketing and hardware filtering reuse each other's solver work,
//!   within and across process runs (experiment E13).
//! * [`corpus_scale`] — the same three use cases over *generated*
//!   program populations (`res-gen`): hundreds of distinct labeled
//!   programs, thread-sharded, rates reported as min/median/max
//!   distributions (experiments E5c/E6c/E7c).

pub mod bucket;
pub mod corpus_scale;
pub mod exploit;
pub mod hwfilter;
pub mod store;

pub use bucket::{res_bucket_keys, res_bucket_keys_shared, triage_corpus, TriageComparison};
pub use corpus_scale::{
    exploit_scale, hardware_scale, triage_scale, CorpusScaleSpec, Dist, ExploitScaleReport,
    HwScaleReport, TriageScaleReport,
};
pub use exploit::{classify_with_res, exploitability_study, ExploitStudy};
pub use hwfilter::{filter_corpus, filter_corpus_shared, HwFilterStudy};
pub use store::{store_path_for, with_shared_store};
