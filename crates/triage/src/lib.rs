//! # Bug-report triaging with RES (paper §3.1, §3.2)
//!
//! The paper's three use cases, built on the `res-core` engine:
//!
//! * [`api`] — the typed entry point: one [`TriageRequest`] in, one
//!   [`TriageResponse`] out, both plain mvm-json values. The same
//!   structs are the `res-serve` daemon's wire payloads, so a daemon
//!   answer and a direct [`triage`] call compare field by field.
//! * [`bucket`] — triage failure reports by *synthesized root cause*
//!   instead of call-stack signature; measured against the WER-like
//!   baseline on labeled corpora (experiment E5).
//! * [`exploit`] — rate exploitability from suffix evidence (did
//!   attacker-controlled input flow into the failing window?) instead of
//!   `!exploitable`-style fault-shape heuristics (experiment E6).
//! * [`hwfilter`] — filter out failures that no feasible execution
//!   explains (hardware errors) before they reach developers
//!   (experiment E7).
//! * [`store`] — shared persistent-store wiring: corpus helpers point
//!   every report at a per-program store file inside one directory, so
//!   bucketing and hardware filtering reuse each other's solver work,
//!   within and across process runs (experiment E13).
//! * [`corpus_scale`] — the same three use cases over *generated*
//!   program populations (`res-gen`): hundreds of distinct labeled
//!   programs, thread-sharded, rates reported as min/median/max
//!   distributions (experiments E5c/E6c/E7c).

pub mod api;
pub mod bucket;
pub mod corpus_scale;
pub mod exploit;
pub mod hwfilter;
pub mod store;

pub use api::{
    hw_verdict_for, hw_verdict_for_in_store, triage, triage_in_store, SuffixSummary, TriageRequest,
    TriageResponse,
};
pub use bucket::{
    bucket_key_for, deadlock_bucket_key, res_bucket_key, res_bucket_keys, triage_corpus,
    TriageComparison,
};
pub use corpus_scale::{
    exploit_scale, hardware_scale, triage_scale, CorpusScaleSpec, Dist, ExploitScaleReport,
    HwScaleReport, TriageScaleReport,
};
pub use exploit::{classify_with_res, exploitability_study, ExploitStudy};
pub use hwfilter::{filter_corpus, HwFilterStudy};
pub use store::{store_path_for, with_shared_store};
