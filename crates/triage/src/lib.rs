//! # Bug-report triaging with RES (paper §3.1, §3.2)
//!
//! The paper's three use cases, built on the `res-core` engine:
//!
//! * [`bucket`] — triage failure reports by *synthesized root cause*
//!   instead of call-stack signature; measured against the WER-like
//!   baseline on labeled corpora (experiment E5).
//! * [`exploit`] — rate exploitability from suffix evidence (did
//!   attacker-controlled input flow into the failing window?) instead of
//!   `!exploitable`-style fault-shape heuristics (experiment E6).
//! * [`hwfilter`] — filter out failures that no feasible execution
//!   explains (hardware errors) before they reach developers
//!   (experiment E7).

pub mod bucket;
pub mod exploit;
pub mod hwfilter;

pub use bucket::{res_bucket_keys, triage_corpus, TriageComparison};
pub use exploit::{classify_with_res, exploitability_study, ExploitStudy};
pub use hwfilter::{filter_corpus, HwFilterStudy};
