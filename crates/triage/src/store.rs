//! Shared persistent-store wiring for corpus runs (§3.1 + §3.2).
//!
//! A corpus mixes reports from *different* programs, and a store file
//! is strictly per-program (its header fingerprint refuses anything
//! else), so corpus helpers share one store *directory* with one file
//! per program fingerprint. Reports of the same program — the common
//! case in a bug-report stream — then share solver results across runs
//! and across use cases: the §3.1 bucketing pass warms exactly the
//! entries the §3.2 relaxation sweep replays, and a second triage run
//! over the same corpus starts warm.

use std::path::{Path, PathBuf};

use mvm_isa::Program;
use res_core::ResConfig;
use res_store::program_fingerprint;

/// The store file inside `dir` for `program` (named by its
/// fingerprint, so distinct programs never contend for one file).
pub fn store_path_for(dir: &Path, program: &Program) -> PathBuf {
    dir.join(format!("{:016x}.resstore", program_fingerprint(program)))
}

/// A config clone pointed at `program`'s store file inside `dir`.
pub fn with_shared_store(config: &ResConfig, dir: &Path, program: &Program) -> ResConfig {
    let mut c = config.clone();
    c.cache_path = Some(store_path_for(dir, program));
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bucket::res_bucket_keys;
    use crate::hwfilter::filter_corpus;
    use res_workloads::{generate_corpus, BugKind, CorpusSpec};

    #[test]
    fn shared_store_changes_no_answer_and_populates_the_directory() {
        let corpus = generate_corpus(&CorpusSpec {
            kinds: vec![BugKind::DivByZero, BugKind::UseAfterFree],
            per_kind: 2,
            ..CorpusSpec::default()
        });
        let dir = std::env::temp_dir().join(format!("res-triage-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = ResConfig::default();

        let plain = res_bucket_keys(&corpus, &config, None);
        let cold = res_bucket_keys(&corpus, &config, Some(&dir));
        let warm = res_bucket_keys(&corpus, &config, Some(&dir));
        assert_eq!(plain, cold, "a store must never change bucket keys");
        assert_eq!(cold, warm, "warm keys must match cold keys");

        // One store file per distinct program, created by the cold pass.
        let files = std::fs::read_dir(&dir).unwrap().count();
        assert!(files >= 1, "the shared directory must be populated");

        // The §3.2 sweep shares the same directory (and so the same
        // per-program files) without changing verdicts.
        let baseline = filter_corpus(&corpus, &config, None);
        let shared = filter_corpus(&corpus, &config, Some(&dir));
        for (a, b) in baseline.reports.iter().zip(shared.reports.iter()) {
            assert_eq!(a.verdict, b.verdict, "report {}", a.index);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
