//! Corpus-scale experiments over *generated* program populations.
//!
//! The fixed handwritten workloads give the E5/E6/E7 claims one data
//! point each. This module turns them into **distributions**: the
//! `res-gen` generator (`res_workloads::gen`) emits hundreds of
//! distinct labeled programs, each program's failures are triaged /
//! rated / filtered independently, and the per-shard rates are reported
//! as min/median/max tables. Sharding is by *contiguous program groups*
//! so the distribution says "if you ran the small experiment on a
//! different random population, what rates would you see?".
//!
//! # Parallelism and determinism
//!
//! The unit of parallel work is one generated program: generation,
//! failure collection, and every engine query for that program happen
//! on one worker thread, and the per-program store file (named by the
//! program fingerprint) is therefore never touched by two threads.
//! [`parallel_map`] returns results positionally, so every report —
//! tables, rates, shard distributions — is byte-identical at any thread
//! count (pinned by `tests/corpus_determinism.rs`). Observability goes
//! through a thread-safe [`Recorder`] using *counters*, whose totals
//! are order-independent.
//!
//! # Labels and keys
//!
//! Each generated program is one distinct ground-truth bug, labeled
//! `{fingerprint:016x}|{class}`. Bucket keys (both the WER baseline's
//! and RES's) are prefixed with the same fingerprint: a real triage
//! pipeline knows which program a report came from, so cross-program
//! stack collisions (every generated `div-by-zero` faults in a block
//! named alike) are not held against either bucketer. What remains is
//! the paper's §3.1 phenomenon: one bug splitting over several stacks
//! — which the generated `use-after-free` class engineers via
//! input-selected deref paths.

use std::path::Path;

use mvm_core::HwFlavor;
use res_baselines::exploitable_heur::{classify_heuristic, Exploitability};
use res_baselines::wer::{misbucket_rate_labeled, signature_key};
use res_core::{hardware_verdict, parallel_map, HwVerdict, ResConfig};
use res_obs::Recorder;
use res_store::program_fingerprint;
use res_workloads::gen::{
    collect_failures, corpus_specs, generate, hardware_variant, GenClass, GenSpec,
};

use crate::bucket::res_bucket_key;
use crate::exploit::classify_with_res;
use crate::store::with_shared_store;

/// What to run a corpus-scale experiment over.
#[derive(Debug, Clone)]
pub struct CorpusScaleSpec {
    /// Bug classes, round-robined over the program slots.
    pub classes: Vec<GenClass>,
    /// Number of distinct generated programs (the population size).
    pub programs: usize,
    /// Labeled failures collected per program.
    pub reports_per_program: usize,
    /// Contiguous program groups the rates are distributed over.
    pub shards: usize,
    /// Worker threads (1 = sequential; results are identical either way).
    pub threads: usize,
    /// Master seed for the population.
    pub seed: u64,
    /// Generator churn size.
    pub size: u32,
}

impl Default for CorpusScaleSpec {
    fn default() -> CorpusScaleSpec {
        CorpusScaleSpec {
            classes: GenClass::ALL.to_vec(),
            programs: 200,
            reports_per_program: 3,
            shards: 10,
            threads: 1,
            seed: 0x5ca1e,
            size: 1,
        }
    }
}

impl CorpusScaleSpec {
    fn specs(&self) -> Vec<GenSpec> {
        corpus_specs(&self.classes, self.programs, self.seed, self.size)
    }

    /// Shard boundaries: `shards` contiguous program ranges.
    fn shard_ranges(&self, n: usize) -> Vec<std::ops::Range<usize>> {
        let shards = self.shards.clamp(1, n.max(1));
        let per = n.div_ceil(shards);
        (0..shards)
            .map(|s| (s * per).min(n)..((s + 1) * per).min(n))
            .filter(|r| !r.is_empty())
            .collect()
    }
}

/// A min/median/max summary of per-shard rates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Dist {
    /// Smallest shard value.
    pub min: f64,
    /// Median shard value (midpoint-averaged for even counts).
    pub median: f64,
    /// Largest shard value.
    pub max: f64,
}

impl Dist {
    /// Summarizes `values` (empty input yields all zeros).
    pub fn over(mut values: Vec<f64>) -> Dist {
        if values.is_empty() {
            return Dist {
                min: 0.0,
                median: 0.0,
                max: 0.0,
            };
        }
        values.sort_by(f64::total_cmp);
        let n = values.len();
        let median = if n % 2 == 1 {
            values[n / 2]
        } else {
            (values[n / 2 - 1] + values[n / 2]) / 2.0
        };
        Dist {
            min: values[0],
            median,
            max: values[n - 1],
        }
    }

    /// `min/median/max` rendered as percentages.
    pub fn pct(&self) -> String {
        format!(
            "{:.1}% / {:.1}% / {:.1}%",
            100.0 * self.min,
            100.0 * self.median,
            100.0 * self.max
        )
    }
}

/// E5 at corpus scale: WER-style vs RES bucketing rate distributions.
#[derive(Debug, Clone)]
pub struct TriageScaleReport {
    /// Programs in the population.
    pub programs: usize,
    /// Total labeled reports.
    pub reports: usize,
    /// Per-shard WER mis-bucket rate distribution.
    pub wer: Dist,
    /// Per-shard RES mis-bucket rate distribution.
    pub res: Dist,
    /// Pooled WER rate over the whole population.
    pub wer_total: f64,
    /// Pooled RES rate over the whole population.
    pub res_total: f64,
}

/// Per-program triage data: one label per report, plus both bucketers'
/// keys, all fingerprint-prefixed.
struct TriagedProgram {
    labels: Vec<String>,
    wer_keys: Vec<String>,
    res_keys: Vec<String>,
}

/// Runs E5 at corpus scale: every program's reports are bucketed by
/// stack signature and by RES root cause (solver results routed through
/// `store_dir`), and mis-bucket rates are distributed over shards.
pub fn triage_scale(
    spec: &CorpusScaleSpec,
    config: &ResConfig,
    store_dir: &Path,
    rec: &Recorder,
) -> TriageScaleReport {
    let span = rec.span("corpus.triage");
    let specs = spec.specs();
    let per_program: Vec<TriagedProgram> = parallel_map(&specs, spec.threads, |_, gs| {
        let gp = generate(*gs);
        let fp = program_fingerprint(&gp.program);
        let fails = collect_failures(&gp, spec.reports_per_program);
        let label = format!("{fp:016x}|{}", gs.class.name());
        let cfg = with_shared_store(config, store_dir, &gp.program);
        let mut out = TriagedProgram {
            labels: Vec::new(),
            wer_keys: Vec::new(),
            res_keys: Vec::new(),
        };
        for f in &fails {
            out.labels.push(label.clone());
            out.wer_keys.push(format!(
                "{fp:016x}|{}",
                signature_key(&f.dump.stack_signature(2))
            ));
            out.res_keys.push(format!(
                "{fp:016x}|{}",
                res_bucket_key(&gp.program, &f.dump, &cfg)
            ));
            rec.counter("corpus.triage.reports", 1);
        }
        rec.counter("corpus.triage.programs", 1);
        out
    });

    // Pools a program range's reports and scores one bucketer
    // (`use_res` picks RES keys, otherwise WER keys).
    let pool = |use_res: bool, range: std::ops::Range<usize>| {
        let mut labels = Vec::new();
        let mut keys = Vec::new();
        for p in &per_program[range] {
            labels.extend_from_slice(&p.labels);
            keys.extend_from_slice(if use_res { &p.res_keys } else { &p.wer_keys });
        }
        misbucket_rate_labeled(&labels, &keys)
    };

    let ranges = spec.shard_ranges(per_program.len());
    let wer = Dist::over(ranges.iter().map(|r| pool(false, r.clone())).collect());
    let res = Dist::over(ranges.iter().map(|r| pool(true, r.clone())).collect());
    let reports = per_program.iter().map(|p| p.labels.len()).sum();
    let report = TriageScaleReport {
        programs: per_program.len(),
        reports,
        wer,
        res,
        wer_total: pool(false, 0..per_program.len()),
        res_total: pool(true, 0..per_program.len()),
    };
    span.end();
    report
}

/// E6 at corpus scale: exploitability error-rate distributions.
#[derive(Debug, Clone)]
pub struct ExploitScaleReport {
    /// Programs in the population.
    pub programs: usize,
    /// Total rated reports.
    pub reports: usize,
    /// Per-shard heuristic error-rate distribution.
    pub heur: Dist,
    /// Per-shard RES error-rate distribution.
    pub res: Dist,
    /// Pooled heuristic error rate.
    pub heur_total: f64,
    /// Pooled RES error rate.
    pub res_total: f64,
}

/// Runs E6 at corpus scale. Ground truth: `TaintedOverflow` programs
/// are remotely exploitable, every other class is not (`exploitable` in
/// the strict remote sense the §3.1 verdict draws).
pub fn exploit_scale(
    spec: &CorpusScaleSpec,
    config: &ResConfig,
    store_dir: &Path,
    rec: &Recorder,
) -> ExploitScaleReport {
    let span = rec.span("corpus.exploit");
    let specs = spec.specs();
    // Per report: (heuristic wrong?, res wrong?).
    let per_program: Vec<Vec<(bool, bool)>> = parallel_map(&specs, spec.threads, |_, gs| {
        let gp = generate(*gs);
        let fails = collect_failures(&gp, spec.reports_per_program);
        let truth = gs.class == GenClass::TaintedOverflow;
        let cfg = with_shared_store(config, store_dir, &gp.program);
        rec.counter("corpus.exploit.programs", 1);
        fails
            .iter()
            .map(|f| {
                let heur = classify_heuristic(&f.minidump) == Exploitability::Exploitable;
                let res =
                    classify_with_res(&gp.program, &f.dump, &cfg) == Exploitability::Exploitable;
                rec.counter("corpus.exploit.reports", 1);
                if heur != truth {
                    rec.counter("corpus.exploit.heur_errors", 1);
                }
                if res != truth {
                    rec.counter("corpus.exploit.res_errors", 1);
                }
                (heur != truth, res != truth)
            })
            .collect()
    });

    // Error rate over a program range (`use_res` picks the RES column).
    let rate = |use_res: bool, range: std::ops::Range<usize>| {
        let mut wrong = 0usize;
        let mut total = 0usize;
        for p in &per_program[range] {
            total += p.len();
            wrong += p.iter().filter(|e| if use_res { e.1 } else { e.0 }).count();
        }
        if total == 0 {
            0.0
        } else {
            wrong as f64 / total as f64
        }
    };

    let ranges = spec.shard_ranges(per_program.len());
    let heur = Dist::over(ranges.iter().map(|r| rate(false, r.clone())).collect());
    let res = Dist::over(ranges.iter().map(|r| rate(true, r.clone())).collect());
    let report = ExploitScaleReport {
        programs: per_program.len(),
        reports: per_program.iter().map(Vec::len).sum(),
        heur,
        res,
        heur_total: rate(false, 0..per_program.len()),
        res_total: rate(true, 0..per_program.len()),
    };
    span.end();
    report
}

/// E7 at corpus scale: hardware-filter precision/recall distributions.
#[derive(Debug, Clone)]
pub struct HwScaleReport {
    /// Programs in the population.
    pub programs: usize,
    /// Total filtered reports (half genuine, half corrupted).
    pub reports: usize,
    /// Per-shard precision distribution.
    pub precision: Dist,
    /// Per-shard recall distribution.
    pub recall: Dist,
    /// Pooled precision.
    pub precision_total: f64,
    /// Pooled recall.
    pub recall_total: f64,
    /// Genuine software reports flagged as hardware, over the whole
    /// population (the costly error; the experiment shape wants 0).
    pub false_positives: usize,
}

/// Runs E7 at corpus scale: for every program, even-indexed failures
/// pass through untouched and odd-indexed ones get a consequential-site
/// hardware corruption (alternating flavors) before the §3.2 verdict.
pub fn hardware_scale(
    spec: &CorpusScaleSpec,
    config: &ResConfig,
    store_dir: &Path,
    rec: &Recorder,
) -> HwScaleReport {
    let span = rec.span("corpus.hwfilter");
    let specs = spec.specs();
    // Per report: (actually hardware?, flagged as hardware?).
    let per_program: Vec<Vec<(bool, bool)>> = parallel_map(&specs, spec.threads, |_, gs| {
        let gp = generate(*gs);
        let fails = collect_failures(&gp, spec.reports_per_program);
        let cfg = with_shared_store(config, store_dir, &gp.program);
        rec.counter("corpus.hwfilter.programs", 1);
        fails
            .iter()
            .enumerate()
            .map(|(i, f)| {
                let corrupt = i % 2 == 1;
                let dump = if corrupt {
                    let flavor = if i % 4 == 1 {
                        HwFlavor::BitFlip
                    } else {
                        HwFlavor::RegCorrupt
                    };
                    hardware_variant(&gp, f, flavor).0
                } else {
                    f.dump.clone()
                };
                let verdict = hardware_verdict(&gp.program, &dump, &cfg);
                let flagged = matches!(verdict, HwVerdict::HardwareSuspected { .. });
                rec.counter("corpus.hwfilter.reports", 1);
                if corrupt && flagged {
                    rec.counter("corpus.hwfilter.true_positives", 1);
                }
                if !corrupt && flagged {
                    rec.counter("corpus.hwfilter.false_positives", 1);
                }
                (corrupt, flagged)
            })
            .collect()
    });

    let score = |range: std::ops::Range<usize>| {
        let (mut tp, mut fp, mut fneg) = (0usize, 0usize, 0usize);
        for p in &per_program[range] {
            for &(hw, flagged) in p {
                match (hw, flagged) {
                    (true, true) => tp += 1,
                    (false, true) => fp += 1,
                    (true, false) => fneg += 1,
                    (false, false) => {}
                }
            }
        }
        let precision = if tp + fp == 0 {
            1.0
        } else {
            tp as f64 / (tp + fp) as f64
        };
        let recall = if tp + fneg == 0 {
            1.0
        } else {
            tp as f64 / (tp + fneg) as f64
        };
        (precision, recall, fp)
    };

    let ranges = spec.shard_ranges(per_program.len());
    let shard_scores: Vec<(f64, f64, usize)> = ranges.iter().map(|r| score(r.clone())).collect();
    let (p_total, r_total, fp_total) = score(0..per_program.len());
    let report = HwScaleReport {
        programs: per_program.len(),
        reports: per_program.iter().map(Vec::len).sum(),
        precision: Dist::over(shard_scores.iter().map(|s| s.0).collect()),
        recall: Dist::over(shard_scores.iter().map(|s| s.1).collect()),
        precision_total: p_total,
        recall_total: r_total,
        false_positives: fp_total,
    };
    span.end();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("res-corpus-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn small_spec() -> CorpusScaleSpec {
        CorpusScaleSpec {
            classes: vec![GenClass::DivByZero, GenClass::UseAfterFree],
            programs: 6,
            reports_per_program: 2,
            shards: 3,
            threads: 2,
            seed: 77,
            size: 0,
        }
    }

    #[test]
    fn dist_over_handles_odd_even_and_empty() {
        assert_eq!(
            Dist::over(vec![]),
            Dist {
                min: 0.0,
                median: 0.0,
                max: 0.0
            }
        );
        let odd = Dist::over(vec![0.3, 0.1, 0.2]);
        assert_eq!((odd.min, odd.median, odd.max), (0.1, 0.2, 0.3));
        let even = Dist::over(vec![0.4, 0.1, 0.2, 0.3]);
        assert_eq!((even.min, even.median, even.max), (0.1, 0.25, 0.4));
    }

    #[test]
    fn triage_scale_beats_wer_on_multipath_population() {
        let dir = tmp_dir("triage");
        let rep = triage_scale(
            &small_spec(),
            &ResConfig::default(),
            &dir,
            &Recorder::disabled(),
        );
        assert_eq!(rep.programs, 6);
        assert_eq!(rep.reports, 12);
        // Each program is its own bug and RES keys are root-cause
        // stable, so RES should misbucket nothing here.
        assert_eq!(rep.res_total, 0.0, "{rep:?}");
        assert!(rep.wer_total >= rep.res_total, "{rep:?}");
        // The store directory gained one file per distinct program.
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 6);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn exploit_scale_rates_tainted_population_correctly() {
        let dir = tmp_dir("exploit");
        let spec = CorpusScaleSpec {
            classes: vec![GenClass::TaintedOverflow, GenClass::LocalOverflow],
            programs: 4,
            reports_per_program: 2,
            shards: 2,
            threads: 2,
            seed: 5,
            size: 0,
        };
        let rep = exploit_scale(&spec, &ResConfig::default(), &dir, &Recorder::disabled());
        assert_eq!(rep.reports, 8);
        assert_eq!(rep.res_total, 0.0, "{rep:?}");
        assert!(rep.heur_total > 0.0, "{rep:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn hardware_scale_flags_no_genuine_reports() {
        // Classes whose dumps the engine fully explains (deadlocks are
        // excluded by construction: a deadlock dump has no faulting
        // suffix to synthesize, so the §3.2 verdict flags it).
        let dir = tmp_dir("hw");
        let spec = CorpusScaleSpec {
            classes: vec![GenClass::DivByZero, GenClass::LocalOverflow],
            programs: 4,
            reports_per_program: 4,
            shards: 2,
            threads: 2,
            seed: 11,
            size: 0,
        };
        let rep = hardware_scale(&spec, &ResConfig::default(), &dir, &Recorder::disabled());
        assert_eq!(rep.reports, 16);
        assert_eq!(rep.false_positives, 0, "{rep:?}");
        assert!(rep.recall_total > 0.5, "{rep:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
