//! # mvm-json — std-only JSON serialization for the RES workspace
//!
//! A minimal replacement for the `serde`/`serde_json` pair, written
//! against this repo's actual needs so the workspace builds with **zero
//! registry dependencies**. It provides:
//!
//! * [`Json`] — an exact-integer JSON value tree,
//! * [`parse`] / [`to_string`] / [`to_string_pretty`] — a strict parser
//!   and `serde_json`-layout printers,
//! * [`ToJson`] / [`FromJson`] — the conversion trait pair,
//! * [`json_struct!`], [`json_newtype!`], [`json_enum!`] — declarative
//!   macros that stand in for `#[derive(Serialize, Deserialize)]`.
//!
//! # Wire-format compatibility
//!
//! The representation matches serde's defaults, so dumps produced by
//! the pre-hermetic build parse unchanged and the golden fixtures in
//! `tests/fixtures/` stay valid:
//!
//! | Rust shape            | JSON |
//! |-----------------------|------|
//! | struct                | object, fields in declaration order |
//! | newtype struct        | the inner value |
//! | unit enum variant     | `"Variant"` |
//! | newtype enum variant  | `{"Variant": inner}` |
//! | struct enum variant   | `{"Variant": {..}}` |
//! | `Option<T>`           | `null` or the value |
//! | `Vec<T>` / tuples     | array |
//! | `BTreeMap<u64, V>`    | object with decimal string keys |
//!
//! # Example
//!
//! ```
//! use mvm_json::{json_enum, json_struct, FromJson, ToJson};
//!
//! #[derive(Debug, Clone, PartialEq)]
//! enum Shape {
//!     Point,
//!     Circle { radius: u64 },
//! }
//! json_enum!(Shape { Point, Circle { radius: u64 } });
//!
//! #[derive(Debug, Clone, PartialEq)]
//! struct Scene {
//!     name: String,
//!     shapes: Vec<Shape>,
//! }
//! json_struct!(Scene { name, shapes });
//!
//! let scene = Scene {
//!     name: "s".into(),
//!     shapes: vec![Shape::Point, Shape::Circle { radius: 3 }],
//! };
//! let text = mvm_json::to_string(&scene);
//! assert_eq!(
//!     text,
//!     r#"{"name":"s","shapes":["Point",{"Circle":{"radius":3}}]}"#
//! );
//! assert_eq!(mvm_json::from_str::<Scene>(&text).unwrap(), scene);
//! ```

mod convert;
mod parse;
mod value;

pub use convert::{field, FromJson, JsonError, JsonKey, ToJson};
pub use parse::{parse, ParseError};
pub use value::Json;

/// Serializes a value to compact JSON.
pub fn to_string<T: ToJson + ?Sized>(value: &T) -> String {
    value.to_json().to_string_compact()
}

/// Serializes a value to pretty-printed JSON (2-space indent).
pub fn to_string_pretty<T: ToJson + ?Sized>(value: &T) -> String {
    value.to_json().to_string_pretty()
}

/// Parses JSON text into a value.
pub fn from_str<T: FromJson>(text: &str) -> Result<T, JsonError> {
    let v = parse(text)?;
    T::from_json(&v)
}

/// Implements [`ToJson`]/[`FromJson`] for a braced struct, serializing
/// the listed fields in order as a JSON object. The macro must be
/// invoked where the fields are visible (typically the defining
/// module), mirroring what a derive would see.
#[macro_export]
macro_rules! json_struct {
    ($ty:ident { $($field:ident),+ $(,)? }) => {
        impl $crate::ToJson for $ty {
            fn to_json(&self) -> $crate::Json {
                $crate::Json::Obj(vec![
                    $(
                        (
                            stringify!($field).to_string(),
                            $crate::ToJson::to_json(&self.$field),
                        ),
                    )+
                ])
            }
        }
        impl $crate::FromJson for $ty {
            fn from_json(v: &$crate::Json) -> Result<Self, $crate::JsonError> {
                let obj = v
                    .as_obj()
                    .ok_or_else(|| $crate::JsonError::expected(stringify!($ty), v))?;
                Ok($ty {
                    $($field: $crate::field(obj, stringify!($field), stringify!($ty))?,)+
                })
            }
        }
    };
}

/// Implements [`ToJson`]/[`FromJson`] for a single-field tuple struct
/// as the bare inner value (serde's newtype representation).
#[macro_export]
macro_rules! json_newtype {
    ($ty:ident) => {
        impl $crate::ToJson for $ty {
            fn to_json(&self) -> $crate::Json {
                $crate::ToJson::to_json(&self.0)
            }
        }
        impl $crate::FromJson for $ty {
            fn from_json(v: &$crate::Json) -> Result<Self, $crate::JsonError> {
                Ok($ty($crate::FromJson::from_json(v).map_err(
                    |e: $crate::JsonError| e.in_context(stringify!($ty)),
                )?))
            }
        }
    };
}

/// Implements [`ToJson`]/[`FromJson`] for an enum using serde's
/// externally-tagged representation. Unit, newtype (single payload
/// type), and struct variants may be mixed freely:
///
/// ```
/// use mvm_json::json_enum;
///
/// #[derive(Debug, Clone, PartialEq)]
/// enum E {
///     Unit,
///     Newtype(u64),
///     Struct { a: u64, b: Option<u8> },
/// }
/// json_enum!(E {
///     Unit,
///     Newtype(u64),
///     Struct { a: u64, b: Option<u8> },
/// });
///
/// assert_eq!(mvm_json::to_string(&E::Unit), r#""Unit""#);
/// assert_eq!(mvm_json::to_string(&E::Newtype(7)), r#"{"Newtype":7}"#);
/// assert_eq!(
///     mvm_json::to_string(&E::Struct { a: 1, b: None }),
///     r#"{"Struct":{"a":1,"b":null}}"#
/// );
/// ```
#[macro_export]
macro_rules! json_enum {
    ($ty:ident {
        $( $variant:ident
            $( ( $payload:ty ) )?
            $( { $($f:ident : $fty:ty),+ $(,)? } )?
        ),+ $(,)?
    }) => {
        impl $crate::ToJson for $ty {
            fn to_json(&self) -> $crate::Json {
                $(
                    $crate::json_enum!(
                        @to self, $ty, $variant
                        $( ( $payload ) )?
                        $( { $($f),+ } )?
                    );
                )+
                unreachable!(
                    "json_enum! for {} does not list every variant",
                    stringify!($ty)
                )
            }
        }
        impl $crate::FromJson for $ty {
            fn from_json(v: &$crate::Json) -> Result<Self, $crate::JsonError> {
                $(
                    $crate::json_enum!(
                        @from v, $ty, $variant
                        $( ( $payload ) )?
                        $( { $($f : $fty),+ } )?
                    );
                )+
                Err($crate::JsonError::msg(format!(
                    "expected a {} variant, got {}",
                    stringify!($ty),
                    v.to_string_compact()
                )))
            }
        }
    };

    // -- serialization arms (statement position) --
    (@to $self_:ident, $ty:ident, $variant:ident) => {
        if let $ty::$variant = $self_ {
            return $crate::Json::Str(stringify!($variant).to_string());
        }
    };
    (@to $self_:ident, $ty:ident, $variant:ident ( $payload:ty )) => {
        if let $ty::$variant(inner) = $self_ {
            return $crate::Json::Obj(vec![(
                stringify!($variant).to_string(),
                $crate::ToJson::to_json(inner),
            )]);
        }
    };
    (@to $self_:ident, $ty:ident, $variant:ident { $($f:ident),+ }) => {
        if let $ty::$variant { $($f),+ } = $self_ {
            return $crate::Json::Obj(vec![(
                stringify!($variant).to_string(),
                $crate::Json::Obj(vec![
                    $(
                        (
                            stringify!($f).to_string(),
                            $crate::ToJson::to_json($f),
                        ),
                    )+
                ]),
            )]);
        }
    };

    // -- deserialization arms (statement position) --
    (@from $v:ident, $ty:ident, $variant:ident) => {
        if $v.as_str() == Some(stringify!($variant)) {
            return Ok($ty::$variant);
        }
    };
    (@from $v:ident, $ty:ident, $variant:ident ( $payload:ty )) => {
        if let Some(inner) = $v.variant_payload(stringify!($variant)) {
            return Ok($ty::$variant(
                <$payload as $crate::FromJson>::from_json(inner).map_err(
                    |e| e.in_context(stringify!($variant)),
                )?,
            ));
        }
    };
    (@from $v:ident, $ty:ident, $variant:ident { $($f:ident : $fty:ty),+ }) => {
        if let Some(payload) = $v.variant_payload(stringify!($variant)) {
            let obj = payload.as_obj().ok_or_else(|| {
                $crate::JsonError::expected(stringify!($variant), payload)
            })?;
            return Ok($ty::$variant {
                $(
                    $f: $crate::field::<$fty>(
                        obj,
                        stringify!($f),
                        stringify!($variant),
                    )?,
                )+
            });
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, Copy, PartialEq)]
    struct Id(u32);
    json_newtype!(Id);

    #[derive(Debug, Clone, PartialEq)]
    enum Op {
        Nop,
        Push(u64),
        Load { id: Id, offset: i64 },
        Pair((u64, u64)),
    }
    json_enum!(Op {
        Nop,
        Push(u64),
        Load { id: Id, offset: i64 },
        Pair((u64, u64)),
    });

    #[derive(Debug, Clone, PartialEq)]
    struct Prog {
        name: String,
        ops: Vec<Op>,
        limit: Option<u64>,
    }
    json_struct!(Prog { name, ops, limit });

    fn sample() -> Prog {
        Prog {
            name: "p".into(),
            ops: vec![
                Op::Nop,
                Op::Push(u64::MAX),
                Op::Load {
                    id: Id(3),
                    offset: -8,
                },
                Op::Pair((1, 2)),
            ],
            limit: None,
        }
    }

    #[test]
    fn serde_compatible_wire_format() {
        assert_eq!(
            to_string(&sample()),
            r#"{"name":"p","ops":["Nop",{"Push":18446744073709551615},{"Load":{"id":3,"offset":-8}},{"Pair":[1,2]}],"limit":null}"#
        );
    }

    #[test]
    fn round_trip_compact_and_pretty() {
        let p = sample();
        assert_eq!(from_str::<Prog>(&to_string(&p)).unwrap(), p);
        assert_eq!(from_str::<Prog>(&to_string_pretty(&p)).unwrap(), p);
    }

    #[test]
    fn newtype_is_transparent() {
        assert_eq!(to_string(&Id(9)), "9");
        assert_eq!(from_str::<Id>("9").unwrap(), Id(9));
    }

    #[test]
    fn unknown_variant_is_an_error() {
        assert!(from_str::<Op>(r#""Halt""#).is_err());
        assert!(from_str::<Op>(r#"{"Pop":1}"#).is_err());
    }

    #[test]
    fn missing_field_is_an_error_but_missing_option_is_none() {
        let e = from_str::<Prog>(r#"{"name":"p","limit":null}"#).unwrap_err();
        assert!(e.message.contains("ops"), "{}", e.message);
        let p = from_str::<Prog>(r#"{"name":"p","ops":[]}"#).unwrap();
        assert_eq!(p.limit, None);
    }

    #[test]
    fn type_mismatch_reports_path() {
        let e = from_str::<Prog>(r#"{"name":"p","ops":[{"Push":"x"}],"limit":null}"#).unwrap_err();
        assert!(e.message.contains("Push"), "{}", e.message);
    }
}
