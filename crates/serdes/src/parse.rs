//! Recursive-descent JSON parser.
//!
//! Strict RFC 8259 input grammar: no comments, no trailing commas. The
//! parser reports byte offsets in errors and caps nesting so a
//! malicious dump file cannot blow the stack.

use crate::value::Json;

/// Maximum array/object nesting accepted by [`parse`].
const MAX_DEPTH: usize = 1024;

/// A parse failure with its byte offset in the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset where the error was detected.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document (leading/trailing whitespace allowed).
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            message: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str, v: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected '{kw}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("maximum nesting depth exceeded"));
        }
        match self.peek() {
            Some(b'n') => self.eat_keyword("null", Json::Null),
            Some(b't') => self.eat_keyword("true", Json::Bool(true)),
            Some(b'f') => self.eat_keyword("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(entries));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require a low surrogate.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(code)
                                } else {
                                    return Err(self.err("unpaired high surrogate"));
                                }
                            } else {
                                char::from_u32(hi)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid unicode escape")),
                            }
                            continue; // hex4 advanced pos already
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => {
                    return Err(self.err("raw control character in string"));
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is valid UTF-8 by
                    // construction from &str).
                    let start = self.pos;
                    let mut end = start + 1;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..end]).unwrap());
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated unicode escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid unicode escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid unicode escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        let negative = self.peek() == Some(b'-');
        if negative {
            self.pos += 1;
        }
        if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            return Err(self.err("expected digit"));
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("expected digit after decimal point"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("expected digit in exponent"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if negative {
                if let Ok(v) = text.parse::<i64>() {
                    return Ok(Json::I64(v));
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::U64(v));
            }
        }
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("false").unwrap(), Json::Bool(false));
        assert_eq!(parse("42").unwrap(), Json::U64(42));
        assert_eq!(parse("-7").unwrap(), Json::I64(-7));
        assert_eq!(parse("18446744073709551615").unwrap(), Json::U64(u64::MAX));
        assert_eq!(parse("1.5").unwrap(), Json::F64(1.5));
        assert_eq!(parse("1e3").unwrap(), Json::F64(1000.0));
        assert_eq!(parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_containers() {
        assert_eq!(
            parse(r#"[1, "a", {"k": [true]}]"#).unwrap(),
            Json::Arr(vec![
                Json::U64(1),
                Json::Str("a".into()),
                Json::Obj(vec![("k".into(), Json::Arr(vec![Json::Bool(true)]))]),
            ])
        );
        assert_eq!(parse("[]").unwrap(), Json::Arr(vec![]));
        assert_eq!(parse("{}").unwrap(), Json::Obj(vec![]));
    }

    #[test]
    fn parses_escapes_and_unicode() {
        assert_eq!(
            parse(r#""a\"b\\c\nd\u0041""#).unwrap(),
            Json::Str("a\"b\\c\ndA".into())
        );
        // Surrogate pair: U+1F600.
        assert_eq!(parse(r#""\ud83d\ude00""#).unwrap(), Json::Str("😀".into()));
        // Non-ASCII passthrough.
        assert_eq!(parse("\"héllo\"").unwrap(), Json::Str("héllo".into()));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "tru",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "[1 2]",
            "1 2",
            "\"abc",
            "{\"a\":1,}",
            "nul",
            "+1",
            "01a",
            "\"\\q\"",
            "[",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn depth_limit_enforced() {
        let deep = "[".repeat(3000) + &"]".repeat(3000);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn round_trips_through_printer() {
        let src = r#"{"a":1,"b":[null,true,"x\ny"],"c":{"d":18446744073709551615},"e":-3}"#;
        let v = parse(src).unwrap();
        assert_eq!(v.to_string_compact(), src);
        assert_eq!(parse(&v.to_string_pretty()).unwrap(), v);
    }
}
