//! The JSON value model.
//!
//! [`Json`] is the interchange tree every serializable type converts
//! through. Integers are kept exact — a coredump routinely carries
//! `u64::MAX`-adjacent addresses and register values, so numbers are
//! stored as `U64`/`I64` (with `F64` only for non-integral input) rather
//! than lossy doubles.

/// A parsed or constructed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (the common case for machine words).
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A non-integral number. Never produced by this repo's own types;
    /// accepted on input for interoperability.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Insertion order is preserved so serialization is
    /// deterministic and matches declaration order of struct fields.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(v) => Some(*v),
            Json::I64(v) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::I64(v) => Some(*v),
            Json::U64(v) if *v <= i64::MAX as u64 => Some(*v as i64),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::F64(v) => Some(*v),
            Json::U64(v) => Some(*v as f64),
            Json::I64(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The object entries, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(v) => Some(v),
            _ => None,
        }
    }

    /// Returns `true` for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Looks up an object member by key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_obj()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// The payload of an externally-tagged enum variant: `Some(inner)`
    /// when this is a single-entry object `{"name": inner}`.
    pub fn variant_payload(&self, name: &str) -> Option<&Json> {
        match self.as_obj() {
            Some([(k, v)]) if k == name => Some(v),
            _ => None,
        }
    }

    /// A short description of the value's type, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::U64(_) | Json::I64(_) | Json::F64(_) => "number",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }

    /// Serializes to a compact single-line string.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        write_compact(self, &mut out);
        out
    }

    /// Serializes with 2-space indentation (the `serde_json` pretty
    /// layout, kept so existing fixtures and docs remain recognizable).
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        write_pretty(self, 0, &mut out);
        out
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number_f64(v: f64, out: &mut String) {
    if v.is_finite() {
        // Match serde_json: integral floats keep a trailing ".0".
        if v == v.trunc() && v.abs() < 1e15 {
            out.push_str(&format!("{v:.1}"));
        } else {
            out.push_str(&format!("{v}"));
        }
    } else {
        // JSON has no Inf/NaN; serde_json emits null.
        out.push_str("null");
    }
}

fn write_compact(v: &Json, out: &mut String) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::U64(n) => out.push_str(&n.to_string()),
        Json::I64(n) => out.push_str(&n.to_string()),
        Json::F64(n) => write_number_f64(*n, out),
        Json::Str(s) => write_escaped(s, out),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Json::Obj(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_compact(val, out);
            }
            out.push('}');
        }
    }
}

fn indent(depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_pretty(v: &Json, depth: usize, out: &mut String) {
    match v {
        Json::Arr(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                indent(depth + 1, out);
                write_pretty(item, depth + 1, out);
            }
            out.push('\n');
            indent(depth, out);
            out.push(']');
        }
        Json::Obj(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                indent(depth + 1, out);
                write_escaped(k, out);
                out.push_str(": ");
                write_pretty(val, depth + 1, out);
            }
            out.push('\n');
            indent(depth, out);
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_layout() {
        let v = Json::Obj(vec![
            ("a".into(), Json::U64(1)),
            ("b".into(), Json::Arr(vec![Json::Null, Json::Bool(true)])),
        ]);
        assert_eq!(v.to_string_compact(), r#"{"a":1,"b":[null,true]}"#);
    }

    #[test]
    fn pretty_layout_matches_serde_json_style() {
        let v = Json::Obj(vec![
            ("a".into(), Json::U64(1)),
            ("b".into(), Json::Arr(vec![Json::U64(2)])),
            ("c".into(), Json::Obj(vec![])),
        ]);
        assert_eq!(
            v.to_string_pretty(),
            "{\n  \"a\": 1,\n  \"b\": [\n    2\n  ],\n  \"c\": {}\n}"
        );
    }

    #[test]
    fn escapes_control_and_quote_characters() {
        let v = Json::Str("a\"b\\c\nd\u{1}".into());
        assert_eq!(v.to_string_compact(), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn u64_max_survives_exactly() {
        assert_eq!(
            Json::U64(u64::MAX).to_string_compact(),
            "18446744073709551615"
        );
        assert_eq!(Json::I64(-42).to_string_compact(), "-42");
    }

    #[test]
    fn variant_payload_requires_single_key() {
        let one = Json::Obj(vec![("X".into(), Json::U64(1))]);
        assert_eq!(one.variant_payload("X"), Some(&Json::U64(1)));
        assert_eq!(one.variant_payload("Y"), None);
        let two = Json::Obj(vec![("X".into(), Json::U64(1)), ("Y".into(), Json::U64(2))]);
        assert_eq!(two.variant_payload("X"), None);
    }
}
