//! `ToJson` / `FromJson`: the trait pair replacing serde derives.
//!
//! Impls for std types mirror `serde_json`'s defaults exactly —
//! integers as numbers, `Option` as `null`-or-value, tuples and
//! sequences as arrays, integer-keyed maps as objects with decimal
//! string keys — so dumps written by the old serde build parse
//! unchanged.

use std::collections::{BTreeMap, VecDeque};

use crate::value::Json;

/// Conversion into the JSON tree.
pub trait ToJson {
    /// Builds the JSON representation of `self`.
    fn to_json(&self) -> Json;
}

/// Conversion out of the JSON tree.
pub trait FromJson: Sized {
    /// Reconstructs a value, reporting a path-annotated error on shape
    /// mismatch.
    fn from_json(v: &Json) -> Result<Self, JsonError>;
}

/// A deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong, innermost context first.
    pub message: String,
}

impl JsonError {
    /// An error stating that `what` was expected but `got` was found.
    pub fn expected(what: &str, got: &Json) -> Self {
        JsonError {
            message: format!("expected {what}, got {}", got.kind()),
        }
    }

    /// A free-form error.
    pub fn msg(message: impl Into<String>) -> Self {
        JsonError {
            message: message.into(),
        }
    }

    /// Wraps the error with an outer context (struct field, element
    /// index, map key).
    pub fn in_context(self, ctx: &str) -> Self {
        JsonError {
            message: format!("{ctx}: {}", self.message),
        }
    }
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for JsonError {}

impl From<crate::parse::ParseError> for JsonError {
    fn from(e: crate::parse::ParseError) -> Self {
        JsonError {
            message: e.to_string(),
        }
    }
}

/// Reads a struct field from the entries of an object. A missing field
/// deserializes as `null` (so `Option` fields tolerate omission, as
/// serde's `default` would), and any inner error is annotated with the
/// `Type.field` path.
pub fn field<T: FromJson>(obj: &[(String, Json)], key: &str, ty: &str) -> Result<T, JsonError> {
    let v = obj.iter().find(|(k, _)| k == key).map(|(_, v)| v);
    match v {
        Some(v) => T::from_json(v).map_err(|e| e.in_context(&format!("{ty}.{key}"))),
        None => T::from_json(&Json::Null)
            .map_err(|_| JsonError::msg(format!("{ty}: missing field `{key}`"))),
    }
}

// ---- primitives ------------------------------------------------------

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_bool().ok_or_else(|| JsonError::expected("bool", v))
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| JsonError::expected("string", v))
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_owned())
    }
}

macro_rules! impl_json_uint {
    ($($ty:ty),*) => {$(
        impl ToJson for $ty {
            fn to_json(&self) -> Json {
                Json::U64(*self as u64)
            }
        }
        impl FromJson for $ty {
            fn from_json(v: &Json) -> Result<Self, JsonError> {
                let raw = v
                    .as_u64()
                    .ok_or_else(|| JsonError::expected("unsigned integer", v))?;
                <$ty>::try_from(raw).map_err(|_| {
                    JsonError::msg(format!(
                        "integer {raw} out of range for {}",
                        stringify!($ty)
                    ))
                })
            }
        }
    )*};
}

impl_json_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_json_int {
    ($($ty:ty),*) => {$(
        impl ToJson for $ty {
            fn to_json(&self) -> Json {
                let v = *self as i64;
                if v >= 0 {
                    Json::U64(v as u64)
                } else {
                    Json::I64(v)
                }
            }
        }
        impl FromJson for $ty {
            fn from_json(v: &Json) -> Result<Self, JsonError> {
                let raw = v
                    .as_i64()
                    .ok_or_else(|| JsonError::expected("integer", v))?;
                <$ty>::try_from(raw).map_err(|_| {
                    JsonError::msg(format!(
                        "integer {raw} out of range for {}",
                        stringify!($ty)
                    ))
                })
            }
        }
    )*};
}

impl_json_int!(i8, i16, i32, i64, isize);

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::F64(*self)
    }
}

impl FromJson for f64 {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_f64().ok_or_else(|| JsonError::expected("number", v))
    }
}

// ---- containers ------------------------------------------------------

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        if v.is_null() {
            Ok(None)
        } else {
            T::from_json(v).map(Some)
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let items = v.as_arr().ok_or_else(|| JsonError::expected("array", v))?;
        items
            .iter()
            .enumerate()
            .map(|(i, item)| T::from_json(item).map_err(|e| e.in_context(&format!("[{i}]"))))
            .collect()
    }
}

impl<T: ToJson> ToJson for VecDeque<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for VecDeque<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Vec::<T>::from_json(v).map(VecDeque::from)
    }
}

impl<T: ToJson> ToJson for &T {
    fn to_json(&self) -> Json {
        (*self).to_json()
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: FromJson, B: FromJson> FromJson for (A, B) {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v.as_arr() {
            Some([a, b]) => Ok((
                A::from_json(a).map_err(|e| e.in_context("[0]"))?,
                B::from_json(b).map_err(|e| e.in_context("[1]"))?,
            )),
            _ => Err(JsonError::expected("2-element array", v)),
        }
    }
}

impl<A: ToJson, B: ToJson, C: ToJson> ToJson for (A, B, C) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json(), self.2.to_json()])
    }
}

impl<A: FromJson, B: FromJson, C: FromJson> FromJson for (A, B, C) {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v.as_arr() {
            Some([a, b, c]) => Ok((
                A::from_json(a).map_err(|e| e.in_context("[0]"))?,
                B::from_json(b).map_err(|e| e.in_context("[1]"))?,
                C::from_json(c).map_err(|e| e.in_context("[2]"))?,
            )),
            _ => Err(JsonError::expected("3-element array", v)),
        }
    }
}

/// Map keys, which JSON forces to be strings. Integer keys use their
/// decimal representation (serde_json's behavior for integer-keyed
/// maps).
pub trait JsonKey: Ord + Sized {
    /// The key as an object-member name.
    fn to_key(&self) -> String;
    /// Parses an object-member name back into the key.
    fn from_key(s: &str) -> Result<Self, JsonError>;
}

macro_rules! impl_json_key_uint {
    ($($ty:ty),*) => {$(
        impl JsonKey for $ty {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(s: &str) -> Result<Self, JsonError> {
                s.parse().map_err(|_| {
                    JsonError::msg(format!(
                        "invalid {} map key: {s:?}",
                        stringify!($ty)
                    ))
                })
            }
        }
    )*};
}

impl_json_key_uint!(u8, u16, u32, u64, usize);

impl JsonKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(s: &str) -> Result<Self, JsonError> {
        Ok(s.to_owned())
    }
}

impl<K: JsonKey, V: ToJson> ToJson for BTreeMap<K, V> {
    fn to_json(&self) -> Json {
        Json::Obj(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_json()))
                .collect(),
        )
    }
}

impl<K: JsonKey, V: FromJson> FromJson for BTreeMap<K, V> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let entries = v.as_obj().ok_or_else(|| JsonError::expected("object", v))?;
        entries
            .iter()
            .map(|(k, val)| {
                Ok((
                    K::from_key(k)?,
                    V::from_json(val).map_err(|e| e.in_context(&format!("[{k:?}]")))?,
                ))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_round_trips() {
        assert_eq!(u64::from_json(&u64::MAX.to_json()).unwrap(), u64::MAX);
        assert_eq!(u8::from_json(&Json::U64(255)).unwrap(), 255);
        assert!(u8::from_json(&Json::U64(256)).is_err());
        assert_eq!(i64::from_json(&Json::I64(-5)).unwrap(), -5);
        assert_eq!(i64::from_json(&Json::U64(5)).unwrap(), 5);
        assert!(bool::from_json(&Json::U64(1)).is_err());
        assert_eq!(String::from_json(&Json::Str("x".into())).unwrap(), "x");
    }

    #[test]
    fn negative_i64_to_json_is_negative_number() {
        assert_eq!((-3i64).to_json(), Json::I64(-3));
        assert_eq!(3i64.to_json(), Json::U64(3));
    }

    #[test]
    fn option_uses_null() {
        assert_eq!(Option::<u64>::None.to_json(), Json::Null);
        assert_eq!(Some(4u64).to_json(), Json::U64(4));
        assert_eq!(Option::<u64>::from_json(&Json::Null).unwrap(), None);
        assert_eq!(Option::<u64>::from_json(&Json::U64(4)).unwrap(), Some(4));
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u64, 2, 3];
        assert_eq!(Vec::<u64>::from_json(&v.to_json()).unwrap(), v);
        let d: VecDeque<u8> = VecDeque::from(vec![9, 8]);
        assert_eq!(VecDeque::<u8>::from_json(&d.to_json()).unwrap(), d);
        let t = (1u64, "a".to_string(), -2i64);
        assert_eq!(<(u64, String, i64)>::from_json(&t.to_json()).unwrap(), t);
    }

    #[test]
    fn integer_keyed_maps_use_decimal_string_keys() {
        let mut m = BTreeMap::new();
        m.insert(4096u64, vec![1u8, 2]);
        let j = m.to_json();
        assert_eq!(j.to_string_compact(), r#"{"4096":[1,2]}"#);
        assert_eq!(BTreeMap::<u64, Vec<u8>>::from_json(&j).unwrap(), m);
    }

    #[test]
    fn errors_carry_paths() {
        let j = crate::parse::parse(r#"{"a": [1, "x"]}"#).unwrap();
        let e = field::<Vec<u64>>(j.as_obj().unwrap(), "a", "T").unwrap_err();
        assert!(e.message.contains("T.a"), "{}", e.message);
        assert!(e.message.contains("[1]"), "{}", e.message);
    }
}
