//! Focused tests of the engine's internals: the hypothesis executor's
//! havoc/restart discipline, breadcrumb pruning, the debugging aids, and
//! the ablation modes.

use mvm_core::Coredump;
use mvm_isa::asm::assemble;
use mvm_isa::{Loc, Program, Reg};
use mvm_machine::{Fault, InputSource, Machine, MachineConfig, Outcome};
use mvm_symbolic::SolverSession;
use res_core::blockexec::{run_hypothesis, EndPoint, HypSpec};
use res_core::debugaid;
use res_core::{replay_suffix, ResConfig, ResEngine, Snapshot, SymCtx, Verdict};

fn crash(src: &str, config: MachineConfig) -> (Program, Coredump) {
    let p = assemble(src).unwrap();
    let mut m = Machine::new(p.clone(), config);
    let o = m.run();
    assert!(matches!(o, Outcome::Faulted { .. }), "{o:?}");
    (p, Coredump::capture(&m))
}

/// Direct `run_hypothesis` exercise: the partial range of a faulting
/// block, with a read-before-write conflict that forces the restart
/// discipline (`load` then `store` to the same cell).
#[test]
fn hypothesis_executor_handles_read_then_write() {
    let (p, d) = crash(
        r#"
        global g 8 = 5
        func main() {
        entry:
            addr r0, g
            load r1, [r0]
            add r1, r1, 1
            store r1, [r0]
            mov r2, 0
            divu r3, 1, r2
            halt
        }
        "#,
        MachineConfig::default(),
    );
    let snap = Snapshot::from_coredump(&d);
    let mut ctx = SymCtx::new();
    let solver = SolverSession::new();
    let pc = d.fault_pc();
    let spec = HypSpec {
        program: &p,
        tid: 0,
        frame_depth: 0,
        start: Loc::block_start(pc.func, pc.block),
        end: EndPoint {
            depth_delta: 0,
            loc: pc,
        },
        spost_regs: snap.thread(0).unwrap().frames[0].regs.clone(),
        callee_entry_regs: None,
        callee_ret_reg: None,
        dump_allocs: &d.heap_allocs,
        later_allocs: 0,
        base_constraints: &[],
        max_steps: 128,
        skip_compat: false,
    };
    let outcome = run_hypothesis(&spec, &snap, &mut ctx, &solver, 0).expect("feasible");
    // The store's cell is havocked in Spre.
    assert_eq!(outcome.spre_cells.len(), 1);
    let g_addr = mvm_isa::layout::GLOBAL_BASE;
    assert_eq!(outcome.spre_cells[0].0, g_addr);
    // The constraints pin the havocked pre-value: σ + 1 == 6 → σ = 5.
    let exprs: Vec<_> = outcome.constraints.iter().map(|t| t.expr.clone()).collect();
    let model = solver.solve(&exprs).expect("sat");
    let sym = outcome.spre_cells[0].2.as_sym().unwrap();
    assert_eq!(model.get(sym), Some(5));
    // Read and write sets include the global.
    assert!(outcome.reads.iter().any(|&(a, _)| a == g_addr));
    assert!(outcome.writes.iter().any(|&(a, _)| a == g_addr));
}

/// The executor rejects a hypothesis whose branch cannot reach the end
/// block.
#[test]
fn hypothesis_executor_rejects_unreachable_end() {
    let (p, d) = crash(
        r#"
        func main() {
        entry:
            mov r0, 1
            br r0, a, b
        a:
            jmp c
        b:
            jmp c
        c:
            mov r1, 0
            divu r2, 1, r1
            halt
        }
        "#,
        MachineConfig::default(),
    );
    let snap = Snapshot::from_coredump(&d);
    let mut ctx = SymCtx::new();
    let solver = SolverSession::new();
    let main = p.func_by_name("main").unwrap();
    let a = p.func(main).block_by_label("a").unwrap();
    // Hypothesis: block `a` executed immediately before... block `b`?
    // Structurally impossible (a jumps to c).
    let b = p.func(main).block_by_label("b").unwrap();
    let spec = HypSpec {
        program: &p,
        tid: 0,
        frame_depth: 0,
        start: Loc::block_start(main, a),
        end: EndPoint {
            depth_delta: 0,
            loc: Loc::block_start(main, b),
        },
        spost_regs: snap.thread(0).unwrap().frames[0].regs.clone(),
        callee_entry_regs: None,
        callee_ret_reg: None,
        dump_allocs: &d.heap_allocs,
        later_allocs: 0,
        base_constraints: &[],
        max_steps: 128,
        skip_compat: false,
    };
    assert!(run_hypothesis(&spec, &snap, &mut ctx, &solver, 0).is_err());
}

/// Error-log breadcrumbs: values logged inside the suffix must match the
/// dump's retained log, and mismatching paths are pruned.
#[test]
fn error_log_breadcrumbs_prune_and_constrain() {
    let src = r#"
        func main() {
        entry:
            input r0, net
            remu r1, r0, 2
            br r1, odd, even
        odd:
            output 111, log
            jmp boom
        even:
            output 222, log
            jmp boom
        boom:
            mov r2, 0
            divu r3, 1, r2
            halt
        }
    "#;
    let (p, d) = crash(
        src,
        MachineConfig {
            input: InputSource::Fixed(3), // odd → logs 111
            ..MachineConfig::default()
        },
    );
    assert_eq!(d.error_log.len(), 1);
    assert_eq!(d.error_log[0].value, 111);
    let engine = ResEngine::new(
        &p,
        ResConfig::builder()
            .use_error_log(true)
            .max_suffixes(8)
            .build(),
    );
    let result = engine.synthesize(&d);
    assert_eq!(result.verdict, Verdict::SuffixFound);
    let main = p.func_by_name("main").unwrap();
    let even = p.func(main).block_by_label("even").unwrap();
    // No surviving suffix may pass through `even` (it would have logged
    // 222).
    for sfx in &result.suffixes {
        assert!(
            !sfx.steps.iter().any(|s| s.start.block == even),
            "suffix passed through the wrong log branch"
        );
    }
    assert!(result.stats.rejected_log > 0, "{:?}", result.stats);
}

/// LBR breadcrumbs reject candidates whose transfers contradict the
/// recorded ring.
#[test]
fn lbr_prunes_wrong_predecessors() {
    let src = r#"
        global which 8 = 1
        func main() {
        entry:
            addr r0, which
            load r1, [r0]
            store 0, [r0]
            br r1, via_a, via_b
        via_a:
            nop
            jmp boom
        via_b:
            nop
            jmp boom
        boom:
            mov r2, 0
            divu r3, 1, r2
            halt
        }
    "#;
    // `which` is consumed and zeroed, so the dump memory cannot
    // disambiguate the branch — only the LBR can.
    let (p, d) = crash(src, MachineConfig::default());
    assert!(!d.lbr.is_empty());
    let without = ResEngine::new(
        &p,
        ResConfig::builder().use_lbr(false).max_suffixes(8).build(),
    )
    .synthesize(&d);
    let with = ResEngine::new(
        &p,
        ResConfig::builder().use_lbr(true).max_suffixes(8).build(),
    )
    .synthesize(&d);
    let via_b = p
        .func(p.func_by_name("main").unwrap())
        .block_by_label("via_b")
        .unwrap();
    // Without hints, some suffix wanders through via_b (both feasible);
    // with the LBR, none does.
    assert!(with
        .suffixes
        .iter()
        .all(|s| !s.steps.iter().any(|st| st.start.block == via_b)));
    assert!(with.stats.rejected_lbr > 0 || without.suffixes.len() > with.suffixes.len());
}

/// §3.3 `state_at`: replay to a PC and inspect registers and memory.
#[test]
fn state_at_answers_hypothesis_queries() {
    let (p, d) = crash(
        r#"
        global g 8
        func main() {
        entry:
            addr r0, g
            mov r1, 41
            store r1, [r0]
            jmp next
        next:
            add r1, r1, 1
            mov r2, 0
            divu r3, r1, r2
            halt
        }
        "#,
        MachineConfig::default(),
    );
    let engine = ResEngine::new(&p, ResConfig::default());
    let result = engine.synthesize(&d);
    let sfx = result
        .suffixes
        .iter()
        .find(|s| replay_suffix(&p, &d, s).reproduced)
        .expect("reproducing suffix");
    let main = p.func_by_name("main").unwrap();
    let next = p.func(main).block_by_label("next").unwrap();
    // "What was the state when execution reached `next`?"
    let g_addr = mvm_isa::layout::GLOBAL_BASE;
    let (regs, mem) = debugaid::state_at(&p, &d, sfx, 0, Loc::block_start(main, next), &[g_addr])
        .expect("pc reached");
    assert_eq!(regs[Reg(1).index()], 41);
    assert_eq!(mem, vec![(g_addr, 41)]);
    // A PC the suffix never visits yields None.
    assert!(debugaid::state_at(&p, &d, sfx, 7, Loc::block_start(main, next), &[]).is_none());
}

/// Preemption query over a racy suffix.
#[test]
fn preemption_query_detects_interleaving() {
    let src = r#"
        global c 8
        func w(1) {
        entry:
            load r1, [r0]
            add r1, r1, 1
            store r1, [r0]
            halt
        }
        func main() {
        entry:
            addr r0, c
            spawn r1, w, r0
            jmp readback
        readback:
            load r2, [r0]
            jmp check
        check:
            load r3, [r0]
            eq r4, r2, 0
            ne r5, r3, 0
            and r6, r4, r5
            eq r7, r6, 0
            assert r7, "value changed between reads"
            halt
        }
    "#;
    // The assertion fires only when the first read saw 0 and the second
    // saw non-zero: the worker's write landed strictly between them.
    let (p, d) = (0..500)
        .find_map(|seed| {
            let p = assemble(src).unwrap();
            let mut m = Machine::new(
                p.clone(),
                MachineConfig {
                    sched: mvm_machine::SchedPolicy::Random {
                        seed,
                        switch_per_mille: 500,
                    },
                    ..MachineConfig::default()
                },
            );
            matches!(m.run(), Outcome::Faulted { .. }).then(|| (p, Coredump::capture(&m)))
        })
        .expect("race manifests");
    let engine = ResEngine::new(&p, ResConfig::default());
    let result = engine.synthesize(&d);
    for sfx in &result.suffixes {
        if !replay_suffix(&p, &d, sfx).reproduced {
            continue;
        }
        if sfx.threads().len() >= 2 {
            // The victim (main) touched `c` in readback and check with
            // the worker scheduled in between.
            let g = mvm_isa::layout::GLOBAL_BASE;
            if debugaid::was_preempted_between_accesses(sfx, 0, g) {
                return; // Query answered affirmatively, as expected.
            }
        }
    }
    panic!("no suffix exhibited the preemption");
}

/// The A2 minidump mode is strictly weaker: on the Figure-1 style
/// program it cannot discard the wrong predecessor.
#[test]
fn opaque_memory_loses_disambiguation() {
    let (p, d) = crash(
        r#"
        global x 8
        global sel 8 = 1
        func main() {
        entry:
            addr r0, sel
            load r1, [r0]
            addr r2, x
            br r1, p1, p2
        p1:
            store 1, [r2]
            jmp m
        p2:
            store 2, [r2]
            jmp m
        m:
            mov r3, 0
            divu r4, 1, r3
            halt
        }
        "#,
        MachineConfig::default(),
    );
    let full = ResEngine::new(&p, ResConfig::builder().max_suffixes(8).build()).synthesize(&d);
    let opaque = ResEngine::new(
        &p,
        ResConfig::builder()
            .opaque_memory(true)
            .max_suffixes(8)
            .build(),
    )
    .synthesize(&d);
    let main = p.func_by_name("main").unwrap();
    let p2 = p.func(main).block_by_label("p2").unwrap();
    let full_via_p2 = full
        .suffixes
        .iter()
        .filter(|s| s.steps.iter().any(|st| st.start.block == p2))
        .count();
    let opaque_via_p2 = opaque
        .suffixes
        .iter()
        .filter(|s| s.steps.iter().any(|st| st.start.block == p2))
        .count();
    assert_eq!(full_via_p2, 0, "the full dump discards p2");
    assert!(opaque_via_p2 > 0, "minidump mode cannot discard p2");
    assert!(opaque.suffixes.iter().all(|s| s.approximate));
}

/// Locks inside the suffix: the synthesized window re-acquires and
/// re-releases, and replay still reproduces byte-for-byte.
#[test]
fn lock_protected_suffix_replays() {
    let (p, d) = crash(
        r#"
        global m 8
        global v 8
        func main() {
        entry:
            addr r0, m
            addr r1, v
            lock r0
            load r2, [r1]
            add r2, r2, 7
            store r2, [r1]
            unlock r0
            jmp check
        check:
            load r3, [r1]
            remu r4, r3, 7
            divu r5, 1, r4
            halt
        }
        "#,
        MachineConfig::default(),
    );
    assert_eq!(d.fault, Fault::DivByZero);
    let engine = ResEngine::new(&p, ResConfig::default());
    let result = engine.synthesize(&d);
    assert_eq!(result.verdict, Verdict::SuffixFound);
    let ok = result
        .suffixes
        .iter()
        .any(|s| replay_suffix(&p, &d, s).reproduced);
    assert!(ok);
}

/// Multi-level call stacks: fault three frames deep, reversed through
/// two function entries using the dump's stack.
#[test]
fn deep_call_stack_reversal() {
    let (p, d) = crash(
        r#"
        func inner(1) {
        entry:
            divu r1, 100, r0
            ret r1
        }
        func middle(1) {
        entry:
            sub r1, r0, 4
            call r2 = inner(r1), done
        done:
            ret r2
        }
        func main() {
        entry:
            mov r0, 4
            call r1 = middle(r0), cont
        cont:
            halt
        }
        "#,
        MachineConfig::default(),
    );
    assert_eq!(d.call_stack().len(), 3);
    let engine = ResEngine::new(&p, ResConfig::default());
    let result = engine.synthesize(&d);
    assert_eq!(result.verdict, Verdict::SuffixFound, "{:?}", result.stats);
    let sfx = result
        .suffixes
        .iter()
        .find(|s| replay_suffix(&p, &d, s).reproduced)
        .expect("reproducing suffix");
    // The suffix spans at least two frames' worth of steps.
    assert!(sfx.len() >= 2);
}
