//! End-to-end tests: crash a program, capture the coredump, synthesize
//! a suffix with RES, replay it, and check the failure reproduces —
//! requirements (1)–(6) of paper §2.

use mvm_core::Coredump;
use mvm_isa::asm::assemble;
use mvm_isa::Program;
use mvm_machine::{Fault, Machine, MachineConfig, Outcome, SchedPolicy};
use res_core::{
    analyze_root_cause,
    hardware_verdict,
    replay_suffix,
    HwVerdict,
    ResConfig,
    ResEngine,
    RootCause,
    Verdict, //
};

fn crash(src: &str) -> (Program, Coredump) {
    crash_with(src, MachineConfig::default())
}

fn crash_with(src: &str, config: MachineConfig) -> (Program, Coredump) {
    let p = assemble(src).unwrap();
    let mut m = Machine::new(p.clone(), config);
    let o = m.run();
    assert!(
        matches!(o, Outcome::Faulted { .. }),
        "expected fault, got {o:?}"
    );
    (p, Coredump::capture(&m))
}

fn synthesize_and_replay(
    p: &Program,
    d: &Coredump,
    config: ResConfig,
) -> res_core::SynthesisResult {
    let engine = ResEngine::new(p, config);
    let result = engine.synthesize(d);
    assert_eq!(
        result.verdict,
        Verdict::SuffixFound,
        "stats: {:?}",
        result.stats
    );
    let mut reproduced = false;
    for sfx in &result.suffixes {
        let rep = replay_suffix(p, d, sfx);
        if rep.reproduced {
            reproduced = true;
            break;
        }
    }
    assert!(
        reproduced,
        "no suffix replayed to the coredump; first replay: {:?}",
        result.suffixes.first().map(|s| replay_suffix(p, d, s))
    );
    result
}

#[test]
fn straight_line_div_by_zero() {
    let (p, d) = crash(
        r#"
        func main() {
        entry:
            mov r0, 10
            sub r1, r0, 10
            divu r2, 100, r1
            halt
        }
        "#,
    );
    assert_eq!(d.fault, Fault::DivByZero);
    synthesize_and_replay(&p, &d, ResConfig::default());
}

#[test]
fn assert_failure_multi_block() {
    let (p, d) = crash(
        r#"
        global flag 8
        func main() {
        entry:
            addr r0, flag
            store 3, [r0]
            jmp check
        check:
            load r1, [r0]
            eq r2, r1, 0
            assert r2, "flag must be zero"
            halt
        }
        "#,
    );
    let result = synthesize_and_replay(&p, &d, ResConfig::default());
    // The suffix must reach back through the store that set the flag.
    let sfx = &result.suffixes[0];
    assert!(sfx.len() >= 2, "suffix too short: {} steps", sfx.len());
}

#[test]
fn figure1_predecessor_disambiguation() {
    // Paper Figure 1: two predecessors write x; only the one matching
    // the dump's x survives. Block `pred1` sets x=1, `pred2` sets x=2;
    // the dump has x=1, so the synthesized suffix must pass through
    // pred1.
    let (p, d) = crash(
        r#"
        global x 8
        global sel 8 = 1
        func main() {
        entry:
            addr r3, sel
            load r4, [r3]
            addr r5, x
            br r4, pred1, pred2
        pred1:
            store 1, [r5]
            jmp merge
        pred2:
            store 2, [r5]
            jmp merge
        merge:
            load r6, [r5]
            mov r7, 0
            divu r8, r6, r7
            halt
        }
        "#,
    );
    let result = synthesize_and_replay(&p, &d, ResConfig::default());
    let main = p.func_by_name("main").unwrap();
    let pred1 = p.func(main).block_by_label("pred1").unwrap();
    let pred2 = p.func(main).block_by_label("pred2").unwrap();
    let sfx = &result.suffixes[0];
    let blocks: Vec<_> = sfx.steps.iter().map(|s| s.start.block).collect();
    assert!(
        blocks.contains(&pred1),
        "suffix must pass through pred1: {blocks:?}"
    );
    assert!(
        !blocks.contains(&pred2),
        "suffix must not pass through pred2: {blocks:?}"
    );
}

#[test]
fn loop_unrolls_backward() {
    // A loop that counts down and then faults; the suffix unrolls a few
    // iterations backward.
    let (p, d) = crash(
        r#"
        global n 8 = 6
        func main() {
        entry:
            addr r0, n
            jmp loop
        loop:
            load r1, [r0]
            eq r2, r1, 0
            br r2, boom, dec
        dec:
            sub r1, r1, 1
            store r1, [r0]
            jmp loop
        boom:
            mov r3, 0
            divu r4, 1, r3
            halt
        }
        "#,
    );
    let result = synthesize_and_replay(&p, &d, ResConfig::default());
    assert!(result.suffixes[0].len() >= 3);
}

#[test]
fn call_reexecution_macro_step() {
    // The suffix crosses a *completed* call: the callee is re-executed
    // in full (paper §6's strategy for hard constructs).
    let (p, d) = crash(
        r#"
        global out 8
        func double(1) {
        entry:
            add r1, r0, r0
            ret r1
        }
        func main() {
        entry:
            mov r0, 21
            call r1 = double(r0), cont
        cont:
            addr r2, out
            store r1, [r2]
            load r3, [r2]
            eq r4, r3, 0
            assert r4, "out must stay zero"
            halt
        }
        "#,
    );
    synthesize_and_replay(&p, &d, ResConfig::default());
}

#[test]
fn fault_inside_callee_uses_dump_stack() {
    // The fault is inside a callee; backward synthesis crosses the
    // function entry using the dump's call stack (un-call step).
    let (p, d) = crash(
        r#"
        func divide(2) {
        entry:
            divu r2, r0, r1
            ret r2
        }
        func main() {
        entry:
            mov r0, 100
            mov r1, 0
            call r2 = divide(r0, r1), cont
        cont:
            halt
        }
        "#,
    );
    assert_eq!(d.call_stack().len(), 2);
    synthesize_and_replay(&p, &d, ResConfig::default());
}

#[test]
fn heap_overflow_with_alloc_in_suffix() {
    let (p, d) = crash(
        r#"
        func main() {
        entry:
            alloc r0, 16
            mov r1, 24
            add r2, r0, r1
            store 7, [r2]
            halt
        }
        "#,
    );
    assert!(matches!(d.fault, Fault::HeapOverflow { .. }));
    let result = synthesize_and_replay(&p, &d, ResConfig::default());
    let rc = analyze_root_cause(&p, &d, &result.suffixes[0]);
    assert!(matches!(rc, RootCause::BufferOverflow { .. }), "{rc:?}");
}

#[test]
fn use_after_free_root_cause() {
    let (p, d) = crash(
        r#"
        func main() {
        entry:
            alloc r0, 16
            store 5, [r0]
            free r0
            jmp use
        use:
            load r1, [r0]
            halt
        }
        "#,
    );
    assert!(matches!(d.fault, Fault::UseAfterFree { .. }));
    let result = synthesize_and_replay(&p, &d, ResConfig::default());
    let rc = analyze_root_cause(&p, &d, &result.suffixes[0]);
    match rc {
        RootCause::UseAfterFree { free_loc, .. } => {
            assert!(free_loc.is_some(), "free site must be inside the window");
        }
        other => panic!("expected UAF root cause, got {other:?}"),
    }
}

#[test]
fn input_inference() {
    // The crash depends on an external input; RES infers a value that
    // reproduces it (the input becomes an unconstrained symbol, §2.4).
    let (p, d) = crash_with(
        r#"
        func main() {
        entry:
            input r0, net
            remu r1, r0, 7
            eq r2, r1, 3
            br r2, boom, fine
        boom:
            mov r3, 0
            divu r4, 1, r3
            halt
        fine:
            halt
        }
        "#,
        MachineConfig {
            input: mvm_machine::InputSource::Fixed(10),
            ..MachineConfig::default()
        },
    );
    let result = synthesize_and_replay(&p, &d, ResConfig::default());
    let sfx = &result.suffixes[0];
    let vals = &sfx.inputs[&0];
    assert_eq!(vals.len(), 1);
    assert_eq!(vals[0] % 7, 3, "inferred input must satisfy the crash path");
}

#[test]
fn data_race_found_across_threads() {
    // Thread 1 sets the flag without synchronization; main asserts it is
    // still zero. The suffix must include the racing write, and the
    // root-cause analyzer must classify it as a race.
    let src = r#"
        global flag 8
        global ready 8
        func worker(1) {
        entry:
            store 1, [r0]
            halt
        }
        func main() {
        entry:
            addr r0, flag
            spawn r1, worker, r0
            jmp wait
        wait:
            load r2, [r0]
            eq r3, r2, 0
            assert r3, "flag overwritten concurrently"
            jmp wait
        }
    "#;
    let (p, d) = crash_with(
        src,
        MachineConfig {
            sched: SchedPolicy::RoundRobin { quantum: 3 },
            ..MachineConfig::default()
        },
    );
    assert!(matches!(d.fault, Fault::AssertFailed { .. }));
    let result = synthesize_and_replay(&p, &d, ResConfig::default());
    // At least one replaying suffix must contain the racing write.
    let mut found_race = false;
    for sfx in &result.suffixes {
        if !replay_suffix(&p, &d, sfx).reproduced {
            continue;
        }
        let rc = analyze_root_cause(&p, &d, sfx);
        if rc.is_concurrency() {
            found_race = true;
            break;
        }
    }
    assert!(found_race, "no suffix exposed the racing write");
}

#[test]
fn hardware_register_corruption_detected() {
    let (p, mut d) = crash(
        r#"
        func main() {
        entry:
            mov r0, 5
            add r1, r0, 1
            eq r2, r1, 0
            assert r2, "r1 must be zero"
            halt
        }
        "#,
    );
    // Sanity: the genuine dump is a software bug.
    assert_eq!(
        hardware_verdict(&p, &d, &ResConfig::default()),
        HwVerdict::SoftwareBug
    );
    // Corrupt the computed register r1 in the dump: now no execution
    // explains it (the paper's miscomputed-addition example).
    mvm_core::corrupt_register_at(&mut d, 0, mvm_isa::Reg(1), 0xdead_0000);
    let v = hardware_verdict(&p, &d, &ResConfig::default());
    match v {
        HwVerdict::HardwareSuspected { kind, .. } => {
            assert_eq!(
                kind,
                res_core::hwerr::HwKind::CpuError {
                    reg: mvm_isa::Reg(1)
                }
            );
        }
        other => panic!("expected hardware verdict, got {other:?}"),
    }
}

#[test]
fn hardware_memory_bit_flip_detected() {
    let (p, mut d) = crash(
        r#"
        global v 8
        func main() {
        entry:
            addr r0, v
            store 4, [r0]
            jmp next
        next:
            load r1, [r0]
            eq r2, r1, 0
            assert r2, "v must be zero"
            halt
        }
        "#,
    );
    assert_eq!(
        hardware_verdict(&p, &d, &ResConfig::default()),
        HwVerdict::SoftwareBug
    );
    // Flip a bit in the stored word: all paths write 4, but the dump
    // says 5 — the paper's memory-error example.
    let g = mvm_isa::layout::GLOBAL_BASE;
    mvm_core::flip_memory_bit_at(&mut d, g, 0);
    let v = hardware_verdict(&p, &d, &ResConfig::default());
    match v {
        HwVerdict::HardwareSuspected { kind, .. } => {
            assert_eq!(kind, res_core::hwerr::HwKind::MemoryError { addr: g });
        }
        other => panic!("expected hardware verdict, got {other:?}"),
    }
}

#[test]
fn deadlock_reproduced() {
    let (p, d) = crash(
        r#"
        global m1 8
        global m2 8
        func worker(1) {
        entry:
            addr r1, m2
            lock r1
            addr r2, m1
            lock r2
            halt
        }
        func main() {
        entry:
            addr r1, m1
            lock r1
            spawn r3, worker, 0
            addr r2, m2
            lock r2
            halt
        }
        "#,
    );
    assert!(matches!(d.fault, Fault::Deadlock { .. }));
    let result = synthesize_and_replay(&p, &d, ResConfig::default());
    let rc = analyze_root_cause(&p, &d, &result.suffixes[0]);
    assert!(matches!(rc, RootCause::Deadlock { .. }), "{rc:?}");
}

#[test]
fn replay_is_deterministic() {
    let (p, d) = crash(
        r#"
        global g 8 = 9
        func main() {
        entry:
            addr r0, g
            load r1, [r0]
            sub r1, r1, 9
            divu r2, 4, r1
            halt
        }
        "#,
    );
    let engine = ResEngine::new(&p, ResConfig::default());
    let result = engine.synthesize(&d);
    let sfx = &result.suffixes[0];
    for _ in 0..5 {
        let rep = replay_suffix(&p, &d, sfx);
        assert!(rep.reproduced, "{rep:?}");
        assert_eq!(rep.replay_fault, Some(Fault::DivByZero));
    }
}
