//! Synthesized execution suffixes — the engine's output artifact
//! (paper §2.1: "a set of execution traces Ti ... corresponding to each
//! instruction trace, a partial memory image Mi").

use std::collections::BTreeMap;

use mvm_isa::{InputKind, Loc, Reg, Width};
use mvm_machine::ThreadId;
use mvm_symbolic::{Model, SymId};

use crate::blockexec::{EndPoint, Tag, Tagged, Transfer};

/// One backward-discovered step of the suffix (a block-granular range
/// executed by one thread).
#[derive(Debug, Clone)]
pub struct SuffixStep {
    /// Executing thread.
    pub tid: ThreadId,
    /// Frame depth (index into the dump's frame stack) the range
    /// executes in.
    pub frame_depth: usize,
    /// Range start.
    pub start: Loc,
    /// Range end.
    pub end: EndPoint,
    /// Control transfers taken inside the range, forward order.
    pub transfers: Vec<Transfer>,
    /// Input symbols consumed, forward order.
    pub inputs: Vec<SymId>,
    /// Input kinds aligned with `inputs`.
    pub input_kinds: Vec<InputKind>,
    /// Allocations performed.
    pub allocs: usize,
    /// Frees performed (payload bases).
    pub frees: Vec<u64>,
    /// Concrete read set.
    pub reads: Vec<(u64, Width)>,
    /// Concrete write set.
    pub writes: Vec<(u64, Width)>,
    /// Instructions in the range.
    pub steps: u64,
}

/// A complete synthesized suffix, concretized by a solver model.
#[derive(Debug, Clone)]
pub struct ExecutionSuffix {
    /// Steps in *forward execution order* (the reverse of discovery
    /// order).
    pub steps: Vec<SuffixStep>,
    /// The satisfying model that concretizes havoc symbols and inputs.
    pub model: Model,
    /// The partial memory image `Mi`: concrete cell values to install
    /// before replaying.
    pub initial_cells: Vec<(u64, Width, u64)>,
    /// Initial register files: `(tid, frame_depth, regs)` for each
    /// thread at suffix start.
    pub initial_regs: BTreeMap<ThreadId, (usize, Vec<u64>)>,
    /// Start position per thread: `(frame_depth, loc)`.
    pub start_positions: BTreeMap<ThreadId, (usize, Loc)>,
    /// Concrete input values per thread, in consumption order.
    pub inputs: BTreeMap<ThreadId, Vec<u64>>,
    /// All constraints (flattened) the model satisfies.
    pub constraints: Vec<Tagged>,
    /// `true` if any solver Unknown or unsound shortcut was taken while
    /// building this suffix.
    pub approximate: bool,
}

impl ExecutionSuffix {
    /// Total instructions across all steps.
    pub fn total_steps(&self) -> u64 {
        self.steps.iter().map(|s| s.steps).sum()
    }

    /// Number of block-granular steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// `true` when the suffix has no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Thread ids participating in the suffix, in first-use order.
    pub fn threads(&self) -> Vec<ThreadId> {
        let mut out = Vec::new();
        for s in &self.steps {
            if !out.contains(&s.tid) {
                out.push(s.tid);
            }
        }
        out
    }

    /// The block-granular schedule `(tid, steps)` for replay.
    pub fn schedule(&self) -> Vec<(ThreadId, u64)> {
        self.steps.iter().map(|s| (s.tid, s.steps)).collect()
    }

    /// The union read set (§3.3: "RES automatically focuses developers'
    /// attention on the recently read or written state").
    pub fn read_set(&self) -> Vec<(u64, Width)> {
        let mut out: Vec<(u64, Width)> = self.steps.iter().flat_map(|s| s.reads.clone()).collect();
        out.sort_unstable_by_key(|&(a, w)| (a, w.bytes()));
        out.dedup();
        out
    }

    /// The union write set.
    pub fn write_set(&self) -> Vec<(u64, Width)> {
        let mut out: Vec<(u64, Width)> = self.steps.iter().flat_map(|s| s.writes.clone()).collect();
        out.sort_unstable_by_key(|&(a, w)| (a, w.bytes()));
        out.dedup();
        out
    }

    /// Whether any input consumed in the suffix is attacker-controlled
    /// (network) — the §3.1 exploitability signal.
    pub fn consumes_attacker_input(&self) -> bool {
        self.steps
            .iter()
            .flat_map(|s| s.input_kinds.iter())
            .any(|k| k.attacker_controlled())
    }

    /// Registers pinned by call-binding constraints (diagnostics).
    pub fn call_bound_regs(&self) -> Vec<Reg> {
        self.constraints
            .iter()
            .filter_map(|t| match t.tag {
                Tag::CallBind { reg } => Some(reg),
                _ => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvm_isa::{BlockId, FuncId};

    fn step(tid: ThreadId, n: u64) -> SuffixStep {
        SuffixStep {
            tid,
            frame_depth: 0,
            start: Loc::block_start(FuncId(0), BlockId(0)),
            end: EndPoint {
                depth_delta: 0,
                loc: Loc::block_start(FuncId(0), BlockId(1)),
            },
            transfers: vec![],
            inputs: vec![],
            input_kinds: vec![InputKind::Network],
            allocs: 0,
            frees: vec![],
            reads: vec![(0x100, Width::W8)],
            writes: vec![(0x108, Width::W8), (0x100, Width::W8)],
            steps: n,
        }
    }

    fn suffix() -> ExecutionSuffix {
        ExecutionSuffix {
            steps: vec![step(0, 3), step(1, 2), step(0, 1)],
            model: Model::new(),
            initial_cells: vec![],
            initial_regs: BTreeMap::new(),
            start_positions: BTreeMap::new(),
            inputs: BTreeMap::new(),
            constraints: vec![],
            approximate: false,
        }
    }

    #[test]
    fn aggregates() {
        let s = suffix();
        assert_eq!(s.total_steps(), 6);
        assert_eq!(s.len(), 3);
        assert_eq!(s.threads(), vec![0, 1]);
        assert_eq!(s.schedule(), vec![(0, 3), (1, 2), (0, 1)]);
        assert!(s.consumes_attacker_input());
    }

    #[test]
    fn read_write_sets_dedup() {
        let s = suffix();
        assert_eq!(s.read_set(), vec![(0x100, Width::W8)]);
        assert_eq!(s.write_set(), vec![(0x100, Width::W8), (0x108, Width::W8)]);
    }
}
