//! Forward symbolic execution of one backward-step hypothesis.
//!
//! A *hypothesis* says: "thread `tid` executed the range starting at
//! block `start` and ending exactly at the current backward position".
//! To test it (paper §2.4), the executor:
//!
//! 1. treats every register and memory cell the range overwrites as an
//!    unconstrained symbol in `Spre` (discovered dynamically, with
//!    restarts, because store addresses are data-dependent),
//! 2. executes the range *forward* symbolically — reads of locations the
//!    range never writes take their values straight from `Spost`, reads
//!    of locations it overwrites later take fresh symbols (the two read
//!    cases of §2.4 fall out of the restart discipline),
//! 3. emits one equality constraint per overwritten location:
//!    `value-computed-by-range == value-in-Spost` — the `S' ⊇ Spost`
//!    compatibility check, plus path constraints for every conditional
//!    branch, lock acquisition, and allocator interaction inside the
//!    range.
//!
//! Completed calls inside the range are executed in full (bounded) —
//! the paper's §6 "re-execute the function instead of reverse-analyzing
//! it" strategy; this is also how hard-to-invert constructs such as hash
//! chains are traversed.

use std::collections::BTreeMap;

use mvm_isa::{
    BinOp,
    Channel,
    Inst,
    Loc,
    Operand,
    Program,
    Reg,
    Terminator,
    Width, //
};
use mvm_machine::{AllocMeta, AllocState, ThreadId};
use mvm_symbolic::{Expr, ExprRef, Model, SolveResult, SolverSession, SymId};

use crate::kernel::CutReason;
use crate::snapshot::{MemRead, Snapshot};
use crate::symctx::{SymCtx, SymOrigin};

/// Why a hypothesis was rejected without consulting the solver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Infeasible {
    /// Control flow cannot reach the required end point.
    Structural(&'static str),
    /// The constraint set was proven unsatisfiable during execution
    /// (e.g. an address concretization failed).
    Unsat,
    /// Mixed-width aliasing the cell model cannot express.
    MixedAliasing,
    /// Per-hypothesis budget exceeded (inconclusive, *not* a proof of
    /// infeasibility); carries the kernel's cut reason.
    Budget(CutReason),
    /// The range contains a `spawn`, which the block-granular engine
    /// treats as a backward barrier.
    SpawnBarrier,
    /// Allocator interaction inconsistent with the dump's heap table.
    HeapMismatch,
}

/// Why a constraint exists — the hardware-error analysis (§3.2)
/// relaxes compatibility constraints one location at a time to localize
/// a dump/execution inconsistency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tag {
    /// A path condition (branch direction, lock state, assert, ...).
    Path,
    /// `S'[cell] == Spost[cell]` for a memory cell the range wrote.
    MemCompat {
        /// Cell address.
        addr: u64,
        /// Cell width.
        width: Width,
    },
    /// `S'[reg] == Spost[reg]` for a register the range wrote.
    RegCompat {
        /// The register.
        reg: Reg,
    },
    /// Call-argument binding at a backward step past a function entry.
    CallBind {
        /// The callee entry register bound.
        reg: Reg,
    },
    /// An address-concretization pin.
    Pin,
}

/// A constraint with its provenance.
#[derive(Debug, Clone)]
pub struct Tagged {
    /// The constraint expression (truthy).
    pub expr: ExprRef,
    /// Why it exists.
    pub tag: Tag,
}

/// One control transfer taken inside a hypothesis (LBR matching).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transfer {
    /// Source location (the terminator).
    pub from: Loc,
    /// Destination location.
    pub to: Loc,
    /// `true` when the transfer is re-derivable offline from the CFG
    /// (unconditional jump, call, return).
    pub inferrable: bool,
}

/// Where a hypothesis range must end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EndPoint {
    /// 0 — ends in the same frame; +1 — ends by calling into a deeper
    /// frame (the `Spost` position is the callee's entry).
    pub depth_delta: i32,
    /// The `Spost` code location.
    pub loc: Loc,
}

/// A hypothesis to test.
#[derive(Debug, Clone)]
pub struct HypSpec<'a> {
    /// The program.
    pub program: &'a Program,
    /// Executing thread.
    pub tid: ThreadId,
    /// Frame index (into the snapshot's frame stack) the range executes
    /// in.
    pub frame_depth: usize,
    /// Range start (block entry, or mid-block for the initial partial
    /// range).
    pub start: Loc,
    /// Required end.
    pub end: EndPoint,
    /// Register state of the executed frame at `Spost` (the values the
    /// range must reproduce).
    pub spost_regs: Vec<ExprRef>,
    /// For `depth_delta == +1`: the callee frame's entry register state
    /// in the snapshot, to be matched against the call's arguments.
    pub callee_entry_regs: Option<Vec<ExprRef>>,
    /// For `depth_delta == +1`: the callee frame's `ret_reg` and parked
    /// caller block, for structural call-site matching.
    pub callee_ret_reg: Option<Reg>,
    /// Dump heap table (address order = allocation order for the bump
    /// allocator).
    pub dump_allocs: &'a [AllocMeta],
    /// Number of allocations already attributed to later suffix steps.
    pub later_allocs: usize,
    /// Constraints accumulated by the search so far (context for
    /// concretization).
    pub base_constraints: &'a [ExprRef],
    /// Per-hypothesis instruction budget.
    pub max_steps: u64,
    /// Ablation A1: skip the `S' ⊇ Spost` compatibility constraints
    /// entirely (accept any predecessor the CFG allows).
    pub skip_compat: bool,
}

/// The result of a feasible (pre-solver) hypothesis execution.
#[derive(Debug, Clone)]
pub struct HypOutcome {
    /// Register state of the executed frame at range start (`Spre`).
    pub spre_regs: Vec<ExprRef>,
    /// Memory cells of `Spre`: one havoc symbol per cell the range
    /// overwrote.
    pub spre_cells: Vec<(u64, Width, ExprRef)>,
    /// Constraints added by this hypothesis (compatibility equalities +
    /// path constraints), tagged with provenance.
    pub constraints: Vec<Tagged>,
    /// Control transfers taken, in forward order.
    pub transfers: Vec<Transfer>,
    /// Error-log emissions `(site, value)`, forward order.
    pub logs: Vec<(Loc, ExprRef)>,
    /// Input symbols consumed, forward order.
    pub inputs: Vec<SymId>,
    /// Number of allocations performed by the range.
    pub allocs: usize,
    /// Payload bases freed by the range, forward order.
    pub frees: Vec<u64>,
    /// Concrete addresses read (read set, §3.3).
    pub reads: Vec<(u64, Width)>,
    /// Concrete addresses written (write set, §3.3).
    pub writes: Vec<(u64, Width)>,
    /// Instructions executed.
    pub steps: u64,
    /// `true` if a solver Unknown or an unsound shortcut was taken; the
    /// search keeps the hypothesis but flags the suffix.
    pub unknown_used: bool,
}

struct LocalFrame {
    func: mvm_isa::FuncId,
    block: mvm_isa::BlockId,
    inst: u32,
    regs: Vec<ExprRef>,
    ret_reg: Option<Reg>,
}

struct Attempt<'a, 'b> {
    spec: &'b HypSpec<'a>,
    snap: &'b Snapshot,
    ctx: &'b mut SymCtx,
    solver: &'b SolverSession,
    depth: usize,
    // Top-frame register discipline.
    regs: Vec<ExprRef>,
    reg_written: Vec<bool>,
    reg_read_pre: Vec<bool>,
    reg_havoc: Vec<Option<ExprRef>>,
    // Memory journal.
    mem_written: BTreeMap<u64, (Width, ExprRef)>,
    mem_read_pre: BTreeMap<u64, Width>,
    mem_havoc: BTreeMap<u64, (Width, ExprRef)>,
    // Allocator replay.
    assumed_allocs: usize,
    local_allocs: usize,
    frees: Vec<u64>,
    // Products.
    constraints: Vec<Tagged>,
    transfers: Vec<Transfer>,
    logs: Vec<(Loc, ExprRef)>,
    inputs: Vec<SymId>,
    reads: Vec<(u64, Width)>,
    writes: Vec<(u64, Width)>,
    steps: u64,
    unknown_used: bool,
    // Nested call frames.
    locals: Vec<LocalFrame>,
}

enum Restart {
    HavocReg(Reg),
    HavocMem(u64, Width),
    AllocCount(usize),
}

enum Abort {
    Restart(Restart),
    Infeasible(Infeasible),
}

type StepResult<T> = Result<T, Abort>;

fn path(expr: ExprRef) -> Tagged {
    Tagged {
        expr,
        tag: Tag::Path,
    }
}

/// Runs a hypothesis, restarting as the havoc sets grow. Solver queries
/// go through the shared memoizing `SolverSession` — restarts re-ask
/// many of the same questions, so the cache pays off immediately.
pub fn run_hypothesis(
    spec: &HypSpec<'_>,
    snap: &Snapshot,
    ctx: &mut SymCtx,
    solver: &SolverSession,
    depth: usize,
) -> Result<HypOutcome, Infeasible> {
    let mut reg_havoc: Vec<Option<ExprRef>> = vec![None; Reg::COUNT];
    let mut mem_havoc: BTreeMap<u64, (Width, ExprRef)> = BTreeMap::new();
    let mut assumed_allocs = 0usize;
    for _ in 0..8 {
        let mut attempt = Attempt {
            spec,
            snap,
            ctx,
            solver,
            depth,
            regs: spec.spost_regs.clone(),
            reg_written: vec![false; Reg::COUNT],
            reg_read_pre: vec![false; Reg::COUNT],
            reg_havoc: reg_havoc.clone(),
            mem_written: BTreeMap::new(),
            mem_read_pre: BTreeMap::new(),
            mem_havoc: mem_havoc.clone(),
            assumed_allocs,
            local_allocs: 0,
            frees: Vec::new(),
            constraints: Vec::new(),
            transfers: Vec::new(),
            logs: Vec::new(),
            inputs: Vec::new(),
            reads: Vec::new(),
            writes: Vec::new(),
            steps: 0,
            unknown_used: false,
            locals: Vec::new(),
        };
        match attempt.run() {
            Ok(outcome) => return Ok(outcome),
            Err(Abort::Infeasible(i)) => return Err(i),
            Err(Abort::Restart(r)) => match r {
                Restart::HavocReg(reg) => {
                    let sym = ctx.fresh(SymOrigin::HavocReg {
                        tid: spec.tid,
                        reg,
                        depth,
                    });
                    reg_havoc[reg.index()] = Some(sym);
                }
                Restart::HavocMem(addr, width) => {
                    let sym = ctx.fresh(SymOrigin::HavocMem { addr, width, depth });
                    mem_havoc.insert(addr, (width, sym));
                }
                Restart::AllocCount(k) => {
                    assumed_allocs = k;
                }
            },
        }
    }
    // Restart quota exhausted: charged against the hypothesis's
    // instruction budget, like the in-range step cap.
    Err(Infeasible::Budget(CutReason::HypInstructions))
}

impl<'a, 'b> Attempt<'a, 'b> {
    fn run(&mut self) -> StepResult<HypOutcome> {
        let mut func = self.spec.start.func;
        let mut block = self.spec.start.block;
        let mut inst = self.spec.start.inst;
        let mut started = false;

        loop {
            // End check (not before the first step, so self-loop ranges
            // execute their body).
            let here = Loc { func, block, inst };
            let at_end_depth = match self.spec.end.depth_delta {
                0 => self.locals.is_empty(),
                _ => false, // +1 ends are detected at the Call itself.
            };
            if started && at_end_depth && here == self.spec.end.loc {
                return self.finish();
            }
            if self.steps >= self.spec.max_steps {
                return Err(Abort::Infeasible(Infeasible::Budget(
                    CutReason::HypInstructions,
                )));
            }
            self.steps += 1;
            started = true;

            let blk = self.spec.program.func(func).block(block);
            if (inst as usize) < blk.insts.len() {
                let i = blk.insts[inst as usize].clone();
                self.exec_inst(&i, here)?;
                inst += 1;
                continue;
            }
            // Terminator.
            let term = blk.terminator.clone();
            match term {
                Terminator::Jump(t) => {
                    let to = Loc::block_start(func, t);
                    self.transfers.push(Transfer {
                        from: here,
                        to,
                        inferrable: true,
                    });
                    block = t;
                    inst = 0;
                }
                Terminator::Branch {
                    cond,
                    then_b,
                    else_b,
                } => {
                    let c = self.eval(cond);
                    let (target, constraint) = self.pick_branch(c, then_b, else_b)?;
                    if let Some(k) = constraint {
                        self.constraints.push(path(k));
                    }
                    let to = Loc::block_start(func, target);
                    self.transfers.push(Transfer {
                        from: here,
                        to,
                        inferrable: then_b == else_b,
                    });
                    block = target;
                    inst = 0;
                }
                Terminator::Call {
                    func: callee,
                    args,
                    ret,
                    cont,
                } => {
                    let entry = Loc::block_start(callee, mvm_isa::BlockId(0));
                    let arg_vals: Vec<ExprRef> = args.iter().map(|a| self.eval(*a)).collect();
                    // Does this call end the range (backward step past a
                    // function entry)?
                    if self.locals.is_empty()
                        && self.spec.end.depth_delta == 1
                        && entry == self.spec.end.loc
                    {
                        return self.finish_call_into(here, &arg_vals, ret, cont);
                    }
                    // Otherwise the call completes inside the range:
                    // execute the callee (the §6 re-execution strategy).
                    let mut regs: Vec<ExprRef> = (0..Reg::COUNT).map(|_| Expr::konst(0)).collect();
                    for (i, v) in arg_vals.iter().enumerate() {
                        regs[i] = v.clone();
                    }
                    regs[31] = self.read_reg(Reg(31));
                    self.transfers.push(Transfer {
                        from: here,
                        to: entry,
                        inferrable: true,
                    });
                    let caller_regs = std::mem::replace(&mut self.regs, regs);
                    self.locals.push(LocalFrame {
                        func,
                        block: cont,
                        inst: 0,
                        regs: caller_regs,
                        ret_reg: ret,
                    });
                    func = callee;
                    block = mvm_isa::BlockId(0);
                    inst = 0;
                }
                Terminator::Return(val) => {
                    let v = val.map(|op| self.eval(op));
                    let Some(frame) = self.locals.pop() else {
                        // Returning out of the range's own frame: only the
                        // (unsupported) incremental-return step would need
                        // this.
                        return Err(Abort::Infeasible(Infeasible::Structural(
                            "return exits the hypothesis frame",
                        )));
                    };
                    let ret_to = Loc::block_start(frame.func, frame.block);
                    self.transfers.push(Transfer {
                        from: here,
                        to: ret_to,
                        inferrable: true,
                    });
                    func = frame.func;
                    block = frame.block;
                    inst = frame.inst;
                    let ret_reg = frame.ret_reg;
                    self.regs = frame.regs;
                    if let (Some(r), Some(v)) = (ret_reg, v) {
                        self.write_reg(r, v)?;
                    }
                }
                Terminator::Halt => {
                    return Err(Abort::Infeasible(Infeasible::Structural(
                        "halt inside hypothesis range",
                    )));
                }
            }
        }
    }

    fn in_nested(&self) -> bool {
        !self.locals.is_empty()
    }

    fn read_reg(&mut self, r: Reg) -> ExprRef {
        if self.in_nested() {
            return self.regs[r.index()].clone();
        }
        if self.reg_written[r.index()] {
            return self.regs[r.index()].clone();
        }
        if let Some(h) = &self.reg_havoc[r.index()] {
            return h.clone();
        }
        self.reg_read_pre[r.index()] = true;
        // Unwritten-so-far: optimistically the Spost value (correct when
        // the range never writes this register; a later write restarts).
        self.regs[r.index()].clone()
    }

    fn write_reg(&mut self, r: Reg, v: ExprRef) -> StepResult<()> {
        if self.in_nested() {
            self.regs[r.index()] = v;
            return Ok(());
        }
        if self.reg_read_pre[r.index()] && self.reg_havoc[r.index()].is_none() {
            return Err(Abort::Restart(Restart::HavocReg(r)));
        }
        self.reg_written[r.index()] = true;
        self.regs[r.index()] = v;
        Ok(())
    }

    fn eval(&mut self, op: Operand) -> ExprRef {
        match op {
            Operand::Reg(r) => self.read_reg(r),
            Operand::Imm(v) => Expr::konst(v),
        }
    }

    /// Concretizes an address expression, adding the pinning constraint.
    fn concretize(&mut self, e: &ExprRef) -> StepResult<u64> {
        if let Some(v) = e.as_const() {
            return Ok(v);
        }
        let all: Vec<ExprRef> = self
            .spec
            .base_constraints
            .iter()
            .cloned()
            .chain(self.constraints.iter().map(|t| t.expr.clone()))
            .collect();
        // Solve for a witness of the current path.
        let model = match self.solver.check(&all) {
            SolveResult::Sat(m) => m,
            SolveResult::Unsat => return Err(Abort::Infeasible(Infeasible::Unsat)),
            SolveResult::Unknown(_) => {
                self.unknown_used = true;
                Model::new()
            }
        };
        let v = model
            .eval_total(e)
            .ok_or(Abort::Infeasible(Infeasible::Unsat))?;
        self.constraints.push(Tagged {
            expr: Expr::bin(BinOp::Eq, e.clone(), Expr::konst(v)),
            tag: Tag::Pin,
        });
        Ok(v)
    }

    fn read_mem(&mut self, addr: u64, width: Width) -> StepResult<ExprRef> {
        self.reads.push((addr, width));
        if let Some((w, v)) = self.mem_written.get(&addr) {
            if *w == width {
                return Ok(v.clone());
            }
            return Err(Abort::Infeasible(Infeasible::MixedAliasing));
        }
        if self.overlaps_journal(addr, width) {
            return Err(Abort::Infeasible(Infeasible::MixedAliasing));
        }
        if let Some((w, sym)) = self.mem_havoc.get(&addr) {
            if *w == width {
                return Ok(sym.clone());
            }
            return Err(Abort::Infeasible(Infeasible::MixedAliasing));
        }
        match self.snap.read_mem(addr, width) {
            MemRead::Value(v) => {
                self.mem_read_pre.entry(addr).or_insert(width);
                Ok(v)
            }
            MemRead::MixedSymbolic => {
                // Unknown value: a fresh symbol, flagged.
                self.unknown_used = true;
                let sym = self.ctx.fresh(SymOrigin::HavocMem {
                    addr,
                    width,
                    depth: self.depth,
                });
                Ok(sym)
            }
        }
    }

    fn overlaps_journal(&self, addr: u64, width: Width) -> bool {
        let lo = addr.saturating_sub(7);
        let hi = addr + width.bytes() - 1;
        self.mem_written
            .range(lo..=hi)
            .any(|(&a, (w, _))| a != addr && a <= hi && a + w.bytes() - 1 >= addr)
            || self
                .mem_havoc
                .range(lo..=hi)
                .any(|(&a, (w, _))| a != addr && a <= hi && a + w.bytes() - 1 >= addr)
    }

    fn write_mem(&mut self, addr: u64, width: Width, v: ExprRef) -> StepResult<()> {
        self.writes.push((addr, width));
        if self.overlaps_journal(addr, width) {
            return Err(Abort::Infeasible(Infeasible::MixedAliasing));
        }
        if let Some(w) = self.mem_read_pre.get(&addr) {
            if !self.mem_havoc.contains_key(&addr) {
                let w = *w;
                if w != width {
                    return Err(Abort::Infeasible(Infeasible::MixedAliasing));
                }
                return Err(Abort::Restart(Restart::HavocMem(addr, w)));
            }
        }
        if let Some((w, _)) = self.mem_havoc.get(&addr) {
            if *w != width {
                return Err(Abort::Infeasible(Infeasible::MixedAliasing));
            }
        }
        if let Some((w, _)) = self.mem_written.get(&addr) {
            if *w != width {
                return Err(Abort::Infeasible(Infeasible::MixedAliasing));
            }
        }
        self.mem_written.insert(addr, (width, v));
        Ok(())
    }

    fn exec_inst(&mut self, i: &Inst, here: Loc) -> StepResult<()> {
        match i {
            Inst::Mov { dst, src } => {
                let v = self.eval(*src);
                self.write_reg(*dst, v)?;
            }
            Inst::Bin { op, dst, lhs, rhs } => {
                let a = self.eval(*lhs);
                let b = self.eval(*rhs);
                if matches!(op, BinOp::DivU | BinOp::RemU) {
                    match b.as_const() {
                        Some(0) => {
                            // Faulting mid-suffix contradicts the range
                            // completing.
                            return Err(Abort::Infeasible(Infeasible::Structural(
                                "division by zero inside range",
                            )));
                        }
                        Some(_) => {}
                        None => {
                            self.constraints.push(path(Expr::bin(
                                BinOp::Ne,
                                b.clone(),
                                Expr::konst(0),
                            )));
                        }
                    }
                }
                let v = Expr::bin(*op, a, b);
                self.write_reg(*dst, v)?;
            }
            Inst::Un { op, dst, src } => {
                let v = Expr::un(*op, self.eval(*src));
                self.write_reg(*dst, v)?;
            }
            Inst::Load {
                dst,
                addr,
                offset,
                width,
            } => {
                let base = self.eval(*addr);
                let ea = Expr::bin(BinOp::Add, base, Expr::konst(*offset as u64));
                let a = self.concretize(&ea)?;
                let v = self.read_mem(a, *width)?;
                self.write_reg(*dst, v)?;
            }
            Inst::Store {
                src,
                addr,
                offset,
                width,
            } => {
                let base = self.eval(*addr);
                let ea = Expr::bin(BinOp::Add, base, Expr::konst(*offset as u64));
                let a = self.concretize(&ea)?;
                let v = self.eval(*src);
                let narrowed = if *width == Width::W8 {
                    v
                } else {
                    Expr::bin(BinOp::And, v, Expr::konst(width.mask()))
                };
                self.write_mem(a, *width, narrowed)?;
            }
            Inst::AddrOf { dst, global } => {
                let a = self.spec.program.global(*global).addr;
                self.write_reg(*dst, Expr::konst(a))?;
            }
            Inst::Input { dst, kind } => {
                let sym = self.ctx.fresh(SymOrigin::Input {
                    tid: self.spec.tid,
                    kind: *kind,
                    site: here,
                });
                if let Some(id) = sym.as_sym() {
                    self.inputs.push(id);
                }
                self.write_reg(*dst, sym)?;
            }
            Inst::Output { src, channel } => {
                let v = self.eval(*src);
                if *channel == Channel::Log {
                    self.logs.push((here, v));
                }
            }
            Inst::Alloc { dst, size } => {
                let sz = self.eval(*size);
                let n = self.spec.dump_allocs.len();
                let consumed = self.spec.later_allocs + self.assumed_allocs;
                if self.local_allocs >= self.assumed_allocs {
                    // More allocations than assumed: restart with the
                    // larger count (bounded by the dump table).
                    if consumed >= n {
                        return Err(Abort::Infeasible(Infeasible::HeapMismatch));
                    }
                    return Err(Abort::Restart(Restart::AllocCount(self.local_allocs + 1)));
                }
                // Forward order within the range: the j-th local alloc is
                // the (n - later - assumed + j)-th dump entry.
                let idx = n - self.spec.later_allocs - self.assumed_allocs + self.local_allocs;
                let meta = self.spec.dump_allocs[idx];
                self.local_allocs += 1;
                match sz.as_const() {
                    Some(c) => {
                        if c.max(1) != meta.size {
                            return Err(Abort::Infeasible(Infeasible::HeapMismatch));
                        }
                    }
                    None => {
                        self.constraints.push(path(Expr::bin(
                            BinOp::Eq,
                            sz,
                            Expr::konst(meta.size),
                        )));
                    }
                }
                self.write_reg(*dst, Expr::konst(meta.base))?;
            }
            Inst::Free { addr } => {
                let a = self.eval(*addr);
                let base = self.concretize(&a)?;
                let Some(meta) = self.spec.dump_allocs.iter().find(|m| m.base == base) else {
                    return Err(Abort::Infeasible(Infeasible::HeapMismatch));
                };
                if meta.state != AllocState::Freed || self.frees.contains(&base) {
                    return Err(Abort::Infeasible(Infeasible::HeapMismatch));
                }
                self.frees.push(base);
            }
            Inst::Lock { addr } => {
                let a = self.eval(*addr);
                let m = self.concretize(&a)?;
                // Acquisition succeeded: the mutex word was 0, then
                // became tid+1 (the machine mirrors ownership in memory).
                let v = self.read_mem(m, Width::W8)?;
                match v.as_const() {
                    Some(0) => {}
                    Some(_) => {
                        return Err(Abort::Infeasible(Infeasible::Structural(
                            "lock acquired while held",
                        )))
                    }
                    None => self
                        .constraints
                        .push(path(Expr::bin(BinOp::Eq, v, Expr::konst(0)))),
                }
                self.write_mem(m, Width::W8, Expr::konst(self.spec.tid + 1))?;
            }
            Inst::Unlock { addr } => {
                let a = self.eval(*addr);
                let m = self.concretize(&a)?;
                let v = self.read_mem(m, Width::W8)?;
                let owner = self.spec.tid + 1;
                match v.as_const() {
                    Some(x) if x == owner => {}
                    Some(_) => {
                        return Err(Abort::Infeasible(Infeasible::Structural(
                            "unlock of unowned mutex",
                        )))
                    }
                    None => {
                        self.constraints
                            .push(path(Expr::bin(BinOp::Eq, v, Expr::konst(owner))))
                    }
                }
                self.write_mem(m, Width::W8, Expr::konst(0))?;
            }
            Inst::Spawn { .. } => {
                return Err(Abort::Infeasible(Infeasible::SpawnBarrier));
            }
            Inst::Join { tid } => {
                // The join completed inside the range, so the target was
                // already halted; only sanity-check a concrete target.
                let t = self.eval(*tid);
                if let Some(v) = t.as_const() {
                    if self.snap.thread(v).is_none() {
                        return Err(Abort::Infeasible(Infeasible::Structural(
                            "join of unknown thread",
                        )));
                    }
                }
            }
            Inst::Assert { cond, .. } => {
                let c = self.eval(*cond);
                match c.as_const() {
                    Some(0) => {
                        return Err(Abort::Infeasible(Infeasible::Structural(
                            "assert fails inside range",
                        )))
                    }
                    Some(_) => {}
                    None => self.constraints.push(path(c)),
                }
            }
            Inst::Nop => {}
        }
        Ok(())
    }

    fn pick_branch(
        &mut self,
        cond: ExprRef,
        then_b: mvm_isa::BlockId,
        else_b: mvm_isa::BlockId,
    ) -> StepResult<(mvm_isa::BlockId, Option<ExprRef>)> {
        if let Some(v) = cond.as_const() {
            return Ok((if v != 0 { then_b } else { else_b }, None));
        }
        if self.in_nested() {
            // Inside a re-executed callee: concretize the path with the
            // solver's witness.
            let all: Vec<ExprRef> = self
                .spec
                .base_constraints
                .iter()
                .cloned()
                .chain(self.constraints.iter().map(|t| t.expr.clone()))
                .collect();
            let taken_nonzero = match self.solver.check(&all) {
                SolveResult::Sat(m) => m.eval_total(&cond).unwrap_or(0) != 0,
                SolveResult::Unsat => return Err(Abort::Infeasible(Infeasible::Unsat)),
                SolveResult::Unknown(_) => {
                    self.unknown_used = true;
                    false
                }
            };
            let (target, k) = if taken_nonzero {
                (then_b, cond)
            } else {
                (else_b, Expr::bin(BinOp::Eq, cond, Expr::konst(0)))
            };
            return Ok((target, Some(k)));
        }
        // Top frame: the branch must reach the range's end block.
        let end_block = self.spec.end.loc.block;
        let callish = self.spec.end.depth_delta == 1;
        let want_then = !callish && then_b == end_block;
        let want_else = !callish && else_b == end_block;
        match (want_then, want_else) {
            (true, true) => Ok((then_b, None)),
            (true, false) => Ok((then_b, Some(cond))),
            (false, true) => Ok((else_b, Some(Expr::bin(BinOp::Eq, cond, Expr::konst(0))))),
            (false, false) => Err(Abort::Infeasible(Infeasible::Structural(
                "branch cannot reach end block",
            ))),
        }
    }

    /// Ends the range at a `Call` whose callee entry is the `Spost`
    /// position (backward step past a function entry).
    fn finish_call_into(
        &mut self,
        here: Loc,
        arg_vals: &[ExprRef],
        ret: Option<Reg>,
        cont: mvm_isa::BlockId,
    ) -> StepResult<HypOutcome> {
        let entry_regs = self
            .spec
            .callee_entry_regs
            .as_ref()
            .expect("call-into requires callee entry regs")
            .clone();
        // Structural checks: same return register and continuation as
        // the dump's frames record.
        if ret != self.spec.callee_ret_reg {
            return Err(Abort::Infeasible(Infeasible::Structural(
                "call-site return register mismatch",
            )));
        }
        // The caller frame in the dump is parked at the continuation;
        // the search selected this candidate because its parked block
        // matches, but re-check when available.
        let _ = cont;
        // Bind arguments and the zero-initialized remainder.
        for (i, entry) in entry_regs.iter().enumerate() {
            let expected: ExprRef = if i < arg_vals.len() {
                arg_vals[i].clone()
            } else if i == 31 {
                self.read_reg(Reg(31))
            } else {
                Expr::konst(0)
            };
            let c = Expr::bin(BinOp::Eq, expected, entry.clone());
            match c.as_const() {
                Some(0) => {
                    return Err(Abort::Infeasible(Infeasible::Structural(
                        "call argument mismatch",
                    )))
                }
                Some(_) => {}
                None => self.constraints.push(Tagged {
                    expr: c,
                    tag: Tag::CallBind { reg: Reg(i as u8) },
                }),
            }
        }
        self.transfers.push(Transfer {
            from: here,
            to: self.spec.end.loc,
            inferrable: true,
        });
        self.finish()
    }

    fn finish(&mut self) -> StepResult<HypOutcome> {
        if !self.locals.is_empty() {
            return Err(Abort::Infeasible(Infeasible::Structural(
                "range ended inside a nested call",
            )));
        }
        let mut constraints = std::mem::take(&mut self.constraints);
        // Compatibility: every memory cell the range wrote must match
        // Spost.
        let mut spre_cells = Vec::new();
        for (&addr, (width, v)) in &self.mem_written {
            let spost = match self.snap.read_mem(addr, *width) {
                MemRead::Value(x) => x,
                MemRead::MixedSymbolic => {
                    if self.spec.skip_compat {
                        // No constraint possible or wanted.
                        let sym = match self.mem_havoc.get(&addr) {
                            Some((_, s)) => s.clone(),
                            None => self.ctx.fresh(SymOrigin::HavocMem {
                                addr,
                                width: *width,
                                depth: self.depth,
                            }),
                        };
                        spre_cells.push((addr, *width, sym));
                        continue;
                    }
                    // Minidump mode (A2): the post-state is unknown, so
                    // the write is unconstrained — accepted, flagged.
                    self.unknown_used = true;
                    let sym = match self.mem_havoc.get(&addr) {
                        Some((_, s)) => s.clone(),
                        None => self.ctx.fresh(SymOrigin::HavocMem {
                            addr,
                            width: *width,
                            depth: self.depth,
                        }),
                    };
                    spre_cells.push((addr, *width, sym));
                    continue;
                }
            };
            let spost = if *width == Width::W8 {
                spost
            } else {
                Expr::bin(BinOp::And, spost, Expr::konst(width.mask()))
            };
            let c = Expr::bin(BinOp::Eq, v.clone(), spost);
            if self.spec.skip_compat {
                // Ablation A1: drop the compatibility constraint.
            } else {
                match c.as_const() {
                    Some(0) => return Err(Abort::Infeasible(Infeasible::Unsat)),
                    Some(_) => {}
                    None => constraints.push(Tagged {
                        expr: c,
                        tag: Tag::MemCompat {
                            addr,
                            width: *width,
                        },
                    }),
                }
            }
            let sym = match self.mem_havoc.get(&addr) {
                Some((_, s)) => s.clone(),
                None => self.ctx.fresh(SymOrigin::HavocMem {
                    addr,
                    width: *width,
                    depth: self.depth,
                }),
            };
            spre_cells.push((addr, *width, sym));
        }
        // Compatibility: every register the range wrote must match
        // Spost; Spre gets its havoc symbol.
        let mut spre_regs = self.spec.spost_regs.clone();
        for r in 0..Reg::COUNT {
            if self.reg_written[r] {
                let c = Expr::bin(
                    BinOp::Eq,
                    self.regs[r].clone(),
                    self.spec.spost_regs[r].clone(),
                );
                if self.spec.skip_compat {
                    // Ablation A1: drop the compatibility constraint.
                } else {
                    match c.as_const() {
                        Some(0) => return Err(Abort::Infeasible(Infeasible::Unsat)),
                        Some(_) => {}
                        None => constraints.push(Tagged {
                            expr: c,
                            tag: Tag::RegCompat { reg: Reg(r as u8) },
                        }),
                    }
                }
                spre_regs[r] = match &self.reg_havoc[r] {
                    Some(s) => s.clone(),
                    None => self.ctx.fresh(SymOrigin::HavocReg {
                        tid: self.spec.tid,
                        reg: Reg(r as u8),
                        depth: self.depth,
                    }),
                };
            }
        }
        Ok(HypOutcome {
            spre_regs,
            spre_cells,
            constraints,
            transfers: std::mem::take(&mut self.transfers),
            logs: std::mem::take(&mut self.logs),
            inputs: std::mem::take(&mut self.inputs),
            allocs: self.local_allocs,
            frees: std::mem::take(&mut self.frees),
            reads: std::mem::take(&mut self.reads),
            writes: std::mem::take(&mut self.writes),
            steps: self.steps,
            unknown_used: self.unknown_used,
        })
    }
}
