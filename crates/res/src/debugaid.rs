//! Debugging aids on top of the suffix (paper §3.3).
//!
//! "Since it computes the read and write sets of the execution suffix,
//! RES automatically focuses developers' attention on the recently read
//! or written state. [...] RES could also be used to automate the
//! testing of various hypotheses formulated during debugging, such as
//! 'what was the program state when the program was executing at program
//! counter X', or 'was a thread T preempted before updating shared
//! memory location M?'"

use mvm_core::Coredump;
use mvm_isa::{layout, Loc, Program, Width};
use mvm_machine::{ThreadId, TraceLevel};

use crate::replay::instantiate;
use crate::suffix::ExecutionSuffix;

/// A region-annotated address from the suffix's read/write sets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FocusEntry {
    /// Address.
    pub addr: u64,
    /// Access width.
    pub width: Width,
    /// Human-readable region ("global", "heap", "stack(t)").
    pub region: String,
}

/// The §3.3 "focus report": what the failing window actually touched,
/// annotated by region — usually a tiny fraction of the coredump.
pub fn focus_report(suffix: &ExecutionSuffix) -> (Vec<FocusEntry>, Vec<FocusEntry>) {
    let annotate = |(addr, width): (u64, Width)| FocusEntry {
        addr,
        width,
        region: match layout::region_of(addr) {
            layout::Region::Global => "global".to_string(),
            layout::Region::Heap => "heap".to_string(),
            layout::Region::Stack { tid } => format!("stack({tid})"),
            layout::Region::Unmapped => "unmapped".to_string(),
        },
    };
    (
        suffix.read_set().into_iter().map(annotate).collect(),
        suffix.write_set().into_iter().map(annotate).collect(),
    )
}

/// Answers "what was the program state when thread `tid` was executing
/// at program counter `pc`?" by replaying the suffix up to that point.
///
/// Returns the thread's registers and the value at each watched address
/// at the *first* time `tid` reaches `pc`, or `None` if the suffix never
/// takes `tid` through `pc`.
pub fn state_at(
    program: &Program,
    dump: &Coredump,
    suffix: &ExecutionSuffix,
    tid: ThreadId,
    pc: Loc,
    watch: &[u64],
) -> Option<(Vec<u64>, Vec<(u64, u64)>)> {
    let mut m = instantiate(program, dump, suffix, TraceLevel::Off);
    let snapshot = |m: &mvm_machine::Machine| {
        let regs = m.threads()[&tid].top().regs.clone();
        let mem: Vec<(u64, u64)> = watch
            .iter()
            .map(|&a| (a, m.memory().read(a, Width::W8)))
            .collect();
        (regs, mem)
    };
    if m.threads().get(&tid).is_some_and(|t| t.pc() == pc) {
        return Some(snapshot(&m));
    }
    for (stid, n) in suffix.schedule() {
        for _ in 0..n {
            if m.step_thread(stid).is_err() {
                return None;
            }
            if m.threads().get(&tid).is_some_and(|t| t.pc() == pc) {
                return Some(snapshot(&m));
            }
        }
    }
    None
}

/// Answers "was thread `tid` preempted between its accesses to `addr`?"
/// — the paper's second hypothesis-testing example. True when the
/// suffix schedules another thread between two of `tid`'s steps that
/// touch `addr`.
pub fn was_preempted_between_accesses(suffix: &ExecutionSuffix, tid: ThreadId, addr: u64) -> bool {
    let touches = |s: &crate::suffix::SuffixStep| {
        s.reads
            .iter()
            .chain(s.writes.iter())
            .any(|&(a, w)| addr >= a && addr < a + w.bytes())
    };
    let mut saw_first = false;
    let mut preempted_since = false;
    for s in &suffix.steps {
        if s.tid == tid {
            if touches(s) {
                if saw_first && preempted_since {
                    return true;
                }
                saw_first = true;
                preempted_since = false;
            }
        } else if saw_first {
            preempted_since = true;
        }
    }
    false
}
