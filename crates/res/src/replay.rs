//! Deterministic replay of a synthesized suffix (paper §2.1).
//!
//! "To replay a suffix in a debugger like gdb, a special environment is
//! slipped underneath the debugger to instantiate Mi and replay Ti; to
//! the developer it looks as if the program deterministically runs into
//! the same failure."
//!
//! The replayer here is that environment: it boots a fresh machine,
//! instantiates the partial image `Mi` over the coredump's memory,
//! reconstructs thread contexts and allocator metadata at the suffix
//! start, pins the block-granular schedule and the inferred inputs, runs
//! forward, and finally verifies that the machine faults identically and
//! that its memory and thread state match the original dump byte for
//! byte.

use std::collections::{HashMap, VecDeque};
use std::fmt;

use mvm_core::{diff_dumps, Coredump, DumpDiff};
use mvm_isa::{Loc, Program, Width};
use mvm_json::{json_enum, json_struct};
use mvm_machine::{
    AccessKind,
    AllocState,
    Fault,
    Frame,
    InputSource,
    Machine,
    MachineConfig,
    ThreadId,
    ThreadState,
    ThreadStatus,
    TraceEvent,
    TraceLevel, //
};

use crate::suffix::ExecutionSuffix;

/// The outcome of replaying a suffix.
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// `true` when the replay reproduced the fault *and* the final state
    /// matches the coredump.
    pub reproduced: bool,
    /// `true` when the fault class and location matched.
    pub fault_matches: bool,
    /// Differences between the replayed state and the coredump.
    pub diff: DumpDiff,
    /// The fault the replay hit, if any.
    pub replay_fault: Option<Fault>,
    /// Instructions executed during the replay.
    pub steps_executed: u64,
}

/// Builds a machine positioned at the suffix start ("the environment
/// slipped underneath the debugger"), ready to be stepped.
///
/// Exposed separately from [`replay_suffix`] so debugging aids (§3.3)
/// can stop at intermediate points.
pub fn instantiate(
    program: &Program,
    dump: &Coredump,
    suffix: &ExecutionSuffix,
    trace: TraceLevel,
) -> Machine {
    let mut per_thread: HashMap<ThreadId, VecDeque<u64>> = HashMap::new();
    for (tid, vals) in &suffix.inputs {
        per_thread.insert(*tid, vals.iter().copied().collect());
    }
    let mut m = Machine::new(
        program.clone(),
        MachineConfig {
            input: InputSource::Scripted {
                per_thread,
                fallback: 0,
            },
            trace,
            ..MachineConfig::default()
        },
    );
    // Memory: the dump image (locations the suffix never touches are
    // unchanged by it) overlaid with the concretized `Mi` cells.
    *m.memory_mut() = dump.memory.clone();
    for (addr, width, value) in &suffix.initial_cells {
        m.memory_mut().write(*addr, *value, *width);
    }
    // Heap: the dump's allocation table minus the allocations the
    // suffix itself performs (address order is allocation order for the
    // bump allocator), with suffix-freed blocks resurrected.
    let suffix_allocs: usize = suffix.steps.iter().map(|s| s.allocs).sum();
    let keep = dump.heap_allocs.len().saturating_sub(suffix_allocs);
    m.heap_mut()
        .install(dump.heap_allocs.iter().take(keep).copied());
    for s in &suffix.steps {
        for base in &s.frees {
            m.heap_mut().set_state(*base, AllocState::Live);
        }
    }
    // Threads: dump frames below the start depth, a concretized frame at
    // the start position.
    m.threads_mut().clear();
    for (&tid, &(depth, loc)) in &suffix.start_positions {
        let dump_thread = dump.thread(tid).expect("dump thread");
        let mut frames: Vec<Frame> = dump_thread.frames[..depth].to_vec();
        let (reg_depth, regs) = &suffix.initial_regs[&tid];
        debug_assert_eq!(*reg_depth, depth);
        let template = &dump_thread.frames[depth.min(dump_thread.frames.len() - 1)];
        frames.push(Frame {
            func: loc.func,
            block: loc.block,
            inst: loc.inst,
            regs: regs.clone(),
            ret_reg: template.ret_reg,
        });
        m.install_thread(ThreadState {
            tid,
            frames,
            status: ThreadStatus::Runnable,
            inputs_consumed: 0,
        });
    }
    // Make sure thread-id space covers every dump thread (stack region
    // validity).
    for t in &dump.threads {
        if m.threads().contains_key(&t.tid) {
            continue;
        }
        m.install_thread(ThreadState {
            tid: t.tid,
            frames: t.frames.clone(),
            status: t.status,
            inputs_consumed: 0,
        });
    }
    m
}

/// Replays a suffix against its coredump and verifies reproduction.
pub fn replay_suffix(program: &Program, dump: &Coredump, suffix: &ExecutionSuffix) -> ReplayReport {
    replay_with_trace(program, dump, suffix, TraceLevel::Off).0
}

/// Replays and also returns the machine (with any requested trace) for
/// root-cause analysis.
pub fn replay_with_trace(
    program: &Program,
    dump: &Coredump,
    suffix: &ExecutionSuffix,
    trace: TraceLevel,
) -> (ReplayReport, Machine) {
    let mut m = instantiate(program, dump, suffix, trace);
    let mut steps_executed = 0u64;
    // Remaining scheduled steps per thread, to detect when a thread's
    // suffix work is done and its dump-final status (halted/blocked)
    // should be settled.
    let mut remaining: HashMap<ThreadId, u64> = HashMap::new();
    for (tid, n) in suffix.schedule() {
        *remaining.entry(tid).or_default() += n;
    }
    let fail = |m: &Machine, fault: Option<Fault>, steps: u64| ReplayReport {
        reproduced: false,
        fault_matches: false,
        diff: diff_dumps(&Coredump::capture_anyway(m), dump, 64),
        replay_fault: fault,
        steps_executed: steps,
    };

    for (tid, n) in suffix.schedule() {
        for _ in 0..n {
            match m.step_thread(tid) {
                Ok(_) => steps_executed += 1,
                Err(fault) => {
                    // Premature fault: the suffix is wrong.
                    return (fail(&m, Some(fault), steps_executed), m);
                }
            }
        }
        let rem = remaining.get_mut(&tid).expect("scheduled thread");
        *rem -= n;
        if *rem == 0 {
            // Settle the thread's dump-final status so joins and
            // deadlock detection behave (its halt/block step is not part
            // of the synthesized range).
            if let Some(dt) = dump.thread(tid) {
                let runnable = m.threads()[&tid].status == ThreadStatus::Runnable;
                let needs_settle = matches!(
                    dt.status,
                    ThreadStatus::Halted | ThreadStatus::BlockedOnLock(_)
                ) && runnable
                    && tid != dump.faulting_tid;
                if needs_settle {
                    if let Err(fault) = m.step_thread(tid) {
                        return (fail(&m, Some(fault), steps_executed), m);
                    }
                    steps_executed += 1;
                }
            }
        }
    }

    // The final faulting step.
    let replay_fault = if matches!(dump.fault, Fault::Deadlock { .. }) {
        // Drive the faulting thread into its blocking lock, then let the
        // machine detect the global deadlock.
        let _ = m.step_thread(dump.faulting_tid);
        steps_executed += 1;
        match m.run() {
            mvm_machine::Outcome::Faulted { fault, .. } => Some(fault),
            _ => None,
        }
    } else {
        match m.step_thread(dump.faulting_tid) {
            Err(fault) => {
                steps_executed += 1;
                Some(fault)
            }
            Ok(_) => {
                steps_executed += 1;
                None
            }
        }
    };

    let fault_matches = match (&replay_fault, &dump.fault) {
        (Some(a), b) => match (a, *b == *a) {
            // Deadlock participant sets may be enumerated in any order.
            (Fault::Deadlock { .. }, _) => matches!(dump.fault, Fault::Deadlock { .. }),
            (_, eq) => eq,
        },
        (None, _) => false,
    };
    let replay_dump = Coredump::capture_anyway(&m);
    let diff = diff_dumps(&replay_dump, dump, 64);
    let state_matches = diff.memory_bytes.is_empty()
        && diff.pcs.is_empty()
        && diff.registers.is_empty()
        && diff.thread_set.is_empty();
    (
        ReplayReport {
            reproduced: fault_matches && state_matches,
            fault_matches,
            diff,
            replay_fault,
            steps_executed,
        },
        m,
    )
}

/// One block-granular schedule event as concretely executed: where the
/// range started and ended, how many instructions ran, and every memory
/// write it performed `(addr, width, value)`, in program order.
///
/// A recorded trace stores one of these per schedule event; `verify`
/// replays against a (possibly modified) program and compares the
/// re-observed events against the recorded ones, reporting the point of
/// first difference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObservedEvent {
    /// Executing thread.
    pub tid: ThreadId,
    /// Pc at range start.
    pub start: Loc,
    /// Pc after the range.
    pub end: Loc,
    /// Instructions executed in the range.
    pub steps: u64,
    /// Memory writes performed, in order.
    pub writes: Vec<(u64, Width, u64)>,
}

json_struct!(ObservedEvent {
    tid,
    start,
    end,
    steps,
    writes
});

/// The point of first difference between a recorded execution and a
/// replay of it (typically against a modified program — the "did the
/// fix work?" verdict).
#[derive(Debug, Clone, PartialEq)]
pub struct Divergence {
    /// Index of the diverging schedule event. The final faulting step
    /// and the end-state comparison report as index `schedule.len()`.
    pub event: usize,
    /// The thread executing the diverging event.
    pub tid: ThreadId,
    /// What differed.
    pub kind: DivergenceKind,
}

json_struct!(Divergence { event, tid, kind });

/// What the replay did differently from the recording.
#[derive(Debug, Clone, PartialEq)]
pub enum DivergenceKind {
    /// The thread was at a different pc when the event began.
    StartLoc {
        /// Recorded start pc.
        expected: Loc,
        /// Replayed start pc.
        got: Loc,
    },
    /// The thread faulted before completing its scheduled instructions.
    PrematureFault {
        /// Instructions the recording executed in this event.
        expected_steps: u64,
        /// Instructions the replay completed before faulting.
        executed: u64,
        /// The fault hit.
        fault: Fault,
    },
    /// The event's nth memory write differed (or one side stopped
    /// writing). `None` means "no write at this index".
    Write {
        /// Index into the event's write sequence.
        index: usize,
        /// Recorded write, if any.
        expected: Option<(u64, Width, u64)>,
        /// Replayed write, if any.
        got: Option<(u64, Width, u64)>,
    },
    /// The thread ended the range at a different pc (control flow
    /// diverged without a differing write).
    EndLoc {
        /// Recorded end pc.
        expected: Loc,
        /// Replayed end pc.
        got: Loc,
    },
    /// The final step did not reproduce the recorded fault. `got:
    /// None` means the replay ran past the failure point — the
    /// recorded failure no longer happens (the fix worked).
    Fault {
        /// The recorded fault.
        expected: Fault,
        /// The fault the replay hit, if any.
        got: Option<Fault>,
    },
    /// The fault reproduced but the end state differs from the dump
    /// (counts from [`DumpDiff`]).
    FinalState {
        /// Differing memory bytes.
        memory_bytes: usize,
        /// Differing registers.
        registers: usize,
        /// Differing thread pcs.
        pcs: usize,
        /// Thread-set differences.
        threads: usize,
    },
}

json_enum!(DivergenceKind {
    StartLoc { expected: Loc, got: Loc },
    PrematureFault { expected_steps: u64, executed: u64, fault: Fault },
    Write {
        index: usize,
        expected: Option<(u64, Width, u64)>,
        got: Option<(u64, Width, u64)>
    },
    EndLoc { expected: Loc, got: Loc },
    Fault { expected: Fault, got: Option<Fault> },
    FinalState {
        memory_bytes: usize,
        registers: usize,
        pcs: usize,
        threads: usize
    },
});

fn write_str(w: &Option<(u64, Width, u64)>) -> String {
    match w {
        Some((addr, width, value)) => format!("[{addr:#x}] <- {value} ({width:?})"),
        None => "no write".to_string(),
    }
}

impl fmt::Display for DivergenceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DivergenceKind::StartLoc { expected, got } => {
                write!(f, "start pc mismatch: expected {expected}, got {got}")
            }
            DivergenceKind::PrematureFault {
                expected_steps,
                executed,
                fault,
            } => write!(
                f,
                "faulted after {executed}/{expected_steps} instructions: {fault:?}"
            ),
            DivergenceKind::Write {
                index,
                expected,
                got,
            } => write!(
                f,
                "write #{index}: expected {}, got {}",
                write_str(expected),
                write_str(got)
            ),
            DivergenceKind::EndLoc { expected, got } => {
                write!(f, "end pc mismatch: expected {expected}, got {got}")
            }
            DivergenceKind::Fault { expected, got } => match got {
                Some(g) => write!(f, "fault mismatch: expected {expected:?}, got {g:?}"),
                None => write!(
                    f,
                    "expected fault {expected:?} did not occur (execution continues)"
                ),
            },
            DivergenceKind::FinalState {
                memory_bytes,
                registers,
                pcs,
                threads,
            } => write!(
                f,
                "end state differs from dump: {memory_bytes} memory bytes, \
                 {registers} registers, {pcs} pcs, {threads} thread-set entries"
            ),
        }
    }
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "event {} (thread {}): {}",
            self.event, self.tid, self.kind
        )
    }
}

/// Replays a suffix while observing each schedule event ([`ObservedEvent`]
/// per event, with the concrete writes it performed).
///
/// Without `expected` this is plain recording: the returned events are
/// what a byte-identical replay executes. With `expected` (the events a
/// previous recording captured) the replay stops at the first event
/// that deviates — different start pc, premature fault, differing
/// write, different end pc, missing or different final fault, or a
/// final-state mismatch — and reports it as a [`Divergence`].
///
/// The driving loop mirrors [`replay_with_trace`] exactly (including
/// the settle steps for halted/blocked threads and the deadlock path)
/// so an unmodified program re-observes exactly what it recorded.
pub fn replay_observed(
    program: &Program,
    dump: &Coredump,
    suffix: &ExecutionSuffix,
    expected: Option<&[ObservedEvent]>,
) -> (ReplayReport, Vec<ObservedEvent>, Option<Divergence>) {
    let mut m = instantiate(program, dump, suffix, TraceLevel::Full);
    let mut steps_executed = 0u64;
    let mut observed: Vec<ObservedEvent> = Vec::new();
    let mut remaining: HashMap<ThreadId, u64> = HashMap::new();
    for (tid, n) in suffix.schedule() {
        *remaining.entry(tid).or_default() += n;
    }
    let fail = |m: &Machine, fault: Option<Fault>, steps: u64| ReplayReport {
        reproduced: false,
        fault_matches: false,
        diff: diff_dumps(&Coredump::capture_anyway(m), dump, 64),
        replay_fault: fault,
        steps_executed: steps,
    };
    let schedule = suffix.schedule();

    for (i, &(tid, n)) in schedule.iter().enumerate() {
        let exp = expected.and_then(|e| e.get(i));
        let start = m.threads()[&tid].pc();
        if let Some(e) = exp {
            if start != e.start {
                let div = Divergence {
                    event: i,
                    tid,
                    kind: DivergenceKind::StartLoc {
                        expected: e.start,
                        got: start,
                    },
                };
                return (fail(&m, None, steps_executed), observed, Some(div));
            }
        }
        let mark = m.tracer().events().len();
        let mut executed = 0u64;
        let mut premature: Option<Fault> = None;
        for _ in 0..n {
            match m.step_thread(tid) {
                Ok(_) => {
                    steps_executed += 1;
                    executed += 1;
                }
                Err(fault) => {
                    premature = Some(fault);
                    break;
                }
            }
        }
        let writes: Vec<(u64, Width, u64)> = m.tracer().events()[mark..]
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Mem {
                    kind: AccessKind::Write,
                    addr,
                    value,
                    width,
                    ..
                } => Some((*addr, *width, *value)),
                _ => None,
            })
            .collect();
        let end = m.threads()[&tid].pc();
        if let Some(fault) = premature {
            observed.push(ObservedEvent {
                tid,
                start,
                end,
                steps: executed,
                writes,
            });
            let div = Divergence {
                event: i,
                tid,
                kind: DivergenceKind::PrematureFault {
                    expected_steps: n,
                    executed,
                    fault: fault.clone(),
                },
            };
            return (fail(&m, Some(fault), steps_executed), observed, Some(div));
        }
        if let Some(e) = exp {
            if writes != e.writes {
                let idx = writes
                    .iter()
                    .zip(e.writes.iter())
                    .position(|(a, b)| a != b)
                    .unwrap_or(writes.len().min(e.writes.len()));
                let div = Divergence {
                    event: i,
                    tid,
                    kind: DivergenceKind::Write {
                        index: idx,
                        expected: e.writes.get(idx).copied(),
                        got: writes.get(idx).copied(),
                    },
                };
                observed.push(ObservedEvent {
                    tid,
                    start,
                    end,
                    steps: n,
                    writes,
                });
                return (fail(&m, None, steps_executed), observed, Some(div));
            }
            if end != e.end {
                let div = Divergence {
                    event: i,
                    tid,
                    kind: DivergenceKind::EndLoc {
                        expected: e.end,
                        got: end,
                    },
                };
                observed.push(ObservedEvent {
                    tid,
                    start,
                    end,
                    steps: n,
                    writes,
                });
                return (fail(&m, None, steps_executed), observed, Some(div));
            }
        }
        observed.push(ObservedEvent {
            tid,
            start,
            end,
            steps: n,
            writes,
        });
        let rem = remaining.get_mut(&tid).expect("scheduled thread");
        *rem -= n;
        if *rem == 0 {
            if let Some(dt) = dump.thread(tid) {
                let runnable = m.threads()[&tid].status == ThreadStatus::Runnable;
                let needs_settle = matches!(
                    dt.status,
                    ThreadStatus::Halted | ThreadStatus::BlockedOnLock(_)
                ) && runnable
                    && tid != dump.faulting_tid;
                if needs_settle {
                    if let Err(fault) = m.step_thread(tid) {
                        let div = Divergence {
                            event: i,
                            tid,
                            kind: DivergenceKind::PrematureFault {
                                expected_steps: n,
                                executed: n,
                                fault: fault.clone(),
                            },
                        };
                        return (fail(&m, Some(fault), steps_executed), observed, Some(div));
                    }
                    steps_executed += 1;
                }
            }
        }
    }

    // The final faulting step.
    let replay_fault = if matches!(dump.fault, Fault::Deadlock { .. }) {
        let _ = m.step_thread(dump.faulting_tid);
        steps_executed += 1;
        match m.run() {
            mvm_machine::Outcome::Faulted { fault, .. } => Some(fault),
            _ => None,
        }
    } else {
        match m.step_thread(dump.faulting_tid) {
            Err(fault) => {
                steps_executed += 1;
                Some(fault)
            }
            Ok(_) => {
                steps_executed += 1;
                None
            }
        }
    };

    let fault_matches = match (&replay_fault, &dump.fault) {
        (Some(a), b) => match (a, *b == *a) {
            (Fault::Deadlock { .. }, _) => matches!(dump.fault, Fault::Deadlock { .. }),
            (_, eq) => eq,
        },
        (None, _) => false,
    };
    let replay_dump = Coredump::capture_anyway(&m);
    let diff = diff_dumps(&replay_dump, dump, 64);
    let state_matches = diff.memory_bytes.is_empty()
        && diff.pcs.is_empty()
        && diff.registers.is_empty()
        && diff.thread_set.is_empty();
    let divergence = if expected.is_some() && !fault_matches {
        Some(Divergence {
            event: schedule.len(),
            tid: dump.faulting_tid,
            kind: DivergenceKind::Fault {
                expected: dump.fault.clone(),
                got: replay_fault.clone(),
            },
        })
    } else if expected.is_some() && !state_matches {
        Some(Divergence {
            event: schedule.len(),
            tid: dump.faulting_tid,
            kind: DivergenceKind::FinalState {
                memory_bytes: diff.memory_bytes.len(),
                registers: diff.registers.len(),
                pcs: diff.pcs.len(),
                threads: diff.thread_set.len(),
            },
        })
    } else {
        None
    };
    (
        ReplayReport {
            reproduced: fault_matches && state_matches,
            fault_matches,
            diff,
            replay_fault,
            steps_executed,
        },
        observed,
        divergence,
    )
}
