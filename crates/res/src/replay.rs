//! Deterministic replay of a synthesized suffix (paper §2.1).
//!
//! "To replay a suffix in a debugger like gdb, a special environment is
//! slipped underneath the debugger to instantiate Mi and replay Ti; to
//! the developer it looks as if the program deterministically runs into
//! the same failure."
//!
//! The replayer here is that environment: it boots a fresh machine,
//! instantiates the partial image `Mi` over the coredump's memory,
//! reconstructs thread contexts and allocator metadata at the suffix
//! start, pins the block-granular schedule and the inferred inputs, runs
//! forward, and finally verifies that the machine faults identically and
//! that its memory and thread state match the original dump byte for
//! byte.

use std::collections::{HashMap, VecDeque};

use mvm_core::{diff_dumps, Coredump, DumpDiff};
use mvm_isa::Program;
use mvm_machine::{
    AllocState,
    Fault,
    Frame,
    InputSource,
    Machine,
    MachineConfig,
    ThreadId,
    ThreadState,
    ThreadStatus,
    TraceLevel, //
};

use crate::suffix::ExecutionSuffix;

/// The outcome of replaying a suffix.
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// `true` when the replay reproduced the fault *and* the final state
    /// matches the coredump.
    pub reproduced: bool,
    /// `true` when the fault class and location matched.
    pub fault_matches: bool,
    /// Differences between the replayed state and the coredump.
    pub diff: DumpDiff,
    /// The fault the replay hit, if any.
    pub replay_fault: Option<Fault>,
    /// Instructions executed during the replay.
    pub steps_executed: u64,
}

/// Builds a machine positioned at the suffix start ("the environment
/// slipped underneath the debugger"), ready to be stepped.
///
/// Exposed separately from [`replay_suffix`] so debugging aids (§3.3)
/// can stop at intermediate points.
pub fn instantiate(
    program: &Program,
    dump: &Coredump,
    suffix: &ExecutionSuffix,
    trace: TraceLevel,
) -> Machine {
    let mut per_thread: HashMap<ThreadId, VecDeque<u64>> = HashMap::new();
    for (tid, vals) in &suffix.inputs {
        per_thread.insert(*tid, vals.iter().copied().collect());
    }
    let mut m = Machine::new(
        program.clone(),
        MachineConfig {
            input: InputSource::Scripted {
                per_thread,
                fallback: 0,
            },
            trace,
            ..MachineConfig::default()
        },
    );
    // Memory: the dump image (locations the suffix never touches are
    // unchanged by it) overlaid with the concretized `Mi` cells.
    *m.memory_mut() = dump.memory.clone();
    for (addr, width, value) in &suffix.initial_cells {
        m.memory_mut().write(*addr, *value, *width);
    }
    // Heap: the dump's allocation table minus the allocations the
    // suffix itself performs (address order is allocation order for the
    // bump allocator), with suffix-freed blocks resurrected.
    let suffix_allocs: usize = suffix.steps.iter().map(|s| s.allocs).sum();
    let keep = dump.heap_allocs.len().saturating_sub(suffix_allocs);
    m.heap_mut()
        .install(dump.heap_allocs.iter().take(keep).copied());
    for s in &suffix.steps {
        for base in &s.frees {
            m.heap_mut().set_state(*base, AllocState::Live);
        }
    }
    // Threads: dump frames below the start depth, a concretized frame at
    // the start position.
    m.threads_mut().clear();
    for (&tid, &(depth, loc)) in &suffix.start_positions {
        let dump_thread = dump.thread(tid).expect("dump thread");
        let mut frames: Vec<Frame> = dump_thread.frames[..depth].to_vec();
        let (reg_depth, regs) = &suffix.initial_regs[&tid];
        debug_assert_eq!(*reg_depth, depth);
        let template = &dump_thread.frames[depth.min(dump_thread.frames.len() - 1)];
        frames.push(Frame {
            func: loc.func,
            block: loc.block,
            inst: loc.inst,
            regs: regs.clone(),
            ret_reg: template.ret_reg,
        });
        m.install_thread(ThreadState {
            tid,
            frames,
            status: ThreadStatus::Runnable,
            inputs_consumed: 0,
        });
    }
    // Make sure thread-id space covers every dump thread (stack region
    // validity).
    for t in &dump.threads {
        if m.threads().contains_key(&t.tid) {
            continue;
        }
        m.install_thread(ThreadState {
            tid: t.tid,
            frames: t.frames.clone(),
            status: t.status,
            inputs_consumed: 0,
        });
    }
    m
}

/// Replays a suffix against its coredump and verifies reproduction.
pub fn replay_suffix(program: &Program, dump: &Coredump, suffix: &ExecutionSuffix) -> ReplayReport {
    replay_with_trace(program, dump, suffix, TraceLevel::Off).0
}

/// Replays and also returns the machine (with any requested trace) for
/// root-cause analysis.
pub fn replay_with_trace(
    program: &Program,
    dump: &Coredump,
    suffix: &ExecutionSuffix,
    trace: TraceLevel,
) -> (ReplayReport, Machine) {
    let mut m = instantiate(program, dump, suffix, trace);
    let mut steps_executed = 0u64;
    // Remaining scheduled steps per thread, to detect when a thread's
    // suffix work is done and its dump-final status (halted/blocked)
    // should be settled.
    let mut remaining: HashMap<ThreadId, u64> = HashMap::new();
    for (tid, n) in suffix.schedule() {
        *remaining.entry(tid).or_default() += n;
    }
    let fail = |m: &Machine, fault: Option<Fault>, steps: u64| ReplayReport {
        reproduced: false,
        fault_matches: false,
        diff: diff_dumps(&Coredump::capture_anyway(m), dump, 64),
        replay_fault: fault,
        steps_executed: steps,
    };

    for (tid, n) in suffix.schedule() {
        for _ in 0..n {
            match m.step_thread(tid) {
                Ok(_) => steps_executed += 1,
                Err(fault) => {
                    // Premature fault: the suffix is wrong.
                    return (fail(&m, Some(fault), steps_executed), m);
                }
            }
        }
        let rem = remaining.get_mut(&tid).expect("scheduled thread");
        *rem -= n;
        if *rem == 0 {
            // Settle the thread's dump-final status so joins and
            // deadlock detection behave (its halt/block step is not part
            // of the synthesized range).
            if let Some(dt) = dump.thread(tid) {
                let runnable = m.threads()[&tid].status == ThreadStatus::Runnable;
                let needs_settle = matches!(
                    dt.status,
                    ThreadStatus::Halted | ThreadStatus::BlockedOnLock(_)
                ) && runnable
                    && tid != dump.faulting_tid;
                if needs_settle {
                    if let Err(fault) = m.step_thread(tid) {
                        return (fail(&m, Some(fault), steps_executed), m);
                    }
                    steps_executed += 1;
                }
            }
        }
    }

    // The final faulting step.
    let replay_fault = if matches!(dump.fault, Fault::Deadlock { .. }) {
        // Drive the faulting thread into its blocking lock, then let the
        // machine detect the global deadlock.
        let _ = m.step_thread(dump.faulting_tid);
        steps_executed += 1;
        match m.run() {
            mvm_machine::Outcome::Faulted { fault, .. } => Some(fault),
            _ => None,
        }
    } else {
        match m.step_thread(dump.faulting_tid) {
            Err(fault) => {
                steps_executed += 1;
                Some(fault)
            }
            Ok(_) => {
                steps_executed += 1;
                None
            }
        }
    };

    let fault_matches = match (&replay_fault, &dump.fault) {
        (Some(a), b) => match (a, *b == *a) {
            // Deadlock participant sets may be enumerated in any order.
            (Fault::Deadlock { .. }, _) => matches!(dump.fault, Fault::Deadlock { .. }),
            (_, eq) => eq,
        },
        (None, _) => false,
    };
    let replay_dump = Coredump::capture_anyway(&m);
    let diff = diff_dumps(&replay_dump, dump, 64);
    let state_matches = diff.memory_bytes.is_empty()
        && diff.pcs.is_empty()
        && diff.registers.is_empty()
        && diff.thread_set.is_empty();
    (
        ReplayReport {
            reproduced: fault_matches && state_matches,
            fault_matches,
            diff,
            replay_fault,
            steps_executed,
        },
        m,
    )
}
