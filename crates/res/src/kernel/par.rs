//! Deterministic thread fan-out for embarrassingly parallel work.
//!
//! The engine's sharded speculation parallelizes *inside* one search;
//! corpus-scale evaluation (hundreds of generated programs, each an
//! independent synthesize) parallelizes *across* searches. Both must
//! honor the same contract: the thread count changes wall clock only,
//! never a result byte. [`parallel_map`] delivers that by making the
//! output a pure positional function of the input — workers race only
//! for *which* index they process next, and every result is placed by
//! its input index before the call returns.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Worker count from the machine's available parallelism, clamped to
/// `1..=8` — the same policy the engine's `workers_auto()` uses (beyond
/// 8 the speculative shards mostly duplicate work, and corpus runs
/// saturate memory bandwidth first).
pub fn auto_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .clamp(1, 8)
}

/// Maps `f` over `items` on up to `threads` OS threads, returning the
/// results in input order.
///
/// Work is claimed from a shared atomic index (dynamic scheduling, so a
/// slow item does not stall a whole static chunk), but the output vector
/// is assembled positionally: `out[i] == f(i, &items[i])` regardless of
/// thread count or claim interleaving. `f` must itself be deterministic
/// for the call to be; nothing here injects ordering dependence.
///
/// # Panics
///
/// Propagates the first worker panic after all threads are joined.
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = threads.max(1).min(items.len().max(1));
    if threads == 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let mut out: Vec<Option<R>> = Vec::with_capacity(items.len());
    out.resize_with(items.len(), || None);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut got: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        got.push((i, f(i, &items[i])));
                    }
                    got
                })
            })
            .collect();
        let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
        for h in handles {
            match h.join() {
                Ok(chunk) => {
                    for (i, r) in chunk {
                        out[i] = Some(r);
                    }
                }
                Err(e) => panic = panic.or(Some(e)),
            }
        }
        if let Some(e) = panic {
            std::panic::resume_unwind(e);
        }
    });
    out.into_iter()
        .map(|o| o.expect("every index claimed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_positional_at_any_thread_count() {
        let items: Vec<u64> = (0..97).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1usize, 2, 3, 8, 64] {
            let got = parallel_map(&items, threads, |_, x| x * x);
            assert_eq!(got, expect, "threads = {threads}");
        }
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let got: Vec<u64> = parallel_map(&[] as &[u64], 4, |_, x| *x);
        assert!(got.is_empty());
    }

    #[test]
    fn index_argument_matches_position() {
        let items = ["a", "b", "c", "d"];
        let got = parallel_map(&items, 2, |i, s| format!("{i}:{s}"));
        assert_eq!(got, vec!["0:a", "1:b", "2:c", "3:d"]);
    }

    #[test]
    fn auto_workers_is_clamped() {
        let n = auto_workers();
        assert!((1..=8).contains(&n));
    }
}
