//! The layered exploration kernel.
//!
//! The paper's core loop (§2.3–§2.4) is a budgeted backward search:
//! pop a node, form predecessor hypotheses, test each by forward
//! symbolic execution, keep the compatible children, repeat. The kernel
//! factors that loop out of the RES engine so the same machinery drives
//! the forward-ES baseline (making E3 apples-to-apples) and so search
//! strategy, budgets, and solver accounting are each one seam:
//!
//! * [`budget`] — one [`Budget`] over nodes, per-hypothesis
//!   instructions, solver assignments, and wall clock; every cutoff is
//!   a [`CutReason`].
//! * [`frontier`] — pluggable exploration orders ([`Dfs`] is
//!   byte-identical to the historical engine; [`Bfs`] and [`BestFirst`]
//!   are alternatives).
//! * [`sharded`] — [`ShardedFrontier`], a deterministic first-branch
//!   partitioner that gives N speculative workers disjoint subtrees.
//! * [`stats`] — [`KernelStats`] plus [`ParallelReport`] for sharded
//!   runs.
//! * the trait seams below — hypothesis generation
//!   ([`HypothesisGen`]), state transformation ([`StateTransform`]:
//!   havoc + forward exec), artifact completion ([`Finalize`]), and the
//!   `S' ⊇ Spost` compatibility check ([`CompatCheck`]).
//!
//! [`explore`] is the loop itself, generic over a driver implementing
//! the seams.

pub mod budget;
pub mod frontier;
pub mod par;
pub mod sharded;
pub mod stats;

pub use budget::{Budget, BudgetMeter, CutReason};
pub use frontier::{BestFirst, Bfs, Dfs, Frontier, FrontierKind, NodeScore};
pub use par::{auto_workers, parallel_map};
pub use sharded::ShardedFrontier;
pub use stats::{AbandonedSpace, KernelStats, ParallelReport};
// Re-exported so kernel drivers in other crates can call [`explore`]
// without a manifest dependency on the tracing crate.
pub use res_obs::{Recorder, Span};

use mvm_symbolic::{ExprRef, SolveResult, SolverSession, UnknownReason};

/// Produces predecessor (or, for forward search, successor) hypotheses
/// for a node.
pub trait HypothesisGen {
    /// A point in the search space.
    type Node;
    /// One hypothesis about how to extend it.
    type Candidate;

    /// Enumerates the hypotheses for `node`, in deterministic order.
    fn generate(&mut self, node: &Self::Node) -> Vec<Self::Candidate>;
}

/// Tests a hypothesis and, when it survives, builds the child node.
///
/// For RES this is havoc + forward symbolic execution of the
/// hypothesized range plus the global satisfiability check; for the
/// forward-ES baseline it is a concrete machine run.
pub trait StateTransform: HypothesisGen {
    /// Executes the hypothesis. `None` rejects it (the transform
    /// records the rejection reason in `stats`); `Some` yields the
    /// child and its frontier score.
    fn transform(
        &mut self,
        node: &Self::Node,
        cand: &Self::Candidate,
        stats: &mut KernelStats,
    ) -> Option<(NodeScore, Self::Node)>;

    /// Cumulative solver assignments spent so far, for
    /// [`Budget::max_solver_assignments`] enforcement.
    fn solver_spent(&self) -> u64 {
        0
    }
}

/// Turns a finished node into a search artifact.
pub trait Finalize: HypothesisGen {
    /// What the search produces (an `ExecutionSuffix` for RES, a
    /// witness schedule for forward-ES).
    type Artifact;

    /// Depth of `node` — the kernel's horizon check compares this
    /// against the configured maximum.
    fn depth(&self, node: &Self::Node) -> usize;

    /// Completes `node` into an artifact, or rejects it late (counting
    /// the failure in `stats`).
    fn finalize(&mut self, node: &Self::Node, stats: &mut KernelStats) -> Option<Self::Artifact>;
}

/// Verdict of a compatibility check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompatVerdict {
    /// A witness exists: the hypothesized earlier state can produce the
    /// observed later state (`S' ⊇ Spost` holds).
    Compatible,
    /// Proven incompatible.
    Incompatible,
    /// The solver could not decide; RES keeps the hypothesis but flags
    /// the suffix approximate.
    Undecided(UnknownReason),
}

/// The `S' ⊇ Spost` compatibility check (paper §2.4) as a seam: given
/// the accumulated constraint set, is the hypothesized execution
/// consistent with everything reconstructed after it?
pub trait CompatCheck {
    /// Checks the conjunction of `constraints`.
    fn compatible(&self, constraints: &[ExprRef]) -> CompatVerdict;
}

/// The standard implementation: ask the (memoizing) solver session.
pub struct SessionCompat<'s> {
    session: &'s SolverSession,
}

impl<'s> SessionCompat<'s> {
    /// Wraps a session.
    pub fn new(session: &'s SolverSession) -> Self {
        SessionCompat { session }
    }
}

impl CompatCheck for SessionCompat<'_> {
    fn compatible(&self, constraints: &[ExprRef]) -> CompatVerdict {
        match self.session.check(constraints) {
            SolveResult::Sat(_) => CompatVerdict::Compatible,
            SolveResult::Unsat => CompatVerdict::Incompatible,
            SolveResult::Unknown(reason) => CompatVerdict::Undecided(reason),
        }
    }
}

/// Limits for one [`explore`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExploreConfig {
    /// Resource budgets.
    pub budget: Budget,
    /// Maximum node depth; nodes at the horizon are finalized, not
    /// expanded.
    pub max_depth: usize,
    /// Stop after this many artifacts.
    pub max_artifacts: usize,
}

/// The exploration loop.
///
/// Replicates the historical engine's order of operations exactly (the
/// golden suffix fixture depends on it): pop; stop if enough artifacts;
/// admit against the budget (recording the cut and the abandoned
/// frontier on failure); count the expansion; finalize at the depth
/// horizon; generate hypotheses (finalizing childless nodes); transform
/// each; finalize cul-de-sacs of nonzero depth; hand surviving children
/// to the frontier.
///
/// `recorder` is a strictly passive observer (pass an already-scoped
/// handle, e.g. `rec.scoped("kernel")`, or [`Recorder::disabled`]):
/// the loop never reads it, so enabling tracing cannot perturb the
/// search order.
pub fn explore<D>(
    driver: &mut D,
    root: D::Node,
    config: &ExploreConfig,
    frontier: &mut dyn Frontier<D::Node>,
    stats: &mut KernelStats,
    recorder: &Recorder,
) -> Vec<D::Artifact>
where
    D: StateTransform + Finalize,
{
    let meter = BudgetMeter::start();
    let mut artifacts = Vec::new();
    frontier.extend(vec![(NodeScore::root(), root)]);
    recorder.counter("frontier_push", 1);
    while let Some((_, node)) = frontier.pop() {
        recorder.counter("frontier_pop", 1);
        if artifacts.len() >= config.max_artifacts {
            break;
        }
        if let Some(cut) = config
            .budget
            .admit(&meter, stats.nodes_expanded, driver.solver_spent())
        {
            stats.cut = Some(cut);
            stats.abandoned.record(driver.depth(&node));
            for (_, n) in frontier.drain() {
                stats.abandoned.record(driver.depth(&n));
            }
            let abandoned = stats.abandoned.nodes;
            recorder.event_with("cut", || {
                vec![
                    ("reason".into(), format!("{cut:?}")),
                    ("abandoned".into(), abandoned.to_string()),
                ]
            });
            break;
        }
        stats.nodes_expanded += 1;
        recorder.counter("nodes_expanded", 1);
        let depth = driver.depth(&node);
        stats.deepest = stats.deepest.max(depth);

        if depth >= config.max_depth {
            if let Some(a) = driver.finalize(&node, stats) {
                artifacts.push(a);
                recorder.counter("artifacts", 1);
            }
            continue;
        }
        let candidates = driver.generate(&node);
        if candidates.is_empty() {
            if let Some(a) = driver.finalize(&node, stats) {
                artifacts.push(a);
                recorder.counter("artifacts", 1);
            }
            continue;
        }
        recorder.counter("hypotheses", candidates.len() as u64);
        let mut children = Vec::new();
        for cand in candidates {
            stats.hypotheses += 1;
            if let Some(child) = driver.transform(&node, &cand, stats) {
                children.push(child);
            }
        }
        if children.is_empty() {
            // Cul-de-sac: the node itself is the longest suffix on this
            // path.
            if depth > 0 {
                if let Some(a) = driver.finalize(&node, stats) {
                    artifacts.push(a);
                    recorder.counter("artifacts", 1);
                }
            }
            continue;
        }
        recorder.counter("frontier_push", children.len() as u64);
        frontier.extend(children);
    }
    artifacts
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy driver over a binary tree of u32 paths: node `p` has
    /// children `2p` and `2p+1`; leaves at the depth horizon finalize
    /// to their path value.
    struct TreeDriver {
        reject_odd: bool,
    }

    fn bit_depth(n: u32) -> usize {
        (31 - n.leading_zeros()) as usize
    }

    impl HypothesisGen for TreeDriver {
        type Node = u32;
        type Candidate = u32;
        fn generate(&mut self, node: &u32) -> Vec<u32> {
            vec![node * 2, node * 2 + 1]
        }
    }

    impl StateTransform for TreeDriver {
        fn transform(
            &mut self,
            _node: &u32,
            cand: &u32,
            stats: &mut KernelStats,
        ) -> Option<(NodeScore, u32)> {
            if self.reject_odd && cand % 2 == 1 {
                stats.rejected_structural += 1;
                return None;
            }
            stats.accepted += 1;
            Some((
                NodeScore {
                    priority: (cand % 2) as u8,
                    depth: bit_depth(*cand),
                    crumbs_matched: 0,
                },
                *cand,
            ))
        }
    }

    impl Finalize for TreeDriver {
        type Artifact = u32;
        fn depth(&self, node: &u32) -> usize {
            bit_depth(*node)
        }
        fn finalize(&mut self, node: &u32, _stats: &mut KernelStats) -> Option<u32> {
            Some(*node)
        }
    }

    fn run(
        driver: &mut TreeDriver,
        kind: FrontierKind,
        config: &ExploreConfig,
    ) -> (Vec<u32>, KernelStats) {
        let mut frontier = kind.build();
        let mut stats = KernelStats::default();
        let artifacts = explore(
            driver,
            1u32,
            config,
            frontier.as_mut(),
            &mut stats,
            &Recorder::disabled(),
        );
        (artifacts, stats)
    }

    #[test]
    fn dfs_explores_best_priority_first() {
        let mut d = TreeDriver { reject_odd: false };
        let cfg = ExploreConfig {
            budget: Budget::default(),
            max_depth: 2,
            max_artifacts: 1,
        };
        let (artifacts, stats) = run(&mut d, FrontierKind::Dfs, &cfg);
        // Even children score priority 0, so DFS dives 1 → 2 → 4.
        assert_eq!(artifacts, vec![4]);
        assert_eq!(stats.cut, None);
        assert!(stats.deepest >= 2);
    }

    #[test]
    fn budget_cut_records_abandoned_frontier() {
        let mut d = TreeDriver { reject_odd: false };
        let cfg = ExploreConfig {
            budget: Budget {
                max_nodes: 2,
                ..Budget::default()
            },
            max_depth: 8,
            max_artifacts: 64,
        };
        let (artifacts, stats) = run(&mut d, FrontierKind::Dfs, &cfg);
        assert!(artifacts.is_empty());
        assert_eq!(stats.cut, Some(CutReason::Nodes));
        assert_eq!(stats.nodes_expanded, 2);
        // After 2 expansions the frontier holds 3 entries; all 3 are
        // abandoned (the popped one plus the drained rest).
        assert_eq!(stats.abandoned.nodes, 3);
        assert!(stats.abandoned.max_depth >= stats.abandoned.min_depth);
    }

    #[test]
    fn childless_nodes_finalize_as_cul_de_sacs() {
        let mut d = TreeDriver { reject_odd: true };
        let cfg = ExploreConfig {
            budget: Budget::default(),
            max_depth: 3,
            max_artifacts: 64,
        };
        let (artifacts, stats) = run(&mut d, FrontierKind::Dfs, &cfg);
        // Only even children survive: the single chain 1→2→4→8 (node 8
        // sits at the depth horizon, so 3 expansions reject odd kids).
        assert_eq!(artifacts, vec![8]);
        assert_eq!(stats.rejected_structural, 3);
    }

    #[test]
    fn artifact_cap_stops_the_search() {
        let mut d = TreeDriver { reject_odd: false };
        let cfg = ExploreConfig {
            budget: Budget::default(),
            max_depth: 3,
            max_artifacts: 2,
        };
        let (artifacts, stats) = run(&mut d, FrontierKind::Bfs, &cfg);
        assert_eq!(artifacts.len(), 2);
        assert_eq!(stats.cut, None, "artifact cap is not a budget cut");
    }
}
