//! The layered exploration kernel.
//!
//! The paper's core loop (§2.3–§2.4) is a budgeted backward search:
//! pop a node, form predecessor hypotheses, test each by forward
//! symbolic execution, keep the compatible children, repeat. The kernel
//! factors that loop out of the RES engine so the same machinery drives
//! the forward-ES baseline (making E3 apples-to-apples) and so search
//! strategy, budgets, and solver accounting are each one seam:
//!
//! * [`budget`] — one [`Budget`] over nodes, per-hypothesis
//!   instructions, solver assignments, and wall clock; every cutoff is
//!   a [`CutReason`].
//! * [`frontier`] — pluggable exploration orders ([`Dfs`] is
//!   byte-identical to the historical engine; [`Bfs`] and [`BestFirst`]
//!   are alternatives).
//! * [`sharded`] — [`ShardedFrontier`], a deterministic first-branch
//!   partitioner that gives N speculative workers disjoint subtrees.
//! * [`stats`] — [`KernelStats`] plus [`ParallelReport`] for sharded
//!   runs.
//! * the trait seams below — hypothesis generation
//!   ([`HypothesisGen`]), state transformation ([`StateTransform`]:
//!   havoc + forward exec), artifact completion ([`Finalize`]), and the
//!   `S' ⊇ Spost` compatibility check ([`CompatCheck`]).
//!
//! [`explore`] is the loop itself, generic over a driver implementing
//! the seams.

pub mod budget;
pub mod frontier;
pub mod par;
pub mod sharded;
pub mod stats;
pub mod verdict;

pub use budget::{Budget, BudgetMeter, CutReason};
pub use frontier::{BestFirst, Bfs, Dfs, EnumPath, Frontier, FrontierKind, Indexed, NodeScore};
pub use par::{auto_workers, parallel_map};
pub use sharded::ShardedFrontier;
pub use stats::{AbandonedSpace, KernelStats, ParallelReport};
pub use verdict::{skip_admissible, SpeculativeYield, VerdictCollector, YieldProbe};
// Re-exported so kernel drivers in other crates can call [`explore`]
// without a manifest dependency on the tracing crate.
pub use res_obs::{Recorder, Span};

use mvm_symbolic::{ExprRef, SolveResult, SolverSession, SubtreeStats, UnknownReason, VerdictKind};

/// Produces predecessor (or, for forward search, successor) hypotheses
/// for a node.
pub trait HypothesisGen {
    /// A point in the search space.
    type Node;
    /// One hypothesis about how to extend it.
    type Candidate;

    /// Enumerates the hypotheses for `node`, in deterministic order.
    fn generate(&mut self, node: &Self::Node) -> Vec<Self::Candidate>;
}

/// Tests a hypothesis and, when it survives, builds the child node.
///
/// For RES this is havoc + forward symbolic execution of the
/// hypothesized range plus the global satisfiability check; for the
/// forward-ES baseline it is a concrete machine run.
pub trait StateTransform: HypothesisGen {
    /// Executes the hypothesis. `None` rejects it (the transform
    /// records the rejection reason in `stats`); `Some` yields the
    /// child and its frontier score.
    fn transform(
        &mut self,
        node: &Self::Node,
        cand: &Self::Candidate,
        stats: &mut KernelStats,
    ) -> Option<(NodeScore, Self::Node)>;

    /// Cumulative solver assignments spent so far, for
    /// [`Budget::max_solver_assignments`] enforcement.
    fn solver_spent(&self) -> u64 {
        0
    }

    /// Cumulative driver-side accounting (solver assignments, private
    /// solver answers, symbols minted) sampled around each expansion so
    /// a [`VerdictCollector`] can attribute exact per-subtree costs.
    /// Drivers without solver state keep the all-zero default.
    fn yield_probe(&self) -> YieldProbe {
        YieldProbe::default()
    }

    /// Called when the kernel skips a certified-exhausted subtree in
    /// place of exploring it. Drivers that allocate global state during
    /// exploration (the RES driver mints symbolic-variable ids) must
    /// advance that state by the subtree's recorded consumption so
    /// everything explored *after* the skip is byte-identical to a full
    /// run.
    fn on_subtree_skipped(&mut self, skipped: &SubtreeStats) {
        let _ = skipped;
    }
}

/// Turns a finished node into a search artifact.
pub trait Finalize: HypothesisGen {
    /// What the search produces (an `ExecutionSuffix` for RES, a
    /// witness schedule for forward-ES).
    type Artifact;

    /// Depth of `node` — the kernel's horizon check compares this
    /// against the configured maximum.
    fn depth(&self, node: &Self::Node) -> usize;

    /// Completes `node` into an artifact, or rejects it late (counting
    /// the failure in `stats`).
    fn finalize(&mut self, node: &Self::Node, stats: &mut KernelStats) -> Option<Self::Artifact>;
}

/// Verdict of a compatibility check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompatVerdict {
    /// A witness exists: the hypothesized earlier state can produce the
    /// observed later state (`S' ⊇ Spost` holds).
    Compatible,
    /// Proven incompatible.
    Incompatible,
    /// The solver could not decide; RES keeps the hypothesis but flags
    /// the suffix approximate.
    Undecided(UnknownReason),
}

/// The `S' ⊇ Spost` compatibility check (paper §2.4) as a seam: given
/// the accumulated constraint set, is the hypothesized execution
/// consistent with everything reconstructed after it?
pub trait CompatCheck {
    /// Checks the conjunction of `constraints`.
    fn compatible(&self, constraints: &[ExprRef]) -> CompatVerdict;
}

/// The standard implementation: ask the (memoizing) solver session.
pub struct SessionCompat<'s> {
    session: &'s SolverSession,
}

impl<'s> SessionCompat<'s> {
    /// Wraps a session.
    pub fn new(session: &'s SolverSession) -> Self {
        SessionCompat { session }
    }
}

impl CompatCheck for SessionCompat<'_> {
    fn compatible(&self, constraints: &[ExprRef]) -> CompatVerdict {
        match self.session.check(constraints) {
            SolveResult::Sat(_) => CompatVerdict::Compatible,
            SolveResult::Unsat => CompatVerdict::Incompatible,
            SolveResult::Unknown(reason) => CompatVerdict::Undecided(reason),
        }
    }
}

/// Limits for one [`explore`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExploreConfig {
    /// Resource budgets.
    pub budget: Budget,
    /// Maximum node depth; nodes at the horizon are finalized, not
    /// expanded.
    pub max_depth: usize,
    /// Stop after this many artifacts.
    pub max_artifacts: usize,
}

/// Snapshot of the kernel counters a [`VerdictCollector`] attributes
/// per-node; taken before an expansion, settled after it.
struct ExpansionMark {
    counters: SubtreeStats,
    probe: YieldProbe,
    artifacts: usize,
}

fn counter_image(stats: &KernelStats) -> SubtreeStats {
    SubtreeStats {
        nodes: stats.nodes_expanded,
        hypotheses: stats.hypotheses,
        accepted: stats.accepted,
        rejected_structural: stats.rejected_structural,
        rejected_exec: stats.rejected_exec,
        rejected_solver: stats.rejected_solver,
        rejected_lbr: stats.rejected_lbr,
        rejected_log: stats.rejected_log,
        rejected_budget: stats.rejected_budget,
        unknown_accepted: stats.unknown_accepted,
        unknown_accepted_budget: stats.unknown_accepted_budget,
        unknown_accepted_incomplete: stats.unknown_accepted_incomplete,
        finalize_failed: stats.finalize_failed,
        artifacts: 0,
        deepest: 0,
        assignments: 0,
        syms: 0,
    }
}

impl ExpansionMark {
    fn take<D: StateTransform>(driver: &D, stats: &KernelStats, artifacts: usize) -> Self {
        ExpansionMark {
            counters: counter_image(stats),
            probe: driver.yield_probe(),
            artifacts,
        }
    }

    /// Per-node accounting since [`take`](Self::take), plus whether a
    /// non-equivariant solver answer was consumed (which taints every
    /// enclosing certificate frame).
    fn settle<D: StateTransform>(
        &self,
        driver: &D,
        stats: &KernelStats,
        artifacts: usize,
        depth: usize,
    ) -> (SubtreeStats, bool) {
        let after = counter_image(stats);
        let probe = driver.yield_probe();
        let b = &self.counters;
        let node_stats = SubtreeStats {
            nodes: after.nodes - b.nodes,
            hypotheses: after.hypotheses - b.hypotheses,
            accepted: after.accepted - b.accepted,
            rejected_structural: after.rejected_structural - b.rejected_structural,
            rejected_exec: after.rejected_exec - b.rejected_exec,
            rejected_solver: after.rejected_solver - b.rejected_solver,
            rejected_lbr: after.rejected_lbr - b.rejected_lbr,
            rejected_log: after.rejected_log - b.rejected_log,
            rejected_budget: after.rejected_budget - b.rejected_budget,
            unknown_accepted: after.unknown_accepted - b.unknown_accepted,
            unknown_accepted_budget: after.unknown_accepted_budget - b.unknown_accepted_budget,
            unknown_accepted_incomplete: after.unknown_accepted_incomplete
                - b.unknown_accepted_incomplete,
            finalize_failed: after.finalize_failed - b.finalize_failed,
            artifacts: (artifacts - self.artifacts) as u64,
            deepest: depth as u64,
            assignments: probe.assignments - self.probe.assignments,
            syms: probe.syms - self.probe.syms,
        };
        (
            node_stats,
            probe.private_results > self.probe.private_results,
        )
    }
}

/// The exploration loop.
///
/// Replicates the historical engine's order of operations exactly (the
/// golden suffix fixture depends on it): pop; stop if enough artifacts;
/// admit against the budget (recording the cut and the abandoned
/// frontier on failure); count the expansion; finalize at the depth
/// horizon; generate hypotheses (finalizing childless nodes); transform
/// each; finalize cul-de-sacs of nonzero depth; hand surviving children
/// to the frontier.
///
/// Every node is threaded through the frontier as an [`Indexed`]
/// wrapper carrying its canonical [`EnumPath`] (child index = candidate
/// position in `generate()` order, counting rejected candidates), which
/// is what lets `yld` do its two jobs:
///
/// * **consult** — when the popped node's path is certified
///   [`VerdictKind::Exhausted`] in `yld.consult` and the skip is
///   [admissible](skip_admissible) under the budget, the subtree is not
///   explored: its certified [`SubtreeStats`] fold into
///   `stats.skipped`, the driver advances its allocator state
///   ([`StateTransform::on_subtree_skipped`]), and the loop moves on.
///   Budget admission runs on *effective* node counts
///   (`nodes_expanded + skipped.nodes`), so cuts fire at exactly the
///   positions a full run would cut.
/// * **collect** — a [`VerdictCollector`] observes pops, expansions,
///   and extends, and is sealed (aborted on a budget cut or the
///   artifact cap) before returning.
///
/// `recorder` is a strictly passive observer (pass an already-scoped
/// handle, e.g. `rec.scoped("kernel")`, or [`Recorder::disabled`]):
/// the loop never reads it, so enabling tracing cannot perturb the
/// search order.
pub fn explore<D>(
    driver: &mut D,
    root: D::Node,
    config: &ExploreConfig,
    frontier: &mut dyn Frontier<Indexed<D::Node>>,
    stats: &mut KernelStats,
    recorder: &Recorder,
    mut yld: SpeculativeYield<'_>,
) -> Vec<D::Artifact>
where
    D: StateTransform + Finalize,
{
    let meter = BudgetMeter::start();
    let mut artifacts: Vec<D::Artifact> = Vec::new();
    let mut aborted = false;
    frontier.extend(vec![(
        NodeScore::root(),
        Indexed {
            path: EnumPath::root(),
            node: root,
        },
    )]);
    recorder.counter("frontier_push", 1);
    while let Some((_, Indexed { path, node })) = frontier.pop() {
        recorder.counter("frontier_pop", 1);
        // The pop alone proves every frame it lies outside of fully
        // explored, so close frames before any break below.
        if let Some(c) = yld.collector.as_deref_mut() {
            c.on_pop(&path);
        }
        if artifacts.len() >= config.max_artifacts {
            aborted = true;
            break;
        }
        if let Some(cut) = config.budget.admit(
            &meter,
            stats.nodes_expanded + stats.skipped.nodes,
            driver.solver_spent(),
        ) {
            stats.cut = Some(cut);
            stats.abandoned.record(driver.depth(&node));
            for (_, n) in frontier.drain() {
                stats.abandoned.record(driver.depth(&n.node));
            }
            let abandoned = stats.abandoned.nodes;
            recorder.event_with("cut", || {
                vec![
                    ("reason".into(), format!("{cut:?}")),
                    ("abandoned".into(), abandoned.to_string()),
                ]
            });
            aborted = true;
            break;
        }
        if let Some(v) = yld.consult.and_then(|vs| vs.get(path.as_slice())) {
            if v.kind == VerdictKind::Exhausted && skip_admissible(&config.budget, stats, v) {
                stats.skipped_subtrees += 1;
                stats.skipped.absorb(&v.stats);
                stats.deepest = stats.deepest.max(v.stats.deepest as usize);
                driver.on_subtree_skipped(&v.stats);
                if let Some(c) = yld.collector.as_deref_mut() {
                    c.on_skip(v);
                }
                continue;
            }
        }
        let mark = yld
            .collector
            .is_some()
            .then(|| ExpansionMark::take(driver, stats, artifacts.len()));
        stats.nodes_expanded += 1;
        recorder.counter("nodes_expanded", 1);
        let depth = driver.depth(&node);
        stats.deepest = stats.deepest.max(depth);

        let children = 'expand: {
            if depth >= config.max_depth {
                if let Some(a) = driver.finalize(&node, stats) {
                    artifacts.push(a);
                    recorder.counter("artifacts", 1);
                }
                break 'expand Vec::new();
            }
            let candidates = driver.generate(&node);
            if candidates.is_empty() {
                if let Some(a) = driver.finalize(&node, stats) {
                    artifacts.push(a);
                    recorder.counter("artifacts", 1);
                }
                break 'expand Vec::new();
            }
            recorder.counter("hypotheses", candidates.len() as u64);
            let mut children = Vec::new();
            for (index, cand) in candidates.iter().enumerate() {
                stats.hypotheses += 1;
                if let Some((score, child)) = driver.transform(&node, cand, stats) {
                    children.push((
                        score,
                        Indexed {
                            path: path.child(index as u32),
                            node: child,
                        },
                    ));
                }
            }
            if children.is_empty() {
                // Cul-de-sac: the node itself is the longest suffix on
                // this path.
                if depth > 0 {
                    if let Some(a) = driver.finalize(&node, stats) {
                        artifacts.push(a);
                        recorder.counter("artifacts", 1);
                    }
                }
                break 'expand Vec::new();
            }
            children
        };
        if let Some(c) = yld.collector.as_deref_mut() {
            let mark = mark.expect("mark taken when collector present");
            c.open(&path);
            let (node_stats, tainted) = mark.settle(driver, stats, artifacts.len(), depth);
            c.attribute(&node_stats, tainted);
            c.on_extend(children.len());
        }
        if !children.is_empty() {
            recorder.counter("frontier_push", children.len() as u64);
            frontier.extend(children);
        }
    }
    if let Some(c) = yld.collector.as_deref_mut() {
        c.seal(aborted);
    }
    artifacts
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy driver over a binary tree of u32 paths: node `p` has
    /// children `2p` and `2p+1`; leaves at the depth horizon finalize
    /// to their path value.
    struct TreeDriver {
        reject_odd: bool,
    }

    fn bit_depth(n: u32) -> usize {
        (31 - n.leading_zeros()) as usize
    }

    impl HypothesisGen for TreeDriver {
        type Node = u32;
        type Candidate = u32;
        fn generate(&mut self, node: &u32) -> Vec<u32> {
            vec![node * 2, node * 2 + 1]
        }
    }

    impl StateTransform for TreeDriver {
        fn transform(
            &mut self,
            _node: &u32,
            cand: &u32,
            stats: &mut KernelStats,
        ) -> Option<(NodeScore, u32)> {
            if self.reject_odd && cand % 2 == 1 {
                stats.rejected_structural += 1;
                return None;
            }
            stats.accepted += 1;
            Some((
                NodeScore {
                    priority: (cand % 2) as u8,
                    depth: bit_depth(*cand),
                    crumbs_matched: 0,
                },
                *cand,
            ))
        }
    }

    impl Finalize for TreeDriver {
        type Artifact = u32;
        fn depth(&self, node: &u32) -> usize {
            bit_depth(*node)
        }
        fn finalize(&mut self, node: &u32, _stats: &mut KernelStats) -> Option<u32> {
            Some(*node)
        }
    }

    fn run(
        driver: &mut TreeDriver,
        kind: FrontierKind,
        config: &ExploreConfig,
    ) -> (Vec<u32>, KernelStats) {
        let mut frontier = kind.build();
        let mut stats = KernelStats::default();
        let artifacts = explore(
            driver,
            1u32,
            config,
            frontier.as_mut(),
            &mut stats,
            &Recorder::disabled(),
            SpeculativeYield::none(),
        );
        (artifacts, stats)
    }

    #[test]
    fn dfs_explores_best_priority_first() {
        let mut d = TreeDriver { reject_odd: false };
        let cfg = ExploreConfig {
            budget: Budget::default(),
            max_depth: 2,
            max_artifacts: 1,
        };
        let (artifacts, stats) = run(&mut d, FrontierKind::Dfs, &cfg);
        // Even children score priority 0, so DFS dives 1 → 2 → 4.
        assert_eq!(artifacts, vec![4]);
        assert_eq!(stats.cut, None);
        assert!(stats.deepest >= 2);
    }

    #[test]
    fn budget_cut_records_abandoned_frontier() {
        let mut d = TreeDriver { reject_odd: false };
        let cfg = ExploreConfig {
            budget: Budget {
                max_nodes: 2,
                ..Budget::default()
            },
            max_depth: 8,
            max_artifacts: 64,
        };
        let (artifacts, stats) = run(&mut d, FrontierKind::Dfs, &cfg);
        assert!(artifacts.is_empty());
        assert_eq!(stats.cut, Some(CutReason::Nodes));
        assert_eq!(stats.nodes_expanded, 2);
        // After 2 expansions the frontier holds 3 entries; all 3 are
        // abandoned (the popped one plus the drained rest).
        assert_eq!(stats.abandoned.nodes, 3);
        assert!(stats.abandoned.max_depth >= stats.abandoned.min_depth);
    }

    #[test]
    fn childless_nodes_finalize_as_cul_de_sacs() {
        let mut d = TreeDriver { reject_odd: true };
        let cfg = ExploreConfig {
            budget: Budget::default(),
            max_depth: 3,
            max_artifacts: 64,
        };
        let (artifacts, stats) = run(&mut d, FrontierKind::Dfs, &cfg);
        // Only even children survive: the single chain 1→2→4→8 (node 8
        // sits at the depth horizon, so 3 expansions reject odd kids).
        assert_eq!(artifacts, vec![8]);
        assert_eq!(stats.rejected_structural, 3);
    }

    #[test]
    fn artifact_cap_stops_the_search() {
        let mut d = TreeDriver { reject_odd: false };
        let cfg = ExploreConfig {
            budget: Budget::default(),
            max_depth: 3,
            max_artifacts: 2,
        };
        let (artifacts, stats) = run(&mut d, FrontierKind::Bfs, &cfg);
        assert_eq!(artifacts.len(), 2);
        assert_eq!(stats.cut, None, "artifact cap is not a budget cut");
    }

    /// Like [`TreeDriver`] but only one leaf finalizes, so most
    /// subtrees are exhausted and certifiable.
    struct SparseDriver {
        artifact_leaf: u32,
    }

    impl HypothesisGen for SparseDriver {
        type Node = u32;
        type Candidate = u32;
        fn generate(&mut self, node: &u32) -> Vec<u32> {
            vec![node * 2, node * 2 + 1]
        }
    }

    impl StateTransform for SparseDriver {
        fn transform(
            &mut self,
            _node: &u32,
            cand: &u32,
            stats: &mut KernelStats,
        ) -> Option<(NodeScore, u32)> {
            stats.accepted += 1;
            Some((
                NodeScore {
                    priority: (cand % 2) as u8,
                    depth: bit_depth(*cand),
                    crumbs_matched: 0,
                },
                *cand,
            ))
        }
    }

    impl Finalize for SparseDriver {
        type Artifact = u32;
        fn depth(&self, node: &u32) -> usize {
            bit_depth(*node)
        }
        fn finalize(&mut self, node: &u32, _stats: &mut KernelStats) -> Option<u32> {
            (*node == self.artifact_leaf).then_some(*node)
        }
    }

    #[test]
    fn certified_run_then_consulting_run_skips_exhausted_subtrees() {
        let cfg = ExploreConfig {
            budget: Budget::default(),
            max_depth: 3,
            max_artifacts: 64,
        };
        // Certification pass: full exploration of the 15-node tree with
        // only leaf 15 finalizing.
        let mut certifier = VerdictCollector::for_replay(77);
        let mut d = SparseDriver { artifact_leaf: 15 };
        let mut frontier = FrontierKind::Dfs.build();
        let mut full = KernelStats::default();
        let full_artifacts = explore(
            &mut d,
            1u32,
            &cfg,
            frontier.as_mut(),
            &mut full,
            &Recorder::disabled(),
            SpeculativeYield {
                consult: None,
                collector: Some(&mut certifier),
            },
        );
        assert_eq!(full_artifacts, vec![15]);
        assert_eq!(full.nodes_expanded, 15);
        let mut verdicts = mvm_symbolic::VerdictSet::new();
        for r in certifier.into_records() {
            verdicts.insert(r);
        }
        // Exhausted certificates for node 2's subtree ([0]), node 6's
        // ([1, 0]) and leaf 14's ([1, 1, 0]); artifact certificates on
        // the path to leaf 15.
        assert!(verdicts.get(&[0]).is_some());
        assert_eq!(
            verdicts.get(&[0]).unwrap().kind,
            mvm_symbolic::VerdictKind::Exhausted
        );
        assert_eq!(verdicts.get(&[0]).unwrap().stats.nodes, 7);
        assert_eq!(
            verdicts.get(&[]).unwrap().kind,
            mvm_symbolic::VerdictKind::HasArtifact
        );

        // Consulting pass: byte-identical artifacts, strictly fewer
        // expansions, identical effective totals.
        let mut d2 = SparseDriver { artifact_leaf: 15 };
        let mut frontier2 = FrontierKind::Dfs.build();
        let mut pruned = KernelStats::default();
        let pruned_artifacts = explore(
            &mut d2,
            1u32,
            &cfg,
            frontier2.as_mut(),
            &mut pruned,
            &Recorder::disabled(),
            SpeculativeYield {
                consult: Some(&verdicts),
                collector: None,
            },
        );
        assert_eq!(pruned_artifacts, full_artifacts);
        // Skips [0] (7 nodes), [1,0] (3) and [1,1,0] (1): only the
        // chain 1 → 3 → 7 → 15 is actually expanded.
        assert_eq!(pruned.nodes_expanded, 4);
        assert_eq!(pruned.skipped_subtrees, 3);
        assert_eq!(pruned.skipped.nodes, 11);
        assert_eq!(pruned.effective(), full.effective());
        assert_eq!(pruned.deepest, full.deepest);
    }

    #[test]
    fn skip_declines_when_nodes_budget_would_bind_inside() {
        let cfg = ExploreConfig {
            budget: Budget {
                max_nodes: 6,
                ..Budget::default()
            },
            max_depth: 3,
            max_artifacts: 64,
        };
        // Certificates from an unbudgeted certification pass.
        let mut certifier = VerdictCollector::for_replay(77);
        let free = ExploreConfig {
            budget: Budget::default(),
            ..cfg
        };
        let mut d = SparseDriver { artifact_leaf: 15 };
        let mut frontier = FrontierKind::Dfs.build();
        let mut full = KernelStats::default();
        explore(
            &mut d,
            1u32,
            &free,
            frontier.as_mut(),
            &mut full,
            &Recorder::disabled(),
            SpeculativeYield {
                consult: None,
                collector: Some(&mut certifier),
            },
        );
        let mut verdicts = mvm_symbolic::VerdictSet::new();
        for r in certifier.into_records() {
            verdicts.insert(r);
        }

        // A budget that cuts *inside* the certified subtree must cut at
        // the same effective position whether or not verdicts are
        // offered: the [0] skip (7 nodes) is declined because
        // 1 + 7 > 6.
        let mut base_d = SparseDriver { artifact_leaf: 15 };
        let mut base_f = FrontierKind::Dfs.build();
        let mut base = KernelStats::default();
        let base_artifacts = explore(
            &mut base_d,
            1u32,
            &cfg,
            base_f.as_mut(),
            &mut base,
            &Recorder::disabled(),
            SpeculativeYield::none(),
        );
        let mut d2 = SparseDriver { artifact_leaf: 15 };
        let mut f2 = FrontierKind::Dfs.build();
        let mut pruned = KernelStats::default();
        let pruned_artifacts = explore(
            &mut d2,
            1u32,
            &cfg,
            f2.as_mut(),
            &mut pruned,
            &Recorder::disabled(),
            SpeculativeYield {
                consult: Some(&verdicts),
                collector: None,
            },
        );
        assert_eq!(base.cut, Some(CutReason::Nodes));
        assert_eq!(pruned.cut, base.cut);
        assert_eq!(pruned_artifacts, base_artifacts);
        assert_eq!(pruned.nodes_expanded, base.nodes_expanded);
        assert_eq!(pruned.skipped_subtrees, 0, "inadmissible skip declined");
    }
}
