//! Subtree-verdict certification and consultation for [`explore`].
//!
//! The speculate-then-replay pipeline certifies subtrees as it
//! explores: a [`VerdictCollector`] watches the kernel loop, maintains
//! one frame per node currently being explored (a stack, because DFS
//! pops every descendant of a node before any non-descendant), and
//! closes a frame — attributing the exact [`SubtreeStats`] the subtree
//! cost — the moment the loop pops a node outside it. A closed frame
//! becomes a [`VerdictRecord`] when it is *certifiable*:
//!
//! * its exploration was never cut short (budget cuts and artifact caps
//!   abort every still-open frame),
//! * every solver answer consumed inside was renaming-equivariant (the
//!   driver's [`YieldProbe::private_results`] delta stayed zero), and
//! * for sharded workers, the frame lies strictly below the first-
//!   branch split point, so this worker owned the subtree outright
//!   (frames that enclose the split saw only a 1/N shard of it).
//!
//! On the consulting side, [`SpeculativeYield::consult`] lets a replay
//! skip a subtree certified [`VerdictKind::Exhausted`] — provided the
//! skip cannot perturb budget admission ([`skip_admissible`]): node
//! accounting is folded in exactly, wall-clock deadlines and solver-
//! assignment caps disable skipping outright (elapsed time is not
//! reconstructible, and assignment totals can legitimately differ from
//! a full run when an α-duplicate query crosses the subtree boundary).
//!
//! Certification is only meaningful under [`FrontierKind::Dfs`]
//! (subtree contiguity); the engine gates on that before wiring either
//! side up.
//!
//! [`explore`]: super::explore
//! [`FrontierKind::Dfs`]: super::frontier::FrontierKind

use mvm_symbolic::verdict::{SubtreeStats, VerdictKind, VerdictRecord, VerdictSet};

use super::budget::Budget;
use super::frontier::EnumPath;
use super::stats::KernelStats;

/// Driver-side accounting snapshot consumed by the certifier; deltas
/// around one node expansion attribute that node's solver work and
/// symbol minting to the enclosing subtree frames.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct YieldProbe {
    /// Cumulative solver enumeration assignments spent.
    pub assignments: u64,
    /// Cumulative non-equivariant (private) solver answers served.
    pub private_results: u64,
    /// Cumulative symbolic variables minted.
    pub syms: u64,
}

/// The speculative-yield wiring for one [`explore`](super::explore)
/// call: an optional verdict set to consult for skips, an optional
/// collector to certify into. Both default to off.
#[derive(Default)]
pub struct SpeculativeYield<'a> {
    /// Certified subtrees the loop may skip.
    pub consult: Option<&'a VerdictSet>,
    /// Certifier observing this exploration.
    pub collector: Option<&'a mut VerdictCollector>,
}

impl SpeculativeYield<'_> {
    /// Neither consulting nor collecting.
    pub fn none() -> Self {
        SpeculativeYield::default()
    }
}

/// `true` when replay may skip the subtree certified by `v` without
/// perturbing budget admission: node totals stay exact by folding, but
/// a wall-clock deadline cannot be replayed into the fold at all, and
/// an assignment cap is declined because assignment totals are the one
/// counter that can legitimately differ from a full run (an exact-
/// duplicate query crossing the subtree boundary is charged once by a
/// full run but twice by a skipping run).
pub fn skip_admissible(budget: &Budget, stats: &KernelStats, v: &VerdictRecord) -> bool {
    if budget.deadline.is_some() || budget.max_solver_assignments.is_some() {
        return false;
    }
    stats.nodes_expanded + stats.skipped.nodes + v.stats.nodes <= budget.max_nodes
}

/// One node currently being explored.
struct Frame {
    path: EnumPath,
    stats: SubtreeStats,
    /// A private (non-equivariant) solver answer was consumed inside
    /// this subtree (own expansion, any descendant, or inherited from
    /// an ancestor): the frame cannot certify.
    tainted: bool,
    /// The downward-flowing part of the taint: the node's *own*
    /// expansion (or an ancestor's) consumed a private answer, which
    /// can change the children it admits — so every later-opened
    /// descendant inherits it. Taint folded up from a closed child
    /// subtree deliberately does not flow here: it cannot influence a
    /// sibling opened afterwards (a private answer re-served inside the
    /// sibling is counted in the sibling's own probe delta).
    inherit_taint: bool,
    /// The frame encloses a sharded worker's split point: this worker
    /// explored only its 1/N shard of the subtree, so no certificate.
    shared: bool,
    /// `records.len()` when the frame opened; everything emitted since
    /// lies inside this subtree (DFS contiguity), so an `Exhausted`
    /// close subsumes it by truncation.
    records_mark: usize,
}

/// Certifies subtree verdicts for one exploration (see module docs).
pub struct VerdictCollector {
    scope: u64,
    origin: u32,
    /// Worker-shard gating: when `true`, the first ≥2-child expansion
    /// marks every open frame `shared`.
    sharded: bool,
    branch_seen: bool,
    open: Vec<Frame>,
    records: Vec<VerdictRecord>,
}

impl VerdictCollector {
    /// Collector for speculative worker `worker` of a sharded run:
    /// frames that enclose the first-branch split point are never
    /// certified.
    pub fn for_worker(scope: u64, worker: u32) -> Self {
        VerdictCollector {
            scope,
            origin: worker,
            sharded: true,
            branch_seen: false,
            open: Vec::new(),
            records: Vec::new(),
        }
    }

    /// Collector for the sequential replay (or any unsharded run):
    /// every fully-explored untainted frame certifies, with
    /// [`REPLAY_ORIGIN`](mvm_symbolic::REPLAY_ORIGIN) provenance.
    pub fn for_replay(scope: u64) -> Self {
        VerdictCollector {
            scope,
            origin: mvm_symbolic::REPLAY_ORIGIN,
            sharded: false,
            branch_seen: false,
            open: Vec::new(),
            records: Vec::new(),
        }
    }

    /// The scope fingerprint records are stamped with.
    pub fn scope(&self) -> u64 {
        self.scope
    }

    /// Called on every pop: closes (and certifies) every frame the
    /// popped node is *not* inside. Under DFS a node outside a frame
    /// proves the frame's subtree fully explored.
    pub fn on_pop(&mut self, path: &EnumPath) {
        while let Some(top) = self.open.last() {
            let inside = path.starts_with(top.path.as_slice()) && path.len() > top.path.len();
            if inside {
                break;
            }
            self.close_top();
        }
    }

    /// Opens a frame for the node about to be expanded. Must follow
    /// [`on_pop`](Self::on_pop) for the same path.
    ///
    /// The frame inherits its parent's taint: a private solver answer
    /// consumed at an ancestor can change which children the ancestor
    /// admits under symbol renaming, so nothing below a tainted node is
    /// provably isomorphic to the replay's subtree at the same path.
    pub fn open(&mut self, path: &EnumPath) {
        let inherited = self.open.last().is_some_and(|f| f.inherit_taint);
        self.open.push(Frame {
            path: path.clone(),
            stats: SubtreeStats::default(),
            tainted: inherited,
            inherit_taint: inherited,
            shared: false,
            records_mark: self.records.len(),
        });
    }

    /// Observes one expansion's surviving-children count; for sharded
    /// workers the first genuine branch (≥ 2 children) marks every open
    /// frame as shard-shared (matching `ShardedFrontier`'s split rule).
    pub fn on_extend(&mut self, children: usize) {
        if self.sharded && !self.branch_seen && children >= 2 {
            self.branch_seen = true;
            for f in &mut self.open {
                f.shared = true;
            }
        }
    }

    /// Attributes one expanded node's exact accounting to the innermost
    /// frame (which [`open`](Self::open) just pushed for that node).
    pub fn attribute(&mut self, node_stats: &SubtreeStats, tainted: bool) {
        if let Some(top) = self.open.last_mut() {
            top.stats.absorb(node_stats);
            top.tainted |= tainted;
            top.inherit_taint |= tainted;
        }
    }

    /// Observes the replay skipping a certified subtree: its exact
    /// accounting folds into the enclosing frame (keeping re-certified
    /// ancestors exact) and the record is re-emitted verbatim, so the
    /// certificate — with its original worker provenance — survives
    /// into this run's export even though the subtree was never walked.
    pub fn on_skip(&mut self, record: &VerdictRecord) {
        if let Some(top) = self.open.last_mut() {
            top.stats.absorb(&record.stats);
        }
        self.records.push(record.clone());
    }

    /// Ends the exploration. `aborted` (a budget cut or the artifact
    /// cap) discards every still-open frame — their subtrees were not
    /// fully explored — while a natural end (frontier exhausted) closes
    /// and certifies them. [`explore`](super::explore) calls this;
    /// the owner then harvests via [`into_records`](Self::into_records).
    pub fn seal(&mut self, aborted: bool) {
        if aborted {
            self.open.clear();
        } else {
            while !self.open.is_empty() {
                self.close_top();
            }
        }
    }

    /// Consumes the collector into the certificates it gathered.
    pub fn into_records(self) -> Vec<VerdictRecord> {
        self.records
    }

    fn close_top(&mut self) {
        let frame = self.open.pop().expect("close_top on empty stack");
        let certifiable = !frame.tainted && !frame.shared;
        if certifiable {
            let kind = if frame.stats.artifacts > 0 {
                VerdictKind::HasArtifact
            } else {
                VerdictKind::Exhausted
            };
            if kind == VerdictKind::Exhausted {
                // Subsume: everything emitted since this frame opened
                // lies inside it, and one exhausted-subtree certificate
                // covers it all.
                self.records.truncate(frame.records_mark);
            }
            self.records.push(VerdictRecord {
                scope: self.scope,
                worker: self.origin,
                path: frame.path.clone().into_vec(),
                kind,
                stats: frame.stats,
            });
        }
        // Fold into the parent regardless: parents must account every
        // child subtree, certified or not, and a tainted child taints
        // every ancestor.
        if let Some(parent) = self.open.last_mut() {
            parent.stats.absorb(&frame.stats);
            parent.tainted |= frame.tainted;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(nodes: u64) -> SubtreeStats {
        SubtreeStats {
            nodes,
            ..SubtreeStats::default()
        }
    }

    fn p(ix: &[u32]) -> EnumPath {
        EnumPath::from(ix.to_vec())
    }

    #[test]
    fn exhausted_parent_subsumes_child_records() {
        // Tree: root [] → child [0] → grandchildren [0,0], [0,1]; no
        // artifacts anywhere. A clean finish must certify exactly one
        // record: the root, subsuming everything below it.
        let mut c = VerdictCollector::for_replay(42);
        for path in [p(&[]), p(&[0]), p(&[0, 0]), p(&[0, 1])] {
            c.on_pop(&path);
            c.open(&path);
            c.attribute(&node(1), false);
        }
        c.seal(false);
        let records = c.into_records();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].path, Vec::<u32>::new());
        assert_eq!(records[0].kind, VerdictKind::Exhausted);
        assert_eq!(records[0].stats.nodes, 4);
        assert_eq!(records[0].scope, 42);
        assert_eq!(records[0].worker, mvm_symbolic::REPLAY_ORIGIN);
    }

    #[test]
    fn artifact_frames_keep_exhausted_siblings() {
        // [0] produces an artifact, [1]'s subtree is exhausted: the
        // root is HasArtifact, [0] is HasArtifact, [1] is Exhausted.
        let mut c = VerdictCollector::for_replay(1);
        c.on_pop(&p(&[]));
        c.open(&p(&[]));
        c.attribute(&node(1), false);
        c.on_pop(&p(&[0]));
        c.open(&p(&[0]));
        c.attribute(
            &SubtreeStats {
                nodes: 1,
                artifacts: 1,
                ..SubtreeStats::default()
            },
            false,
        );
        c.on_pop(&p(&[1]));
        c.open(&p(&[1]));
        c.attribute(&node(1), false);
        c.seal(false);
        let records = c.into_records();
        let kinds: Vec<(Vec<u32>, VerdictKind)> =
            records.iter().map(|r| (r.path.clone(), r.kind)).collect();
        assert!(kinds.contains(&(vec![0], VerdictKind::HasArtifact)));
        assert!(kinds.contains(&(vec![1], VerdictKind::Exhausted)));
        assert!(kinds.contains(&(vec![], VerdictKind::HasArtifact)));
        let root = records.iter().find(|r| r.path.is_empty()).unwrap();
        assert_eq!(root.stats.nodes, 3, "parent folds both children");
        assert_eq!(root.stats.artifacts, 1);
    }

    #[test]
    fn taint_blocks_certification_and_propagates_up() {
        let mut c = VerdictCollector::for_replay(1);
        c.on_pop(&p(&[]));
        c.open(&p(&[]));
        c.attribute(&node(1), false);
        c.on_pop(&p(&[0]));
        c.open(&p(&[0]));
        c.attribute(&node(1), true); // private solver answer inside
        c.on_pop(&p(&[1]));
        c.open(&p(&[1]));
        c.attribute(&node(1), false);
        c.seal(false);
        let records = c.into_records();
        // Only the untainted sibling certifies; [0] and the root do not.
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].path, vec![1]);
    }

    #[test]
    fn taint_inherits_downward_at_open() {
        // The root's own expansion consumed a private answer: nothing
        // below it is provably replay-isomorphic, so no frame certifies
        // even though the descendants were individually clean.
        let mut c = VerdictCollector::for_replay(1);
        c.on_pop(&p(&[]));
        c.open(&p(&[]));
        c.attribute(&node(1), true);
        c.on_pop(&p(&[0]));
        c.open(&p(&[0]));
        c.attribute(&node(1), false);
        c.on_pop(&p(&[0, 0]));
        c.open(&p(&[0, 0]));
        c.attribute(&node(1), false);
        c.seal(false);
        assert!(c.into_records().is_empty());
    }

    #[test]
    fn abort_discards_open_frames_but_keeps_closed_ones() {
        let mut c = VerdictCollector::for_replay(1);
        c.on_pop(&p(&[]));
        c.open(&p(&[]));
        c.attribute(&node(1), false);
        c.on_pop(&p(&[0]));
        c.open(&p(&[0]));
        c.attribute(&node(1), false);
        // Popping [1] closes [0] (fully explored) ...
        c.on_pop(&p(&[1]));
        c.open(&p(&[1]));
        c.attribute(&node(1), false);
        // ... then a budget cut aborts with [] and [1] still open.
        c.seal(true);
        let records = c.into_records();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].path, vec![0]);
    }

    #[test]
    fn sharded_split_marks_enclosing_frames_shared() {
        let mut c = VerdictCollector::for_worker(1, 0);
        c.on_pop(&p(&[]));
        c.open(&p(&[]));
        c.attribute(&node(1), false);
        c.on_extend(3); // the first branch: root frame becomes shared
        c.on_pop(&p(&[0]));
        c.open(&p(&[0]));
        c.attribute(&node(1), false);
        c.on_extend(1); // single child below the split: no effect
        c.on_pop(&p(&[0, 0]));
        c.open(&p(&[0, 0]));
        c.attribute(&node(1), false);
        c.seal(false);
        let records = c.into_records();
        // [0] certifies (opened after the split, subsuming [0,0]); the
        // root does not (it only saw worker 0's shard).
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].path, vec![0]);
        assert_eq!(records[0].worker, 0);
        assert_eq!(records[0].stats.nodes, 2);
    }

    #[test]
    fn skip_passthrough_folds_into_parent_and_reemits() {
        let skipped = VerdictRecord {
            scope: 9,
            worker: 3,
            path: vec![0],
            kind: VerdictKind::Exhausted,
            stats: node(7),
        };
        let mut c = VerdictCollector::for_replay(9);
        c.on_pop(&p(&[]));
        c.open(&p(&[]));
        c.attribute(&node(1), false);
        c.on_pop(&p(&[0]));
        c.on_skip(&skipped); // replay skipped [0] on worker 3's word
        c.on_pop(&p(&[1]));
        c.open(&p(&[1]));
        c.attribute(&node(1), false);
        c.seal(false);
        let records = c.into_records();
        // Root certifies Exhausted with the skipped subtree folded in,
        // subsuming both the passthrough and the [1] record.
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].path, Vec::<u32>::new());
        assert_eq!(records[0].stats.nodes, 9);
    }

    #[test]
    fn skip_admissibility_respects_budgets() {
        let v = VerdictRecord {
            scope: 0,
            worker: 0,
            path: vec![0],
            kind: VerdictKind::Exhausted,
            stats: node(10),
        };
        let stats = KernelStats {
            nodes_expanded: 5,
            ..KernelStats::default()
        };
        let fits = Budget {
            max_nodes: 15,
            ..Budget::default()
        };
        assert!(skip_admissible(&fits, &stats, &v));
        let tight = Budget {
            max_nodes: 14,
            ..Budget::default()
        };
        assert!(!skip_admissible(&tight, &stats, &v));
        let deadline = Budget {
            max_nodes: 100,
            deadline: Some(std::time::Duration::from_secs(60)),
            ..Budget::default()
        };
        assert!(!skip_admissible(&deadline, &stats, &v));
        let capped = Budget {
            max_nodes: 100,
            max_solver_assignments: Some(1_000_000),
            ..Budget::default()
        };
        assert!(!skip_admissible(&capped, &stats, &v));
    }
}
