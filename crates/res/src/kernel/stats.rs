//! Kernel statistics — the currency of experiments E3, E4, A1, and A3.
//!
//! [`KernelStats`] replaced the old `SearchStats` (the transitional
//! alias is gone): every historical counter is kept under its old name,
//! and the kernel layers add what the monolith could not report — which
//! budget cut the search ([`CutReason`]), how much frontier was
//! abandoned when it did, solver-session cache behaviour, and the split
//! of accepted solver Unknowns by reason. For sharded runs,
//! [`KernelStats::absorb`] rolls per-worker stats into one report and
//! [`ParallelReport`] carries the cross-worker accounting.

use mvm_json::json_struct;
use mvm_symbolic::{SessionStats, SubtreeStats};

use super::budget::CutReason;

/// Frontier entries left unexplored when a budget cut the search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AbandonedSpace {
    /// Entries abandoned (the popped-but-unexpanded node plus the rest
    /// of the frontier).
    pub nodes: u64,
    /// Shallowest abandoned depth (0 when nothing was abandoned).
    pub min_depth: usize,
    /// Deepest abandoned depth.
    pub max_depth: usize,
}

json_struct!(AbandonedSpace {
    nodes,
    min_depth,
    max_depth
});

impl AbandonedSpace {
    /// Accounts one abandoned entry at `depth`.
    pub fn record(&mut self, depth: usize) {
        if self.nodes == 0 {
            self.min_depth = depth;
            self.max_depth = depth;
        } else {
            self.min_depth = self.min_depth.min(depth);
            self.max_depth = self.max_depth.max(depth);
        }
        self.nodes += 1;
    }

    /// Folds another worker's abandoned accounting into this one.
    pub fn absorb(&mut self, other: &AbandonedSpace) {
        if other.nodes == 0 {
            return;
        }
        if self.nodes == 0 {
            *self = *other;
            return;
        }
        self.min_depth = self.min_depth.min(other.min_depth);
        self.max_depth = self.max_depth.max(other.max_depth);
        self.nodes += other.nodes;
    }
}

/// Search statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Nodes expanded.
    pub nodes_expanded: u64,
    /// Hypotheses executed.
    pub hypotheses: u64,
    /// Hypotheses accepted.
    pub accepted: u64,
    /// Rejections: control flow cannot work.
    pub rejected_structural: u64,
    /// Rejections: execution-time contradiction.
    pub rejected_exec: u64,
    /// Rejections: solver proved the combined constraints unsatisfiable.
    pub rejected_solver: u64,
    /// Rejections: LBR breadcrumb mismatch.
    pub rejected_lbr: u64,
    /// Rejections: error-log breadcrumb mismatch.
    pub rejected_log: u64,
    /// Rejections: per-hypothesis budget (inconclusive).
    pub rejected_budget: u64,
    /// Acceptances that leaned on a solver Unknown.
    pub unknown_accepted: u64,
    /// ... of which the solver ran out of assignment budget.
    pub unknown_accepted_budget: u64,
    /// ... of which the constraints were outside the solver's theory.
    pub unknown_accepted_incomplete: u64,
    /// Complete suffixes whose final model solve failed (pruned late).
    pub finalize_failed: u64,
    /// Deepest suffix reached.
    pub deepest: usize,
    /// Which budget dimension cut the search, if any.
    pub cut: Option<CutReason>,
    /// Frontier left unexplored by the cut.
    pub abandoned: AbandonedSpace,
    /// Solver-session counters for this search (queries, cache
    /// hits/misses, verdict tallies, assignments spent).
    pub solver: SessionStats,
    /// Subtrees skipped on the strength of a verdict certificate.
    pub skipped_subtrees: u64,
    /// Exact accounting the skipped subtrees would have added; the
    /// *effective* totals of a verdict-pruned run are `this ⊕ skipped`
    /// and reconcile field-for-field with a full sequential run.
    pub skipped: SubtreeStats,
}

json_struct!(KernelStats {
    nodes_expanded,
    hypotheses,
    accepted,
    rejected_structural,
    rejected_exec,
    rejected_solver,
    rejected_lbr,
    rejected_log,
    rejected_budget,
    unknown_accepted,
    unknown_accepted_budget,
    unknown_accepted_incomplete,
    finalize_failed,
    deepest,
    cut,
    abandoned,
    solver,
    skipped_subtrees,
    skipped
});

impl KernelStats {
    /// Folds another worker's stats into this one: counters sum, depth
    /// high-water marks take the max, abandoned ranges merge, and the
    /// first recorded cut wins (workers are folded in worker order, so
    /// the reported reason is deterministic).
    pub fn absorb(&mut self, other: &KernelStats) {
        self.nodes_expanded += other.nodes_expanded;
        self.hypotheses += other.hypotheses;
        self.accepted += other.accepted;
        self.rejected_structural += other.rejected_structural;
        self.rejected_exec += other.rejected_exec;
        self.rejected_solver += other.rejected_solver;
        self.rejected_lbr += other.rejected_lbr;
        self.rejected_log += other.rejected_log;
        self.rejected_budget += other.rejected_budget;
        self.unknown_accepted += other.unknown_accepted;
        self.unknown_accepted_budget += other.unknown_accepted_budget;
        self.unknown_accepted_incomplete += other.unknown_accepted_incomplete;
        self.finalize_failed += other.finalize_failed;
        self.deepest = self.deepest.max(other.deepest);
        self.cut = self.cut.or(other.cut);
        self.abandoned.absorb(&other.abandoned);
        self.solver.absorb(&other.solver);
        self.skipped_subtrees += other.skipped_subtrees;
        self.skipped.absorb(&other.skipped);
    }

    /// The run's effective exploration totals: actual work plus the
    /// certified accounting of every skipped subtree. For a run with no
    /// skips this equals the plain counters, so a verdict-pruned run
    /// and its full-replay twin report identical effective totals.
    ///
    /// `artifacts` and `syms` are zeroed: the kernel does not count
    /// either for the work it actually performs (artifacts live in the
    /// returned vec, symbol minting in the driver), so folding only the
    /// skipped side in would make the totals asymmetric.
    pub fn effective(&self) -> SubtreeStats {
        let mut total = SubtreeStats {
            nodes: self.nodes_expanded,
            hypotheses: self.hypotheses,
            accepted: self.accepted,
            rejected_structural: self.rejected_structural,
            rejected_exec: self.rejected_exec,
            rejected_solver: self.rejected_solver,
            rejected_lbr: self.rejected_lbr,
            rejected_log: self.rejected_log,
            rejected_budget: self.rejected_budget,
            unknown_accepted: self.unknown_accepted,
            unknown_accepted_budget: self.unknown_accepted_budget,
            unknown_accepted_incomplete: self.unknown_accepted_incomplete,
            finalize_failed: self.finalize_failed,
            artifacts: 0,
            deepest: self.deepest as u64,
            assignments: self.solver.assignments,
            syms: 0,
        };
        total.absorb(&self.skipped);
        total.artifacts = 0;
        total.syms = 0;
        total
    }
}

/// Accounting for one sharded (multi-worker) synthesis run.
///
/// The engine's parallel mode is speculate-then-replay: N workers
/// explore disjoint frontier shards to warm a portable solver cache,
/// then the exact sequential search replays over the warmed cache (see
/// `DESIGN.md`, "The parallel kernel"). The headline
/// [`KernelStats`] of a run always describes the authoritative replay;
/// this report carries what the speculative fan-out did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ParallelReport {
    /// Worker count the run was sharded across.
    pub workers: usize,
    /// All workers' exploration stats, folded in worker order.
    pub speculative: KernelStats,
    /// Nodes expanded by each worker (index = worker id).
    pub per_worker_nodes: Vec<u64>,
    /// Portable solver-cache entries the workers handed to the replay.
    pub cache_entries: usize,
    /// Subtree-verdict certificates each worker exported (index =
    /// worker id).
    pub per_worker_verdicts: Vec<usize>,
    /// Certificates available to the replay (workers + store), after
    /// scope filtering and dedup.
    pub verdicts_consulted: usize,
    /// Subtrees the replay skipped on certificate strength.
    pub replay_skipped_subtrees: u64,
    /// Node expansions those skips avoided.
    pub replay_skipped_nodes: u64,
}

json_struct!(ParallelReport {
    workers,
    speculative,
    per_worker_nodes,
    cache_entries,
    per_worker_verdicts,
    verdicts_consulted,
    replay_skipped_subtrees,
    replay_skipped_nodes
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abandoned_tracks_depth_range() {
        let mut a = AbandonedSpace::default();
        a.record(3);
        assert_eq!((a.nodes, a.min_depth, a.max_depth), (1, 3, 3));
        a.record(7);
        a.record(1);
        assert_eq!((a.nodes, a.min_depth, a.max_depth), (3, 1, 7));
    }

    #[test]
    fn default_stats_report_no_cut() {
        let s = KernelStats::default();
        assert_eq!(s.cut, None);
        assert_eq!(s.abandoned.nodes, 0);
        assert_eq!(s.solver.queries, 0);
    }

    #[test]
    fn absorb_sums_counters_and_merges_extremes() {
        let mut a = KernelStats {
            nodes_expanded: 3,
            hypotheses: 5,
            deepest: 2,
            ..KernelStats::default()
        };
        a.abandoned.record(4);
        let mut b = KernelStats {
            nodes_expanded: 7,
            hypotheses: 1,
            deepest: 6,
            cut: Some(CutReason::Nodes),
            ..KernelStats::default()
        };
        b.abandoned.record(1);
        b.abandoned.record(9);
        a.absorb(&b);
        assert_eq!(a.nodes_expanded, 10);
        assert_eq!(a.hypotheses, 6);
        assert_eq!(a.deepest, 6);
        assert_eq!(a.cut, Some(CutReason::Nodes));
        assert_eq!(
            (
                a.abandoned.nodes,
                a.abandoned.min_depth,
                a.abandoned.max_depth
            ),
            (3, 1, 9)
        );
    }

    #[test]
    fn absorb_keeps_first_cut() {
        let mut a = KernelStats {
            cut: Some(CutReason::Deadline),
            ..KernelStats::default()
        };
        a.absorb(&KernelStats {
            cut: Some(CutReason::Nodes),
            ..KernelStats::default()
        });
        assert_eq!(a.cut, Some(CutReason::Deadline));
    }

    #[test]
    fn effective_totals_fold_skipped_subtrees() {
        let mut pruned = KernelStats {
            nodes_expanded: 5,
            hypotheses: 10,
            accepted: 4,
            deepest: 3,
            skipped_subtrees: 2,
            ..KernelStats::default()
        };
        pruned.skipped.nodes = 7;
        pruned.skipped.hypotheses = 14;
        pruned.skipped.accepted = 6;
        pruned.skipped.deepest = 9;
        pruned.skipped.syms = 11;
        let full = KernelStats {
            nodes_expanded: 12,
            hypotheses: 24,
            accepted: 10,
            deepest: 9,
            ..KernelStats::default()
        };
        assert_eq!(pruned.effective(), full.effective());
        assert_eq!(full.effective().nodes, 12);
        assert_eq!(full.effective().syms, 0, "kernel does not count syms");

        let mut folded = KernelStats::default();
        folded.absorb(&pruned);
        assert_eq!(folded.skipped_subtrees, 2);
        assert_eq!(folded.skipped.nodes, 7);
    }

    #[test]
    fn absorb_into_empty_abandoned_copies() {
        let mut a = AbandonedSpace::default();
        let mut b = AbandonedSpace::default();
        b.record(5);
        a.absorb(&b);
        assert_eq!((a.nodes, a.min_depth, a.max_depth), (1, 5, 5));
        a.absorb(&AbandonedSpace::default());
        assert_eq!(a.nodes, 1, "empty absorb is a no-op");
    }
}
