//! Kernel statistics — the currency of experiments E3, E4, A1, and A3.
//!
//! [`KernelStats`] supersedes the old `SearchStats` (which remains as a
//! type alias so callers compile): every historical counter is kept
//! under its old name, and the kernel layers add what the monolith
//! could not report — which budget cut the search ([`CutReason`]), how
//! much frontier was abandoned when it did, solver-session cache
//! behaviour, and the split of accepted solver Unknowns by reason.

use mvm_symbolic::SessionStats;

use super::budget::CutReason;

/// Frontier entries left unexplored when a budget cut the search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AbandonedSpace {
    /// Entries abandoned (the popped-but-unexpanded node plus the rest
    /// of the frontier).
    pub nodes: u64,
    /// Shallowest abandoned depth (0 when nothing was abandoned).
    pub min_depth: usize,
    /// Deepest abandoned depth.
    pub max_depth: usize,
}

impl AbandonedSpace {
    /// Accounts one abandoned entry at `depth`.
    pub fn record(&mut self, depth: usize) {
        if self.nodes == 0 {
            self.min_depth = depth;
            self.max_depth = depth;
        } else {
            self.min_depth = self.min_depth.min(depth);
            self.max_depth = self.max_depth.max(depth);
        }
        self.nodes += 1;
    }
}

/// Search statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Nodes expanded.
    pub nodes_expanded: u64,
    /// Hypotheses executed.
    pub hypotheses: u64,
    /// Hypotheses accepted.
    pub accepted: u64,
    /// Rejections: control flow cannot work.
    pub rejected_structural: u64,
    /// Rejections: execution-time contradiction.
    pub rejected_exec: u64,
    /// Rejections: solver proved the combined constraints unsatisfiable.
    pub rejected_solver: u64,
    /// Rejections: LBR breadcrumb mismatch.
    pub rejected_lbr: u64,
    /// Rejections: error-log breadcrumb mismatch.
    pub rejected_log: u64,
    /// Rejections: per-hypothesis budget (inconclusive).
    pub rejected_budget: u64,
    /// Acceptances that leaned on a solver Unknown.
    pub unknown_accepted: u64,
    /// ... of which the solver ran out of assignment budget.
    pub unknown_accepted_budget: u64,
    /// ... of which the constraints were outside the solver's theory.
    pub unknown_accepted_incomplete: u64,
    /// Complete suffixes whose final model solve failed (pruned late).
    pub finalize_failed: u64,
    /// Deepest suffix reached.
    pub deepest: usize,
    /// Which budget dimension cut the search, if any.
    pub cut: Option<CutReason>,
    /// Frontier left unexplored by the cut.
    pub abandoned: AbandonedSpace,
    /// Solver-session counters for this search (queries, cache
    /// hits/misses, verdict tallies, assignments spent).
    pub solver: SessionStats,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abandoned_tracks_depth_range() {
        let mut a = AbandonedSpace::default();
        a.record(3);
        assert_eq!((a.nodes, a.min_depth, a.max_depth), (1, 3, 3));
        a.record(7);
        a.record(1);
        assert_eq!((a.nodes, a.min_depth, a.max_depth), (3, 1, 7));
    }

    #[test]
    fn default_stats_report_no_cut() {
        let s = KernelStats::default();
        assert_eq!(s.cut, None);
        assert_eq!(s.abandoned.nodes, 0);
        assert_eq!(s.solver.queries, 0);
    }
}
