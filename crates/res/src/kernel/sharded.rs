//! Deterministic frontier sharding for speculative parallel search.
//!
//! A [`ShardedFrontier`] gives worker `w` of `n` its own disjoint slice
//! of the search tree without any cross-worker communication: every
//! worker runs the identical deterministic exploration from the same
//! root, and the first time an expansion produces two or more surviving
//! children — the first genuine branch — each worker keeps only the
//! children whose *enumeration index* `i` satisfies `i % n == w` and
//! silently drops the rest. Below the split point the worker owns its
//! subtrees outright, so the shards partition the branch's descendants
//! exactly, with a stable tie-break (enumeration order) that does not
//! depend on timing, scores, or node contents.
//!
//! Single-child expansions before the branch pass through unsharded:
//! the backward search's root often has exactly one viable predecessor
//! hypothesis (the faulting thread's partial block), and splitting
//! there would idle every worker but one.
//!
//! Sharding composes with any inner [`Frontier`]; within its shard a
//! worker still explores in the inner frontier's order.

use super::frontier::{Frontier, NodeScore};

/// A [`Frontier`] adapter that keeps only worker `worker`'s share of
/// the first branch's children (see the module docs for the rule).
pub struct ShardedFrontier<N> {
    inner: Box<dyn Frontier<N>>,
    worker: usize,
    workers: usize,
    split_done: bool,
}

impl<N> ShardedFrontier<N> {
    /// Wraps `inner` as worker `worker` of `workers`.
    ///
    /// With `workers <= 1` the adapter is a transparent pass-through.
    pub fn new(inner: Box<dyn Frontier<N>>, worker: usize, workers: usize) -> Self {
        assert!(workers == 0 || worker < workers, "worker id out of range");
        ShardedFrontier {
            inner,
            worker,
            workers,
            split_done: workers <= 1,
        }
    }

    /// `true` once the first branch has been sharded (always `true` for
    /// a single worker).
    pub fn split_done(&self) -> bool {
        self.split_done
    }
}

impl<N> Frontier<N> for ShardedFrontier<N> {
    fn extend(&mut self, children: Vec<(NodeScore, N)>) {
        if !self.split_done && children.len() >= 2 {
            self.split_done = true;
            let kept: Vec<(NodeScore, N)> = children
                .into_iter()
                .enumerate()
                .filter(|(i, _)| i % self.workers == self.worker)
                .map(|(_, c)| c)
                .collect();
            self.inner.extend(kept);
            return;
        }
        self.inner.extend(children);
    }

    fn pop(&mut self) -> Option<(NodeScore, N)> {
        self.inner.pop()
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn drain(&mut self) -> Vec<(NodeScore, N)> {
        self.inner.drain()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::frontier::{Dfs, FrontierKind};

    fn scored(tag: u32) -> (NodeScore, u32) {
        (NodeScore::default(), tag)
    }

    #[test]
    fn splits_first_branch_by_enumeration_index() {
        let mut shards: Vec<ShardedFrontier<u32>> = (0..3)
            .map(|w| ShardedFrontier::new(Box::new(Dfs::new()), w, 3))
            .collect();
        let children: Vec<Vec<u32>> = shards
            .iter_mut()
            .map(|f| {
                // Pre-branch single-child extends pass through whole.
                f.extend(vec![scored(100)]);
                assert_eq!(f.pop().unwrap().1, 100);
                assert!(!f.split_done());
                f.extend(vec![scored(0), scored(1), scored(2), scored(3), scored(4)]);
                assert!(f.split_done());
                std::iter::from_fn(|| f.pop()).map(|(_, n)| n).collect()
            })
            .collect();
        let mut all: Vec<u32> = children.iter().flatten().copied().collect();
        all.sort();
        assert_eq!(all, vec![0, 1, 2, 3, 4], "shards partition the branch");
        assert!(children[0].contains(&0) && children[0].contains(&3));
        assert!(children[1].contains(&1) && children[1].contains(&4));
        assert_eq!(children[2], vec![2]);
    }

    #[test]
    fn post_split_extends_are_unsharded() {
        let mut f = ShardedFrontier::new(Box::new(Dfs::new()), 1, 2);
        f.extend(vec![scored(0), scored(1)]);
        assert_eq!(f.len(), 1, "kept only index 1");
        f.extend(vec![scored(10), scored(11), scored(12)]);
        assert_eq!(f.len(), 4, "below the split the worker owns everything");
    }

    #[test]
    fn single_worker_is_transparent() {
        let mut plain = Dfs::new();
        let mut sharded = ShardedFrontier::new(Box::new(Dfs::new()), 0, 1);
        assert!(sharded.split_done());
        for f in [&mut plain as &mut dyn Frontier<u32>, &mut sharded] {
            f.extend(vec![scored(7), scored(8), scored(9)]);
        }
        loop {
            let a = plain.pop();
            let b = sharded.pop();
            assert_eq!(a.map(|x| x.1), b.map(|x| x.1));
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn composes_with_any_inner_frontier() {
        for kind in [
            FrontierKind::Dfs,
            FrontierKind::Bfs,
            FrontierKind::BestFirst,
        ] {
            let mut f = ShardedFrontier::new(kind.build::<u32>(), 0, 2);
            f.extend(vec![scored(0), scored(1), scored(2), scored(3)]);
            let got: Vec<u32> = f.drain().into_iter().map(|(_, n)| n).collect();
            let mut sorted = got.clone();
            sorted.sort();
            assert_eq!(sorted, vec![0, 2], "{kind:?}");
        }
    }
}
