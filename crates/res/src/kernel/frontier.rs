//! Pluggable exploration frontiers.
//!
//! The kernel hands each expanded node's surviving children — in
//! enumeration order, with their [`NodeScore`]s — to a [`Frontier`],
//! which decides what to explore next. Three orders are provided:
//!
//! * [`Dfs`] — byte-identical to the engine's historical worklist:
//!   children are stably sorted by descending priority value and
//!   appended to a stack, so the best (lowest) priority pops first and
//!   equal-priority children pop in enumeration order.
//! * [`Bfs`] — level order; children sorted best-first within a level.
//! * [`BestFirst`] — a global priority queue scored by breadcrumb/LBR
//!   agreement (related work frames backward debugging as exactly this
//!   search-strategy choice: FReD's binary search, Transition
//!   Watchpoints' prioritization).

use std::collections::{BinaryHeap, VecDeque};

/// The canonical enumeration index of a search-tree node: the sequence
/// of candidate indices (each the position in the deterministic
/// [`HypothesisGen::generate`](super::HypothesisGen::generate) output)
/// leading from the root to the node. Because hypothesis enumeration is
/// a pure function of the node, the path is identical in every
/// exploration of the same tree — across worker shards, replays, and
/// runs — which is what lets subtree-verdict certificates name a
/// subtree unambiguously.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Default, Hash)]
pub struct EnumPath(Vec<u32>);

impl EnumPath {
    /// The root's (empty) path.
    pub fn root() -> Self {
        EnumPath(Vec::new())
    }

    /// The path of the child produced by candidate `index` of this
    /// node's enumeration.
    pub fn child(&self, index: u32) -> Self {
        let mut v = Vec::with_capacity(self.0.len() + 1);
        v.extend_from_slice(&self.0);
        v.push(index);
        EnumPath(v)
    }

    /// The raw candidate-index sequence.
    pub fn as_slice(&self) -> &[u32] {
        &self.0
    }

    /// Path length (node depth in enumeration steps).
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` for the root path.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// `true` when `self` lies inside the subtree rooted at `prefix`
    /// (inclusive: a path is inside its own subtree).
    pub fn starts_with(&self, prefix: &[u32]) -> bool {
        self.0.len() >= prefix.len() && self.0[..prefix.len()] == *prefix
    }

    /// Consumes the path into its index sequence.
    pub fn into_vec(self) -> Vec<u32> {
        self.0
    }
}

impl From<Vec<u32>> for EnumPath {
    fn from(v: Vec<u32>) -> Self {
        EnumPath(v)
    }
}

/// A frontier node tagged with its [`EnumPath`]. The kernel threads
/// every node through the frontier in this wrapper so certificates and
/// shard ownership can be expressed over stable enumeration indices;
/// frontiers order by [`NodeScore`] alone and never inspect the path.
#[derive(Debug, Clone)]
pub struct Indexed<N> {
    /// Canonical enumeration index of the node.
    pub path: EnumPath,
    /// The wrapped node.
    pub node: N,
}

/// How promising a frontier entry is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NodeScore {
    /// Candidate priority from hypothesis enumeration; 0 is best.
    pub priority: u8,
    /// Suffix depth of the node (block-granular steps reconstructed).
    pub depth: usize,
    /// Breadcrumbs (LBR entries + error-log entries) already matched by
    /// the path to this node; more agreement = more trustworthy.
    pub crumbs_matched: usize,
}

impl NodeScore {
    /// Score of the search root.
    pub fn root() -> Self {
        NodeScore::default()
    }
}

/// An exploration order over scored nodes.
pub trait Frontier<N> {
    /// Adds one expansion's children, given in enumeration order.
    fn extend(&mut self, children: Vec<(NodeScore, N)>);
    /// Removes the next node to explore.
    fn pop(&mut self) -> Option<(NodeScore, N)>;
    /// Entries currently queued.
    fn len(&self) -> usize;
    /// `true` when nothing is queued.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Removes and returns everything still queued — used to account
    /// for abandoned search space when a budget cuts the exploration.
    fn drain(&mut self) -> Vec<(NodeScore, N)>;
}

/// Depth-first order, reproducing the pre-kernel engine exactly.
#[derive(Debug, Default)]
pub struct Dfs<N> {
    stack: Vec<(NodeScore, N)>,
}

impl<N> Dfs<N> {
    /// An empty DFS frontier.
    pub fn new() -> Self {
        Dfs { stack: Vec::new() }
    }
}

impl<N> Frontier<N> for Dfs<N> {
    fn extend(&mut self, mut children: Vec<(NodeScore, N)>) {
        // Stable sort by *descending* priority value, then push in
        // order: the best (lowest value) lands on top of the stack, and
        // equal-priority children pop in enumeration order. This is
        // exactly the historical `sort_by(|a, b| b.0.cmp(&a.0))` +
        // push loop; do not "simplify" to ascending-sort-and-reverse,
        // which flips the equal-priority order.
        children.sort_by(|a, b| b.0.priority.cmp(&a.0.priority));
        self.stack.extend(children);
    }

    fn pop(&mut self) -> Option<(NodeScore, N)> {
        self.stack.pop()
    }

    fn len(&self) -> usize {
        self.stack.len()
    }

    fn drain(&mut self) -> Vec<(NodeScore, N)> {
        std::mem::take(&mut self.stack)
    }
}

/// Breadth-first (level) order.
#[derive(Debug, Default)]
pub struct Bfs<N> {
    queue: VecDeque<(NodeScore, N)>,
}

impl<N> Bfs<N> {
    /// An empty BFS frontier.
    pub fn new() -> Self {
        Bfs {
            queue: VecDeque::new(),
        }
    }
}

impl<N> Frontier<N> for Bfs<N> {
    fn extend(&mut self, mut children: Vec<(NodeScore, N)>) {
        // Best (lowest priority value) first within the sibling group;
        // stable, so equal priorities keep enumeration order.
        children.sort_by(|a, b| a.0.priority.cmp(&b.0.priority));
        self.queue.extend(children);
    }

    fn pop(&mut self) -> Option<(NodeScore, N)> {
        self.queue.pop_front()
    }

    fn len(&self) -> usize {
        self.queue.len()
    }

    fn drain(&mut self) -> Vec<(NodeScore, N)> {
        std::mem::take(&mut self.queue).into_iter().collect()
    }
}

struct HeapEntry<N> {
    score: NodeScore,
    seq: u64,
    node: N,
}

impl<N> HeapEntry<N> {
    /// Ranking key for the max-heap: most breadcrumbs matched, then
    /// best candidate priority, then deepest (closest to a complete
    /// suffix), then FIFO on insertion order for determinism.
    fn key(&self) -> (usize, std::cmp::Reverse<u8>, usize, std::cmp::Reverse<u64>) {
        (
            self.score.crumbs_matched,
            std::cmp::Reverse(self.score.priority),
            self.score.depth,
            std::cmp::Reverse(self.seq),
        )
    }
}

impl<N> PartialEq for HeapEntry<N> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl<N> Eq for HeapEntry<N> {}
impl<N> PartialOrd for HeapEntry<N> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<N> Ord for HeapEntry<N> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

/// Global best-first order scored by breadcrumb agreement.
#[derive(Default)]
pub struct BestFirst<N> {
    heap: BinaryHeap<HeapEntry<N>>,
    seq: u64,
}

impl<N> BestFirst<N> {
    /// An empty best-first frontier.
    pub fn new() -> Self {
        BestFirst {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }
}

impl<N> Frontier<N> for BestFirst<N> {
    fn extend(&mut self, children: Vec<(NodeScore, N)>) {
        for (score, node) in children {
            let seq = self.seq;
            self.seq += 1;
            self.heap.push(HeapEntry { score, seq, node });
        }
    }

    fn pop(&mut self) -> Option<(NodeScore, N)> {
        self.heap.pop().map(|e| (e.score, e.node))
    }

    fn len(&self) -> usize {
        self.heap.len()
    }

    fn drain(&mut self) -> Vec<(NodeScore, N)> {
        std::mem::take(&mut self.heap)
            .into_sorted_vec()
            .into_iter()
            .map(|e| (e.score, e.node))
            .collect()
    }
}

/// Which frontier a config selects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FrontierKind {
    /// Historical depth-first order (the default; byte-identical to the
    /// pre-kernel engine).
    #[default]
    Dfs,
    /// Breadth-first order.
    Bfs,
    /// Best-first by breadcrumb agreement.
    BestFirst,
}

impl FrontierKind {
    /// Instantiates the frontier.
    pub fn build<N: 'static>(self) -> Box<dyn Frontier<N>> {
        match self {
            FrontierKind::Dfs => Box::new(Dfs::new()),
            FrontierKind::Bfs => Box::new(Bfs::new()),
            FrontierKind::BestFirst => Box::new(BestFirst::new()),
        }
    }

    /// Short display name for harness tables.
    pub fn name(self) -> &'static str {
        match self {
            FrontierKind::Dfs => "dfs",
            FrontierKind::Bfs => "bfs",
            FrontierKind::BestFirst => "best-first",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scored(priority: u8, tag: u32) -> (NodeScore, u32) {
        (
            NodeScore {
                priority,
                ..NodeScore::default()
            },
            tag,
        )
    }

    /// The property the golden suffix fixture depends on: descending
    /// stable sort + stack append means the best (lowest) priority pops
    /// first, and among equal priorities the *later-enumerated* sibling
    /// pops first — exactly the historical engine's order.
    #[test]
    fn dfs_matches_legacy_order() {
        let mut f = Dfs::new();
        f.extend(vec![scored(2, 1), scored(0, 2), scored(0, 3), scored(1, 4)]);
        let popped: Vec<u32> = std::iter::from_fn(|| f.pop()).map(|(_, n)| n).collect();
        assert_eq!(popped, vec![3, 2, 4, 1]);
    }

    #[test]
    fn dfs_interleaves_expansions_like_a_stack() {
        let mut f = Dfs::new();
        f.extend(vec![scored(1, 10), scored(0, 11)]);
        assert_eq!(f.pop().unwrap().1, 11);
        f.extend(vec![scored(0, 20), scored(0, 21)]);
        let popped: Vec<u32> = std::iter::from_fn(|| f.pop()).map(|(_, n)| n).collect();
        assert_eq!(popped, vec![21, 20, 10]);
    }

    #[test]
    fn bfs_is_level_order() {
        let mut f = Bfs::new();
        f.extend(vec![scored(1, 1), scored(0, 2)]);
        assert_eq!(f.pop().unwrap().1, 2);
        f.extend(vec![scored(0, 3)]);
        assert_eq!(f.pop().unwrap().1, 1);
        assert_eq!(f.pop().unwrap().1, 3);
    }

    #[test]
    fn best_first_prefers_crumb_agreement_then_fifo() {
        let mut f = BestFirst::new();
        f.extend(vec![
            (
                NodeScore {
                    priority: 0,
                    depth: 1,
                    crumbs_matched: 0,
                },
                1u32,
            ),
            (
                NodeScore {
                    priority: 2,
                    depth: 1,
                    crumbs_matched: 3,
                },
                2,
            ),
            (
                NodeScore {
                    priority: 2,
                    depth: 1,
                    crumbs_matched: 3,
                },
                3,
            ),
        ]);
        assert_eq!(f.pop().unwrap().1, 2, "most crumbs wins");
        assert_eq!(f.pop().unwrap().1, 3, "FIFO among ties");
        assert_eq!(f.pop().unwrap().1, 1);
    }

    #[test]
    fn enum_paths_extend_and_prefix_check() {
        let root = EnumPath::root();
        assert!(root.is_empty());
        let a = root.child(2);
        let b = a.child(0);
        assert_eq!(b.as_slice(), &[2, 0]);
        assert_eq!(b.len(), 2);
        assert!(b.starts_with(a.as_slice()));
        assert!(b.starts_with(b.as_slice()), "inclusive prefix");
        assert!(!a.starts_with(b.as_slice()));
        assert!(!root.child(1).starts_with(a.as_slice()));
        assert_eq!(b.clone().into_vec(), vec![2, 0]);
        assert_eq!(EnumPath::from(vec![2, 0]), b);
    }

    #[test]
    fn drain_empties_the_frontier() {
        for kind in [
            FrontierKind::Dfs,
            FrontierKind::Bfs,
            FrontierKind::BestFirst,
        ] {
            let mut f = kind.build::<u32>();
            f.extend(vec![scored(0, 1), scored(1, 2), scored(2, 3)]);
            let drained = f.drain();
            assert_eq!(drained.len(), 3, "{kind:?}");
            assert!(f.is_empty(), "{kind:?}");
            assert!(f.pop().is_none(), "{kind:?}");
        }
    }
}
