//! Unified search budgets.
//!
//! The engine historically metered three resources in three places with
//! three ad-hoc signals: node expansions (`budget_cut` in the search
//! loop), per-hypothesis instructions (`Infeasible::Budget` in the block
//! executor), and solver assignments (silently inside the solver). One
//! [`Budget`] now carries all of them, plus an optional wall-clock
//! deadline, and every cutoff reports a [`CutReason`].

use std::time::{Duration, Instant};

/// Everything the exploration kernel is allowed to spend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Budget {
    /// Maximum search nodes expanded.
    pub max_nodes: u64,
    /// Per-hypothesis instruction budget (enforced by the state
    /// transform, not by [`Budget::admit`]).
    pub hyp_max_steps: u64,
    /// Cumulative solver enumeration assignments across the whole
    /// search; `None` leaves the solver bounded only by its own
    /// per-query budget.
    pub max_solver_assignments: Option<u64>,
    /// Wall-clock deadline for the whole search. `None` (the default)
    /// keeps the search fully deterministic.
    pub deadline: Option<Duration>,
}

impl Default for Budget {
    fn default() -> Self {
        Budget {
            max_nodes: 4000,
            hyp_max_steps: 4096,
            max_solver_assignments: None,
            deadline: None,
        }
    }
}

/// Which budget dimension cut the search short.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CutReason {
    /// Node-expansion cap reached.
    Nodes,
    /// A per-hypothesis instruction budget ran out.
    HypInstructions,
    /// The cumulative solver-assignment cap was reached.
    SolverAssignments,
    /// The wall-clock deadline passed.
    Deadline,
}

/// Tracks elapsed wall-clock time for deadline enforcement.
#[derive(Debug, Clone)]
pub struct BudgetMeter {
    started: Instant,
}

impl BudgetMeter {
    /// Starts the clock.
    pub fn start() -> Self {
        BudgetMeter {
            started: Instant::now(),
        }
    }

    /// Time since [`start`](BudgetMeter::start).
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }
}

impl Budget {
    /// May another node be expanded? Returns the binding [`CutReason`]
    /// if not. Dimensions are checked in a fixed order (nodes, solver
    /// assignments, deadline) so the reported reason is deterministic
    /// whenever the budgets themselves are.
    pub fn admit(
        &self,
        meter: &BudgetMeter,
        nodes_expanded: u64,
        solver_assignments: u64,
    ) -> Option<CutReason> {
        if nodes_expanded >= self.max_nodes {
            return Some(CutReason::Nodes);
        }
        if let Some(cap) = self.max_solver_assignments {
            if solver_assignments >= cap {
                return Some(CutReason::SolverAssignments);
            }
        }
        if let Some(d) = self.deadline {
            if meter.elapsed() >= d {
                return Some(CutReason::Deadline);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nodes_cap_binds_first() {
        let b = Budget {
            max_nodes: 10,
            max_solver_assignments: Some(5),
            ..Budget::default()
        };
        let m = BudgetMeter::start();
        assert_eq!(b.admit(&m, 10, 99), Some(CutReason::Nodes));
        assert_eq!(b.admit(&m, 9, 5), Some(CutReason::SolverAssignments));
        assert_eq!(b.admit(&m, 9, 4), None);
    }

    #[test]
    fn default_budget_matches_legacy_knobs() {
        let b = Budget::default();
        assert_eq!(b.max_nodes, 4000);
        assert_eq!(b.hyp_max_steps, 4096);
        assert_eq!(b.max_solver_assignments, None);
        assert_eq!(b.deadline, None);
    }

    #[test]
    fn deadline_cuts_when_elapsed() {
        let b = Budget {
            deadline: Some(Duration::from_secs(0)),
            ..Budget::default()
        };
        let m = BudgetMeter::start();
        assert_eq!(b.admit(&m, 0, 0), Some(CutReason::Deadline));
    }
}
