//! Unified search budgets.
//!
//! The engine historically metered three resources in three places with
//! three ad-hoc signals: node expansions (`budget_cut` in the search
//! loop), per-hypothesis instructions (`Infeasible::Budget` in the block
//! executor), and solver assignments (silently inside the solver). One
//! [`Budget`] now carries all of them, plus an optional wall-clock
//! deadline, and every cutoff reports a [`CutReason`].

use std::time::{Duration, Instant};

use mvm_json::json_enum;

/// Everything the exploration kernel is allowed to spend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Budget {
    /// Maximum search nodes expanded.
    pub max_nodes: u64,
    /// Per-hypothesis instruction budget (enforced by the state
    /// transform, not by [`Budget::admit`]).
    pub hyp_max_steps: u64,
    /// Cumulative solver enumeration assignments across the whole
    /// search; `None` leaves the solver bounded only by its own
    /// per-query budget.
    pub max_solver_assignments: Option<u64>,
    /// Wall-clock deadline for the whole search. `None` (the default)
    /// keeps the search fully deterministic.
    pub deadline: Option<Duration>,
}

impl Default for Budget {
    fn default() -> Self {
        Budget {
            max_nodes: 4000,
            hyp_max_steps: 4096,
            max_solver_assignments: None,
            deadline: None,
        }
    }
}

/// Which budget dimension cut the search short.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CutReason {
    /// Node-expansion cap reached.
    Nodes,
    /// A per-hypothesis instruction budget ran out.
    HypInstructions,
    /// The cumulative solver-assignment cap was reached.
    SolverAssignments,
    /// The wall-clock deadline passed.
    Deadline,
}

json_enum!(CutReason {
    Nodes,
    HypInstructions,
    SolverAssignments,
    Deadline
});

/// Tracks elapsed wall-clock time for deadline enforcement.
#[derive(Debug, Clone)]
pub struct BudgetMeter {
    started: Instant,
}

impl BudgetMeter {
    /// Starts the clock.
    pub fn start() -> Self {
        BudgetMeter {
            started: Instant::now(),
        }
    }

    /// Time since [`start`](BudgetMeter::start).
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }
}

impl Budget {
    /// The per-worker budget slice for an `workers`-way sharded search.
    ///
    /// Whole-search resources (node expansions, cumulative solver
    /// assignments) are divided `ceil(total / workers)` so the shards
    /// together never exceed ~the sequential allowance, while `workers
    /// = 1` reproduces the original budget exactly. Per-hypothesis and
    /// wall-clock limits are *not* divided: each hypothesis costs the
    /// same wherever it runs, and workers run concurrently, so the
    /// deadline applies to each worker as-is.
    pub fn slice(&self, workers: usize) -> Budget {
        let w = workers.max(1) as u64;
        Budget {
            max_nodes: self.max_nodes.div_ceil(w),
            hyp_max_steps: self.hyp_max_steps,
            max_solver_assignments: self.max_solver_assignments.map(|c| c.div_ceil(w)),
            deadline: self.deadline,
        }
    }

    /// May another node be expanded? Returns the binding [`CutReason`]
    /// if not. Dimensions are checked in a fixed order (nodes, solver
    /// assignments, deadline) so the reported reason is deterministic
    /// whenever the budgets themselves are.
    pub fn admit(
        &self,
        meter: &BudgetMeter,
        nodes_expanded: u64,
        solver_assignments: u64,
    ) -> Option<CutReason> {
        if nodes_expanded >= self.max_nodes {
            return Some(CutReason::Nodes);
        }
        if let Some(cap) = self.max_solver_assignments {
            if solver_assignments >= cap {
                return Some(CutReason::SolverAssignments);
            }
        }
        if let Some(d) = self.deadline {
            if meter.elapsed() >= d {
                return Some(CutReason::Deadline);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nodes_cap_binds_first() {
        let b = Budget {
            max_nodes: 10,
            max_solver_assignments: Some(5),
            ..Budget::default()
        };
        let m = BudgetMeter::start();
        assert_eq!(b.admit(&m, 10, 99), Some(CutReason::Nodes));
        assert_eq!(b.admit(&m, 9, 5), Some(CutReason::SolverAssignments));
        assert_eq!(b.admit(&m, 9, 4), None);
    }

    #[test]
    fn default_budget_matches_legacy_knobs() {
        let b = Budget::default();
        assert_eq!(b.max_nodes, 4000);
        assert_eq!(b.hyp_max_steps, 4096);
        assert_eq!(b.max_solver_assignments, None);
        assert_eq!(b.deadline, None);
    }

    #[test]
    fn slice_divides_whole_search_resources_only() {
        let b = Budget {
            max_nodes: 10,
            hyp_max_steps: 4096,
            max_solver_assignments: Some(100),
            deadline: Some(Duration::from_secs(3)),
        };
        assert_eq!(b.slice(1), b, "one worker keeps the full budget");
        let s = b.slice(4);
        assert_eq!(s.max_nodes, 3, "ceil(10/4)");
        assert_eq!(s.max_solver_assignments, Some(25));
        assert_eq!(s.hyp_max_steps, 4096, "per-hypothesis limit undivided");
        assert_eq!(s.deadline, Some(Duration::from_secs(3)));
        assert_eq!(b.slice(0), b.slice(1), "zero clamps to one");
    }

    #[test]
    fn deadline_cuts_when_elapsed() {
        let b = Budget {
            deadline: Some(Duration::from_secs(0)),
            ..Budget::default()
        };
        let m = BudgetMeter::start();
        assert_eq!(b.admit(&m, 0, 0), Some(CutReason::Deadline));
    }
}
