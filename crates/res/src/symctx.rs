//! Symbol registry: every symbolic value the engine introduces is
//! recorded here with its provenance, so that a solver model can be
//! turned back into concrete suffix ingredients (initial image bytes,
//! input values) and so diagnostics can say *what* an unknown stands
//! for.

use mvm_isa::{InputKind, Loc, Reg, Width};
use mvm_machine::ThreadId;

use mvm_symbolic::{Expr, ExprRef, SymId};

/// Why a symbol exists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SymOrigin {
    /// Stands for the pre-block value of a register the block
    /// overwrites (paper §2.4).
    HavocReg {
        /// Owning thread.
        tid: ThreadId,
        /// The register.
        reg: Reg,
        /// Backward depth at which it was introduced.
        depth: usize,
    },
    /// Stands for the pre-block value of a memory cell the block
    /// overwrites.
    HavocMem {
        /// Cell address.
        addr: u64,
        /// Cell width.
        width: Width,
        /// Backward depth at which it was introduced.
        depth: usize,
    },
    /// Stands for an external input consumed inside the suffix
    /// ("program inputs are handed to the program as unconstrained
    /// symbolic values", §2.4).
    Input {
        /// Consuming thread.
        tid: ThreadId,
        /// Input kind (network, file, ...), for taint analysis.
        kind: InputKind,
        /// Location of the `input` instruction.
        site: Loc,
    },
    /// Reserved for a symbol that a subtree the replay *skipped* (on a
    /// verdict certificate) would have minted. Never appears in a live
    /// expression — the skipped subtree's nodes were discarded — but
    /// holding the id keeps every symbol minted after the skip at its
    /// full-sequential-run number, which the byte-identical-suffix
    /// guarantee depends on.
    Skipped,
}

/// The registry of live symbols.
#[derive(Debug, Clone, Default)]
pub struct SymCtx {
    origins: Vec<SymOrigin>,
}

impl SymCtx {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mints a fresh symbol with the given provenance.
    pub fn fresh(&mut self, origin: SymOrigin) -> ExprRef {
        let id = self.origins.len() as SymId;
        self.origins.push(origin);
        Expr::sym(id)
    }

    /// The provenance of a symbol.
    pub fn origin(&self, id: SymId) -> Option<&SymOrigin> {
        self.origins.get(id as usize)
    }

    /// Reserves `n` ids as [`SymOrigin::Skipped`], advancing the
    /// allocator exactly as far as the skipped subtree's exploration
    /// would have.
    pub fn advance(&mut self, n: u64) {
        self.origins
            .extend(std::iter::repeat(SymOrigin::Skipped).take(n as usize));
    }

    /// Number of symbols minted.
    pub fn len(&self) -> usize {
        self.origins.len()
    }

    /// `true` if no symbols were minted.
    pub fn is_empty(&self) -> bool {
        self.origins.is_empty()
    }

    /// Iterates over `(SymId, &SymOrigin)`.
    pub fn iter(&self) -> impl Iterator<Item = (SymId, &SymOrigin)> {
        self.origins
            .iter()
            .enumerate()
            .map(|(i, o)| (i as SymId, o))
    }

    /// All input-origin symbols in minting order (minting order equals
    /// backward-discovery order; callers re-sort by execution order).
    pub fn input_syms(&self) -> Vec<(SymId, ThreadId, InputKind, Loc)> {
        self.iter()
            .filter_map(|(id, o)| match o {
                SymOrigin::Input { tid, kind, site } => Some((id, *tid, *kind, *site)),
                _ => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvm_isa::{BlockId, FuncId};

    #[test]
    fn fresh_symbols_are_sequential_and_tracked() {
        let mut ctx = SymCtx::new();
        let a = ctx.fresh(SymOrigin::HavocReg {
            tid: 0,
            reg: Reg(1),
            depth: 0,
        });
        let b = ctx.fresh(SymOrigin::HavocMem {
            addr: 0x100,
            width: Width::W8,
            depth: 1,
        });
        assert_eq!(a.as_sym(), Some(0));
        assert_eq!(b.as_sym(), Some(1));
        assert_eq!(ctx.len(), 2);
        assert!(matches!(
            ctx.origin(1),
            Some(SymOrigin::HavocMem { addr: 0x100, .. })
        ));
        assert!(ctx.origin(7).is_none());
    }

    #[test]
    fn advance_reserves_skipped_ids() {
        let mut ctx = SymCtx::new();
        ctx.fresh(SymOrigin::HavocReg {
            tid: 0,
            reg: Reg(1),
            depth: 0,
        });
        ctx.advance(3);
        let next = ctx.fresh(SymOrigin::HavocReg {
            tid: 0,
            reg: Reg(2),
            depth: 1,
        });
        assert_eq!(next.as_sym(), Some(4), "ids 1..=3 reserved");
        assert!(matches!(ctx.origin(2), Some(SymOrigin::Skipped)));
        assert!(ctx.input_syms().is_empty());
    }

    #[test]
    fn input_symbols_are_listed() {
        let mut ctx = SymCtx::new();
        let site = Loc::block_start(FuncId(0), BlockId(2));
        ctx.fresh(SymOrigin::HavocReg {
            tid: 0,
            reg: Reg(0),
            depth: 0,
        });
        ctx.fresh(SymOrigin::Input {
            tid: 3,
            kind: InputKind::Network,
            site,
        });
        let inputs = ctx.input_syms();
        assert_eq!(inputs.len(), 1);
        assert_eq!(inputs[0].0, 1);
        assert_eq!(inputs[0].1, 3);
    }
}
