//! Hardware-error identification (paper §3.2).
//!
//! "While analyzing a coredump, RES can discover inconsistencies between
//! the coredump and the execution of the program prior to generating the
//! coredump, indicating that the likely explanation is a hardware
//! error." Operationally: if *no* feasible suffix explains the dump —
//! and every rejection was a proof, not a budget cutoff — the dump is
//! hardware-suspect. The verdict is then *localized* by relaxation: the
//! engine re-runs with one candidate location (a register of the
//! faulting frame, or a memory word) replaced by an unconstrained
//! symbol; if exactly that relaxation restores feasibility, the
//! corrupted location has been found — the paper's memory-bit-flip and
//! miscomputed-addition examples both fall out of this procedure.

use mvm_core::Coredump;
use mvm_isa::{layout, Program, Reg, Width};
use mvm_json::json_enum;
use mvm_machine::AllocState;
use res_store::SolverStore;

use crate::search::{ResConfig, ResEngine, SynthOptions, SynthesisResult, Verdict};

/// Where the engine localized a hardware fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HwKind {
    /// A memory word whose dump content no feasible execution produces
    /// (bit flip, rogue DMA, multi-bit DRAM failure).
    MemoryError {
        /// The inconsistent word's address.
        addr: u64,
    },
    /// A register whose dump content no feasible execution produces
    /// (CPU datapath error).
    CpuError {
        /// The inconsistent register.
        reg: Reg,
    },
    /// Inconsistency established but not localized to a single word.
    Unlocalized,
}

json_enum!(HwKind {
    MemoryError { addr: u64 },
    CpuError { reg: Reg },
    Unlocalized
});

/// The §3.2 verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HwVerdict {
    /// A feasible suffix exists: a software bug.
    SoftwareBug,
    /// No feasible suffix: likely hardware.
    HardwareSuspected {
        /// What and where, if localized.
        kind: HwKind,
        /// `true` when the infeasibility is a proof (no budget cutoffs
        /// or solver Unknowns anywhere).
        proven: bool,
    },
    /// The engine ran out of budget before deciding.
    Inconclusive,
}

json_enum!(HwVerdict {
    SoftwareBug,
    HardwareSuspected { kind: HwKind, proven: bool },
    Inconclusive
});

/// Candidate relaxation sites for localization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Relax {
    /// No relaxation (plain synthesis).
    #[default]
    None,
    /// Treat this memory word as unknown.
    Mem {
        /// Word address.
        addr: u64,
    },
    /// Treat this register of the faulting thread's innermost frame as
    /// unknown.
    Reg {
        /// The register.
        reg: Reg,
    },
}

json_enum!(Relax {
    None,
    Mem { addr: u64 },
    Reg { reg: Reg }
});

/// Runs the full §3.2 analysis: verdict plus localization.
///
/// Solver `Unknown`s stay conservative regardless of their
/// [`mvm_symbolic::UnknownReason`]: whether the solver ran out of
/// assignment budget or hit a construct it cannot decide, an
/// unknown-tainted "no feasible suffix" is reported with
/// `proven: false` and a budget-cut search is [`HwVerdict::Inconclusive`]
/// — a hardware accusation is never built on an undecided query.
pub fn hardware_verdict(program: &Program, dump: &Coredump, config: &ResConfig) -> HwVerdict {
    hardware_verdict_inner(program, dump, config, None)
}

/// [`hardware_verdict`] with every solver query routed through a
/// pre-opened [`SolverStore`]: the store is absorbed once up front and
/// new results are merged back, but **committing is left to the caller**
/// (the triage daemon commits on hot-store eviction or shutdown). This
/// is the §3.2 sweep's warm path — the base synthesis and every
/// relaxation candidate share one store instead of paying
/// open/absorb/commit per call.
pub fn hardware_verdict_in_store(
    program: &Program,
    dump: &Coredump,
    config: &ResConfig,
    store: &mut SolverStore,
) -> HwVerdict {
    hardware_verdict_inner(program, dump, config, Some(store))
}

fn run_relaxed(
    engine: &ResEngine,
    dump: &Coredump,
    relax: Relax,
    store: &mut Option<&mut SolverStore>,
) -> SynthesisResult {
    match store {
        Some(s) => engine.synthesize_in_store(dump, SynthOptions::new().relax(relax), s),
        None => engine.synthesize_relaxed(dump, relax),
    }
}

fn hardware_verdict_inner(
    program: &Program,
    dump: &Coredump,
    config: &ResConfig,
    mut store: Option<&mut SolverStore>,
) -> HwVerdict {
    let engine = ResEngine::new(program, config.clone());
    let base = run_relaxed(&engine, dump, Relax::None, &mut store);
    match base.verdict {
        Verdict::SuffixFound => return HwVerdict::SoftwareBug,
        Verdict::BudgetExhausted => return HwVerdict::Inconclusive,
        Verdict::NoFeasibleSuffix { .. } => {}
    }
    let proven = matches!(base.verdict, Verdict::NoFeasibleSuffix { proven: true });

    // Localize by relaxation. A flipped location and a register holding
    // a value derived from it can both restore feasibility for a
    // one-block suffix, so all candidates are scored by how *deep* a
    // suffix the relaxation enables — the true corruption site lets the
    // search reverse much further (ideally to the program entry).
    let mut best: Option<(usize, HwKind)> = None;
    let mut consider = |kind: HwKind, res: &SynthesisResult| {
        if res.verdict != Verdict::SuffixFound {
            return;
        }
        let depth = res.suffixes.iter().map(|s| s.len()).max().unwrap_or(0);
        if best.as_ref().is_none_or(|(d, _)| depth > *d) {
            best = Some((depth, kind));
        }
    };
    for r in 0..Reg::COUNT as u8 {
        let res = run_relaxed(&engine, dump, Relax::Reg { reg: Reg(r) }, &mut store);
        consider(HwKind::CpuError { reg: Reg(r) }, &res);
    }
    for addr in candidate_words(dump) {
        let res = run_relaxed(&engine, dump, Relax::Mem { addr }, &mut store);
        consider(HwKind::MemoryError { addr }, &res);
    }
    HwVerdict::HardwareSuspected {
        kind: best.map(|(_, k)| k).unwrap_or(HwKind::Unlocalized),
        proven,
    }
}

/// Memory words worth relaxing: the globals segment plus live heap
/// payloads, capped.
fn candidate_words(dump: &Coredump) -> Vec<u64> {
    let mut out = Vec::new();
    let mut addr = layout::GLOBAL_BASE;
    while addr < dump.globals_end && out.len() < 64 {
        out.push(addr);
        addr += Width::W8.bytes();
    }
    for m in &dump.heap_allocs {
        if m.state != AllocState::Live {
            continue;
        }
        let mut a = m.base;
        while a < m.base + m.size && out.len() < 128 {
            out.push(a);
            a += Width::W8.bytes();
        }
    }
    out
}
